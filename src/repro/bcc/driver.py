"""Compiler driver: BLC source -> linked Executable.

The pipeline is parse -> sema -> IR gen -> optimize -> codegen -> assemble.
The BLC runtime library is parsed and compiled together with the user
program (one translation unit, like static linking), and the assembly
syscall wrappers are appended before assembling, so the final executable is
self-contained — every procedure the program can execute is in it and gets
analyzed, exactly as QPT saw whole MIPS executables.

Every phase is wrapped in a :mod:`repro.telemetry` span (``bcc.parse``,
``bcc.sema``, ``bcc.irgen``, ``bcc.opt``, ``bcc.codegen``; the parser adds
``bcc.lex`` and the allocator ``bcc.regalloc`` beneath these), so a
telemetry-enabled run shows exactly where compile wall-clock goes.  With
the default disabled telemetry the spans are shared no-op context
managers.

Two hooks into the static-analysis subsystem (:mod:`repro.analysis`):

* *verify_each* runs the IR verifier after IR generation and around every
  optimizer pass (the ``--verify-each`` CLI flag; also the test suite's
  always-on mode via :func:`repro.bcc.opt.set_verify_each`);
* :func:`compile_and_link` ``attach_evidence=True`` classifies every
  conditional branch with SCCP + interval ranges and exports the facts on
  the executable (``executable.branch_evidence``) for the registered
  ``Range`` prediction heuristic.
"""

from __future__ import annotations

from repro import telemetry
from repro.bcc import ast_nodes as A
from repro.bcc.codegen import generate_assembly
from repro.bcc.errors import CompileError
from repro.bcc.irgen import generate_ir
from repro.bcc.opt import optimize_program, verify_each_enabled
from repro.bcc.parser import parse
from repro.bcc.runtime import RUNTIME_ASM, RUNTIME_BLC
from repro.bcc.sema import SemanticInfo, analyze
from repro.isa.assembler import assemble
from repro.isa.program import Executable

__all__ = ["compile_to_asm", "compile_and_link", "compile_to_ir",
           "analyze_source"]


def _merged_program(source: str, filename: str,
                    include_runtime: bool) -> A.Program:
    decls: list[A.Node] = []
    with telemetry.get().span("bcc.parse", category="compile",
                              file=filename):
        if include_runtime:
            decls.extend(parse(RUNTIME_BLC, "<runtime>").decls)
        decls.extend(parse(source, filename).decls)
    return A.Program(decls)


def analyze_source(source: str, filename: str = "<input>",
                   include_runtime: bool = True) -> SemanticInfo:
    """Parse and type-check; returns the annotated program metadata."""
    program = _merged_program(source, filename, include_runtime)
    with telemetry.get().span("bcc.sema", category="compile",
                              file=filename):
        return analyze(program)


def _verify_ir(program, where: str) -> None:
    # lazy import: repro.analysis layers above repro.bcc
    from repro.analysis.verify import assert_valid

    assert_valid(program, where=where)


def compile_to_ir(source: str, filename: str = "<input>",
                  optimize: bool = True, include_runtime: bool = True,
                  rotate_loops: bool = True, passes=None, after_pass=None,
                  verify_each: bool | None = None):
    """Compile to (optimized) IR. Mainly for tests and debugging.

    *passes* is an optimizer pipeline spec (see
    :func:`repro.bcc.opt.pipeline_spec`); *after_pass* is invoked after
    every pass execution (the ``--emit-ir-after`` hook); *verify_each*
    runs the IR verifier after IR generation and around every pass.
    """
    tm = telemetry.get()
    info = analyze_source(source, filename, include_runtime)
    with tm.span("bcc.irgen", category="compile", file=filename):
        program = generate_ir(info, rotate_loops=rotate_loops)
    if verify_each or (verify_each is None and verify_each_enabled()):
        _verify_ir(program, where="after IR generation")
    with tm.span("bcc.opt", category="compile", file=filename):
        return optimize_program(program, enabled=optimize, passes=passes,
                                after_pass=after_pass,
                                verify_each=verify_each)


def _compile_module(source: str, filename: str, optimize: bool,
                    include_runtime: bool, rotate_loops: bool, passes,
                    after_pass, verify_each: bool | None):
    """Common back half of :func:`compile_to_asm` / :func:`compile_and_link`.

    Returns ``(IRProgram, asm_text)`` — the optimized IR is needed by
    callers that run the branch-evidence analysis over exactly the program
    the assembly was generated from.
    """
    tm = telemetry.get()
    info = analyze_source(source, filename, include_runtime)
    if "main" not in info.function_symbols \
            or not info.function_symbols["main"].defined:
        raise CompileError("program has no main function", filename=filename)
    with tm.span("bcc.irgen", category="compile", file=filename):
        program = generate_ir(info, rotate_loops=rotate_loops)
    if verify_each or (verify_each is None and verify_each_enabled()):
        _verify_ir(program, where="after IR generation")
    with tm.span("bcc.opt", category="compile", file=filename):
        program = optimize_program(program, enabled=optimize, passes=passes,
                                   after_pass=after_pass,
                                   verify_each=verify_each)
    with tm.span("bcc.codegen", category="compile", file=filename):
        asm = generate_assembly(program)
    tm.counter("bcc.modules_compiled").inc()
    if include_runtime:
        asm = asm + "\n" + RUNTIME_ASM
    return program, asm


def compile_to_asm(source: str, filename: str = "<input>",
                   optimize: bool = True, include_runtime: bool = True,
                   rotate_loops: bool = True, passes=None,
                   after_pass=None, verify_each: bool | None = None) -> str:
    """Compile BLC source to a complete assembly module (text)."""
    _, asm = _compile_module(source, filename, optimize, include_runtime,
                             rotate_loops, passes, after_pass, verify_each)
    return asm


def compile_and_link(source: str, filename: str = "<input>",
                     optimize: bool = True, include_runtime: bool = True,
                     rotate_loops: bool = True, passes=None,
                     after_pass=None, verify_each: bool | None = None,
                     attach_evidence: bool = False) -> Executable:
    """Compile BLC source all the way to a runnable :class:`Executable`.

    With *attach_evidence* the SCCP + range branch classification runs over
    the final IR and the resulting always/never-taken facts are exported on
    the executable (see :mod:`repro.analysis.branches`).
    """
    program, asm = _compile_module(source, filename, optimize,
                                   include_runtime, rotate_loops, passes,
                                   after_pass, verify_each)
    executable = assemble(asm)
    if attach_evidence:
        # lazy import: repro.analysis layers above repro.bcc
        from repro.analysis.branches import (
            analyze_branch_evidence, attach_evidence as _attach)

        with telemetry.get().span("bcc.evidence", category="analyze",
                                  file=filename):
            _attach(executable, analyze_branch_evidence(program))
    return executable
