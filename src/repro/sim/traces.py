"""Tier-1 superblocks: hot straight-line regions fused into one callable.

A *superblock* starts at a hot landing pc (a branch/jump target the engine
has seen often enough) and follows the statically-likely path: fall-through
for forward conditional branches, the target for backward ones (the classic
backward-taken/forward-not-taken heuristic), straight through direct ``j``,
and straight *into* direct calls — ``jal`` is inlined ($ra becomes a block
constant, the shadow call stack is maintained exactly), and a ``jr $ra``
whose value survived the callee continues the trace at the return point,
so a hot call-in-loop still closes back on the head.  Short if/else
diamonds that rejoin are *folded* in (both arms emitted, up to
``MAX_ARM_LEN`` instructions each) rather than ending the block.  It ends
at an indirect call/jump it cannot resolve, a syscall, a pc already in
the block (loop closed), or the length cap.  The path is compiled — once,
never invalidated; instruction memory is immutable — into one Python
function of the shape::

    block(base, stop) -> (next_pc_index, count_after)

where *base* is the retired-instruction count before the block's first
instruction.  Registers live in Python locals for the duration of the
block, and a conditional branch that goes against the assumed direction
takes a *side exit*: it bumps the shared side-exit cell, records the
branch events, writes the live locals back to the register file, and
returns early with the exact count.

When the assumed path closes back on the block's own head — a hot inner
loop — the body becomes a ``for base in range(...)`` over whole
iterations: the block keeps iterating in place (registers stay in locals,
no dispatch, no entry loads) until another full iteration could cross
*stop*, then returns to the engine at the head.  The engine picks *stop*
as the next housekeeping budget (``min(fuel_limit, count + tick
interval)``), so fuel exactness and the watchdog/sampling cadence are
preserved while a single call retires thousands of instructions.  At
least one iteration always runs (the engine's entry guard has already
proven it fits the fuel limit), mirroring tier0's do-then-check order.

Loop iterations emit **no** per-iteration branch events.  Every completed
iteration of a looped block takes the assumed direction at each branch —
anything else side-exits — so its event sequence is statically known.
Exits append one *run marker* ``(None, template, base0, iterations,
length)`` to the pending-event list; the flush and the batched observers
expand or aggregate it (``O(1)`` for profiles and histories instead of
``O(iterations)``), and duck-typed observers see fully expanded events.
A looped block containing folded diamonds renders in *runs* mode: the
marker counts the run of consecutive all-assumed iterations, a fold whose
test goes the non-assumed way flushes the run, records the iteration's
actual events, and starts a new run — still one append per *divergence*,
not per iteration.

Block compile products are shared across machines.  The
machine-independent :class:`BlockSpec` (generated code object, event
offsets, line map, fold table) is cached per ``Executable`` in a
weak-keyed module map; a fresh :class:`TraceCache` re-binds specs to its
own machine (rebuilding only the machine-bound iteration events) instead
of re-forming superblocks, and negative entries (refused heads) are
shared too.

Registers known to be compile-time constants are folded into the emitted
expressions: ``$zero`` seeds the fold (guarded by a one-line entry check
— if ``regs[0]`` was ever written the block returns without progress and
the engine single-steps), and ``lui``/``addiu``/shift/bitwise chains over
constants collapse to literals.

Crash exactness
---------------
Mid-block faults must produce the same :class:`~repro.errors.CrashReport`
as single-stepping.  Four mechanisms guarantee it, all off the hot path:

* every generated source line is mapped back to its block offset, so the
  faulting pc and retired count are recovered from the traceback's
  ``tb_lineno`` (one instruction never spans a line-map entry boundary);
* the registers written *before* the faulting offset are recovered from
  the generated frame's ``f_locals`` and written back to the machine
  (a faulting statement never assigns its own destination first);
* a fault inside a looped block reconstructs the branch events of its
  completed iterations (run marker) and of the partial iteration up to
  the fault offset, so event streams and crash branch histories match
  tier0 exactly;
* the engine refuses to enter a block whose full path could cross the
  fuel limit, falling back to single-stepping so
  ``SimulationLimitExceeded`` fires at the exact instruction.

Codegen that cannot represent an instruction (chaos-corrupted operands,
unknown opcodes, writes to ``$zero``) truncates the block just before it
— or refuses the block entirely — so the Tier-0 interpreter path raises
the identical typed error.
"""

from __future__ import annotations

import struct
import weakref

from repro.errors import SimulationError
from repro.isa.program import TEXT_BASE, WORD_SIZE
from repro.sim.decode import HALT_INDEX

__all__ = ["CompiledBlock", "TraceCache", "recover_block_fault",
           "compile_superblock", "MAX_BLOCK_LEN", "HOT_THRESHOLD",
           "MAX_BLOCKS"]

#: Longest path a superblock may cover (also bounds fuel/watchdog overshoot).
MAX_BLOCK_LEN = 128
#: Landings at a pc before the engine compiles a superblock there.
HOT_THRESHOLD = 32
#: Cap on compiled blocks per machine (a runaway-codegen backstop).
MAX_BLOCKS = 512

_M32 = 0xFFFF_FFFF

#: bound struct codecs for the inline memory fast paths (a bound
#: ``Struct.unpack_from`` is ~3x cheaper than slice+``int.from_bytes``)
_U32_STRUCT = struct.Struct("<I")
_F64_STRUCT = struct.Struct("<d")

#: control ops an if/else arm may not contain (jal/jr can continue a block
#: at the top level but never nest inside a folded diamond arm)
_TERMINAL = frozenset(["jal", "jalr", "jr", "syscall"])

#: longest if/else arm folded into a block as a *diamond* (both successor
#: paths compiled under a runtime test instead of a side exit)
MAX_ARM_LEN = 48

#: conditions over the unsigned operand strings: equality is
#: representation-independent, and the sign tests read the top bit
_BRANCH_COND = {
    "beq": "{a} == {b}",
    "bne": "{a} != {b}",
    "blez": "{a} == 0 or {a} >= 2147483648",
    "bgtz": "0 < {a} < 2147483648",
    "bltz": "{a} >= 2147483648",
    "bgez": "{a} < 2147483648",
    "bc1t": "fc",
    "bc1f": "not fc",
}


class _Truncate(Exception):
    """Internal: this instruction cannot be compiled — end the block here."""


class CompiledBlock:
    """One compiled superblock; see the module docstring for the contract."""

    __slots__ = ("head", "head_addr", "fn", "code", "max_len", "offsets",
                 "line_map", "prefix_defs", "source", "looped", "iter_events",
                 "slen")

    def __init__(self, head, head_addr, fn, max_len, offsets, line_map,
                 prefix_defs, source, looped, iter_events, slen):
        self.head = head
        self.head_addr = head_addr
        self.fn = fn
        self.code = fn.__code__
        self.max_len = max_len
        self.offsets = offsets
        self.line_map = line_map
        self.prefix_defs = prefix_defs
        self.source = source
        self.looped = looped
        #: per-iteration (inst, assumed_taken, count_offset) branch events of
        #: an all-assumed iteration of a looped block — the run-marker
        #: template (empty for straight blocks)
        self.iter_events = iter_events
        #: instructions an all-assumed iteration retires (== max_len unless
        #: the loop contains folds whose assumed direction skips offsets)
        self.slen = slen


class BlockSpec:
    """The machine-independent compile product of one superblock: the
    bytecode object plus all recovery metadata.  Instruction memory is
    immutable, so specs are shared across every :class:`Machine` running
    the same executable (see :data:`_SHARED_SPECS`) — repeated passes over
    a benchmark skip trace formation and ``compile()`` entirely and only
    re-``exec`` the code object against their own register file, memory,
    and event sinks."""

    __slots__ = ("head", "head_addr", "code", "max_len", "offsets",
                 "line_map", "prefix_defs", "source", "looped", "iter_idx",
                 "slen")


#: executable → {head: BlockSpec | None} — the cross-machine spec cache
#: (``None`` records an uncompilable head so repeat machines skip the
#: formation attempt too); entries die with their executable
_SHARED_SPECS: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _specs_for(executable) -> dict:
    specs = _SHARED_SPECS.get(executable)
    if specs is None:
        specs = {}
        try:
            _SHARED_SPECS[executable] = specs
        except TypeError:  # not weak-referenceable: private per-cache dict
            pass
    return specs


def _bind_block(spec: BlockSpec, machine) -> CompiledBlock:
    """Instantiate a shared :class:`BlockSpec` for one machine: rebuild
    the run-marker template against the machine's instruction list and
    ``exec`` the code object with the machine's state bound as defaults."""
    insts = machine._insts
    iter_events = tuple(
        (insts[p], assumed, K) for p, assumed, K in spec.iter_idx)
    mem = machine.memory
    env = {
        "RG": machine.regs,
        "FG": machine.fregs,
        "PD": machine._pending.append,
        "CS": machine._call_stack,
        "IN": insts,
        "SEC": machine._side_exit_cell,
        "LW": mem.load_word,
        "SW": mem.store_word,
        "LB": mem.load_byte,
        "SB": mem.store_byte,
        "LD": mem.load_double,
        "SD": mem.store_double,
        "MM": machine,
        "PG_": mem._pages.get,
        "UW_": _U32_STRUCT.unpack_from,
        "P4_": _U32_STRUCT.pack_into,
        "UD_": _F64_STRUCT.unpack_from,
        "P8_": _F64_STRUCT.pack_into,
        "RT_": iter_events,
        "ERR": SimulationError,
    }
    exec(spec.code, env)
    return CompiledBlock(spec.head, spec.head_addr, env["_b"], spec.max_len,
                         spec.offsets, spec.line_map, spec.prefix_defs,
                         spec.source, spec.looped, iter_events, spec.slen)


def compile_superblock(machine, head) -> CompiledBlock | None:
    """Form, compile, and bind the superblock starting at *head* for one
    machine (the uncached path; :meth:`TraceCache.compile` goes through
    the shared spec cache instead)."""
    spec = _form_superblock(machine, head)
    if spec is None:
        return None
    return _bind_block(spec, machine)


def _need_int(*values):
    for v in values:
        if type(v) is not int:
            raise _Truncate
    return values


def _form_superblock(machine, head) -> BlockSpec | None:
    """Form the superblock starting at instruction index *head* and compile
    it to a :class:`BlockSpec`.

    Returns ``None`` when no useful block can be built (the head itself is
    uncompilable); the cache blacklists the head and the engine keeps
    single-stepping there.
    """
    insts = machine._insts
    tindex = machine._tindex
    n = len(insts)

    body: list[tuple[str, int | None]] = []   # (line text, block offset)
    offsets: list[int] = []
    visited: set[int] = set()
    ref_r: set[int] = set()
    ref_f: set[int] = set()
    ref_fc = [False]
    defs_order: list[tuple[str, int]] = []    # ordered unique (kind, idx)
    defs_set: set[tuple[str, int]] = set()
    prefix_defs: list[tuple[tuple[str, int], ...]] = []
    #: registers with a compile-time-known unsigned value; seeded by $zero
    const: dict[int, int] = {0: 0}
    #: the $zero fold is only sound while regs[0] == 0; any use arms a
    #: one-line entry guard that bounces the block if it ever isn't
    need_guard = [False]
    #: branch sites in side-exit form:
    #: (p, K, cond, assume_taken, side_target, ae_idx, in_tail)
    branches: list = []
    #: fold (diamond / loop-tail) sites: (p, K, assumed_taken, ae_idx)
    folds: list = []
    #: the assumed-path branch events in order: (p, K_eff, assumed_taken),
    #: where K_eff is the retired-count offset *on the assumed path* —
    #: this becomes the looped block's run-marker template
    assumed_events: list[tuple[int, int, bool]] = []
    #: set once a fold is emitted: retired counts become path-dependent
    #: (tracked by the runtime skip counter ``ex``)
    dyn = [False]
    #: static retired-count shortfall of the all-assumed path (offsets the
    #: assumed direction of each fold skips); the assumed-path stride of a
    #: looped block is ``length - ex_asm``
    ex_asm = [0]

    def cnt(K: int) -> str:
        """Placeholder for a retired-count expression, resolved at assembly:
        ``base + K`` normally, ``base + K - ex`` once the block contains a
        diamond (offsets of the untaken arm are skipped at runtime)."""
        return f"\x05{K}\x05"

    def render_cnt(text: str, dyn_: bool) -> str:
        while "\x05" in text:
            a = text.index("\x05")
            b = text.index("\x05", a + 1)
            K = int(text[a + 1:b])
            expr = f"base + {K} - ex" if dyn_ else f"base + {K}"
            text = text[:a] + expr + text[b + 1:]
        return text

    def use_r(i):
        c = const.get(i)
        if c is not None:
            need_guard[0] = True
            return str(c)
        ref_r.add(i)
        return f"r{i}"

    def use_f(i):
        ref_f.add(i)
        return f"f{i}"

    def def_r(i, value=None):
        if i == 0:
            # a write to $zero would break the constant fold; end the block
            # before it and let the interpreter apply its real semantics
            raise _Truncate
        if value is None:
            const.pop(i, None)
        else:
            need_guard[0] = True
            const[i] = value
        ref_r.add(i)
        if ("r", i) not in defs_set:
            defs_set.add(("r", i))
            defs_order.append(("r", i))
        return f"r{i}"

    def def_f(i):
        ref_f.add(i)
        if ("f", i) not in defs_set:
            defs_set.add(("f", i))
            defs_order.append(("f", i))
        return f"f{i}"

    def def_fc():
        ref_fc[0] = True
        if ("c", 0) not in defs_set:
            defs_set.add(("c", 0))
            defs_order.append(("c", 0))
        return "fc"

    def writeback() -> str:
        """Placeholder for a register write-back, resolved at assembly.

        A straight-line block writes back the defs emitted *so far* (later
        offsets never executed).  In a looped block every offset executes
        each iteration, so from the second iteration on the locals of
        later-offset defs hold the previous (already-committed) iteration's
        values — every exit must then write back the *full* def set.  Loop
        detection only completes at the end of formation, so the choice is
        deferred via a marker recording the defs count at emission time."""
        return f"\x00{len(defs_order)}\x00"

    def render_writeback(text: str, looped: bool) -> str:
        while "\x00" in text:
            a = text.index("\x00")
            b = text.index("\x00", a + 1)
            cnt = int(text[a + 1:b])
            sel = defs_order if looped else defs_order[:cnt]
            parts = []
            for kind, idx in sel:
                if kind == "r":
                    # locals hold the unsigned form; the register file is
                    # signed, so exits convert back
                    parts.append(f"regs[{idx}] = r{idx} - 4294967296 "
                                 f"if r{idx} & 2147483648 else r{idx}")
                elif kind == "f":
                    parts.append(f"fregs[{idx}] = f{idx}")
                else:
                    parts.append("M.fp_cond = fc")
            wb = "; ".join(parts)
            text = text[:a] + (wb + "; " if wb else "") + text[b + 1:]
        return text

    def _partials(upto: int) -> list[str]:
        """Event appends for the assumed-path branches before assumed-event
        index *upto* in the current iteration; their counts are static
        offsets from ``base`` (on the assumed path the runtime ``ex``
        equals the static assumed skip at every point)."""
        return [f"pend((I[{q}], {a}, base + {ke}))"
                for q, ke, a in assumed_events[:upto]]

    def render_branch(text: str, mode: str, dyn_: bool,
                      length: int, slen: int) -> str | None:
        """Resolve the branch markers; ``None`` drops the line entirely.

        ``flat`` (straight-line) blocks record each branch event as it
        executes (``\\x02`` markers).  Looped blocks — ``rle`` when every
        iteration is statically identical, ``runs`` when folds make paths
        diverge — drop the per-iteration recording for assumed-path
        branches and reconstruct events at the side exit (``\\x04``
        marker): one run marker for the completed all-assumed iterations,
        the assumed outcomes of earlier branches in the current iteration,
        then the exiting branch's actual outcome.  Branches inside a fold
        tail run *after* the divergence point already flushed the run and
        the current iteration's earlier events, so they render flat."""
        if text.startswith("\x02"):
            m = int(text[1:text.index("\x02", 1)])
            p, K, cond, assume_taken, _side, ae, in_tail = branches[m]
            compressed = mode != "flat" and not in_tail
            # a site after the first fold can execute with the current
            # iteration already diverged (``im`` set): the run no longer
            # covers this iteration, so its event must be pended live
            post = compressed and folds and ae > folds[0][3]
            kind = text[text.index("\x02", 1) + 1]
            if kind == "t":  # the test
                if compressed and not post:
                    neg = "not " if assume_taken else ""
                    return f"if {neg}({cond}):"
                return f"t = {cond}"
            if kind == "p":  # the event append
                if compressed:
                    if post:
                        return (f"if im: pend((I[{p}], t, "
                                f"base + {K} - ex))")
                    return None
                c = f"base + {K} - ex" if dyn_ else f"base + {K}"
                return f"pend((I[{p}], t, {c}))"
            # kind == "i": the side-exit guard
            if compressed and not post:
                return None
            return "if not t:" if assume_taken else "if t:"
        if "\x04" in text:  # the side-exit body
            a = text.index("\x04")
            b = text.index("\x04", a + 1)
            m = int(text[a + 1:b])
            p, K, _cond, assumed, _side, ae, in_tail = branches[m]
            if mode == "flat" or in_tail:
                # the event was already pended above (or at the divergence)
                return text[:a] + text[b + 1:]
            ke = assumed_events[ae][1]
            if mode == "runs" and folds and ae > folds[0][3]:
                # post-fold exit: in a diverged iteration everything up to
                # and including this branch was already pended live; on
                # the pure path flush the run, replay the iteration's
                # assumed events, then this branch's actual outcome
                exprs = [f"pend((None, RT, rb0, runs, {slen}))"]
                exprs += _partials(ae)
                exprs.append(f"pend((I[{p}], {not assumed}, "
                             f"base + {K} - ex))")
                joined = ", ".join(exprs)
                return text[:a] + f"im or ({joined},); " + text[b + 1:]
            if mode == "rle":
                parts = [f"pend((None, RT, b0, (base - b0) // {length}, "
                         f"{length}))"]
            else:  # runs-compressed: the counter tracks completed runs
                parts = [f"pend((None, RT, rb0, runs, {slen}))"]
            parts += _partials(ae)
            parts.append(f"pend((I[{p}], {not assumed}, base + {ke}))")
            return text[:a] + "; ".join(parts) + "; " + text[b + 1:]
        return text

    def render_fold(text: str, mode: str, slen: int) -> str | None:
        """Resolve a fold (``\\x07``) marker; ``None`` drops the line.

        ``p`` is the unconditional event append right after the fold's
        test: emitted for flat blocks, dropped under run compression.
        ``d`` is the divergence bookkeeping at the head of the fold's
        non-assumed suite: dropped for flat blocks; under run compression
        it flushes the completed run, replays the current iteration's
        assumed-path events, records this branch's actual (non-assumed)
        outcome, and flags the iteration impure (``im``) so the loop
        epilogue restarts the run after it."""
        f = int(text[1:text.index("\x07", 1)])
        p, K, assumed, ae = folds[f]
        kind = text[text.index("\x07", 1) + 1]
        if kind == "p":
            if mode == "runs":
                return None
            return f"pend((I[{p}], t, base + {K} - ex))"
        if kind == "a":
            # assumed side of a fold after the first: if the iteration
            # already diverged, the template no longer covers this event
            if mode != "runs":
                return None
            return f"im and pend((I[{p}], {assumed}, base + {K} - ex))"
        # kind == "d"
        if mode != "runs":
            return None
        ke = assumed_events[ae][1]
        if f > 0:
            # an earlier fold may already have diverged this iteration —
            # then everything up to here was pended live already
            exprs = [f"pend((None, RT, rb0, runs, {slen}))"]
            exprs += _partials(ae)
            joined = ", ".join(exprs)
            parts = [f"im or ({joined},)",
                     f"pend((I[{p}], {not assumed}, base + {K} - ex))",
                     "im = 1", "runs = 0"]
            return "; ".join(parts)
        parts = [f"pend((None, RT, rb0, runs, {slen}))", "runs = 0",
                 "im = 1"]
        parts += _partials(ae)
        parts.append(f"pend((I[{p}], {not assumed}, base + {ke}))")
        return "; ".join(parts)

    def emit_exit(out, k_lines, indent, target, executed):
        ret = f"return {target}, {cnt(executed)}"
        out.append((indent + writeback() + ret, k_lines))

    def addr_expr(rs, imm, out, k):
        """Address operand: reuse the register local (or a folded literal)
        directly for zero displacements, else compute the usual temp."""
        u = use_r(rs)
        if imm == 0:
            return u
        c = const.get(rs)
        if c is not None:
            need_guard[0] = True
            return str(c + imm)
        out.append((f"a = {u} + {imm}", k))
        return "a"

    def emit_one(inst, p, k):
        """Emit code for one instruction; return the next pc index to
        extend the block with, ``"terminal"``, or ``"branch"`` (handled by
        the caller).  Raises :class:`_Truncate` when uncompilable.

        Integer register locals hold the *unsigned* 32-bit value (entry
        loads mask, exits sign-convert back), which makes most ALU ops a
        single arithmetic expression: bitwise ops, right shifts, ``sltu``
        and addresses need no wrap at all, and signed comparisons map to
        unsigned ones by flipping the sign bit (``x ^ 0x80000000``
        order-preserves two's complement)."""
        out = []
        name = inst.op.name
        K = k + 1

        if name in ("addiu", "addi"):
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            c = const.get(rs)
            if c is not None:
                need_guard[0] = True
                v = (c + imm) & _M32
                out.append((f"{def_r(rt, v)} = {v}", k))
            elif imm == 0:
                u = use_r(rs)
                out.append((f"{def_r(rt)} = {u}", k))
            else:
                u = use_r(rs)
                out.append((f"{def_r(rt)} = ({u} + {imm}) & 4294967295", k))
        elif name == "lw":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            A = addr_expr(rs, imm, out, k)
            out.append((f"pg = PG({A} >> 12)", k))
            out.append((f"if pg is None or {A} & 3:", k))
            out.append((f" {def_r(rt)} = lw({A}) & 4294967295", k))
            out.append(("else:", k))
            out.append((f" r{rt} = UW(pg, {A} & 4095)[0]", k))
        elif name == "sw":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            A = addr_expr(rs, imm, out, k)
            u = use_r(rt)
            out.append((f"pg = PG({A} >> 12)", k))
            out.append((f"if pg is None or {A} & 3:", k))
            out.append((f" sw({A}, {u})", k))
            out.append(("else:", k))
            out.append((f" P4(pg, {A} & 4095, {u})", k))
        elif name in ("addu", "add"):
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ca, cb = const.get(rs), const.get(rt)
            if ca is not None and cb is not None:
                need_guard[0] = True
                v = (ca + cb) & _M32
                out.append((f"{def_r(rd, v)} = {v}", k))
            else:
                ua, ub = use_r(rs), use_r(rt)
                out.append((f"{def_r(rd)} = ({ua} + {ub}) & 4294967295", k))
        elif name in ("sub", "subu"):
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = ({ua} - {ub}) & 4294967295", k))
        elif name == "mul":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = ({ua} * {ub}) & 4294967295", k))
        elif name in ("div", "rem"):
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            what = "division" if name == "div" else "remainder"
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"if {ub} == 0: raise SimulationError("
                        f"'integer {what} by zero at 0x{inst.address:x}')",
                        k))
            out.append((f"sa = {ua} - 4294967296 "
                        f"if {ua} & 2147483648 else {ua}", k))
            out.append((f"sb_ = {ub} - 4294967296 "
                        f"if {ub} & 2147483648 else {ub}", k))
            out.append(("t = abs(sa) // abs(sb_)", k))
            out.append(("if (sa < 0) != (sb_ < 0): t = -t", k))
            if name == "div":
                out.append((f"{def_r(rd)} = t & 4294967295", k))
            else:
                out.append((f"{def_r(rd)} = (sa - sb_ * t) & 4294967295", k))
        elif name == "slt":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = 1 if ({ua} ^ 2147483648) < "
                        f"({ub} ^ 2147483648) else 0", k))
        elif name == "slti":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            flipped = (imm & _M32) ^ 0x8000_0000
            u = use_r(rs)
            out.append((f"{def_r(rt)} = 1 if ({u} ^ 2147483648) < "
                        f"{flipped} else 0", k))
        elif name == "sltu":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = 1 if {ua} < {ub} else 0", k))
        elif name == "sltiu":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            u = use_r(rs)
            out.append((f"{def_r(rt)} = 1 if {u} < {imm & _M32} else 0", k))
        elif name == "and":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = {ua} & {ub}", k))
        elif name == "or":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ca, cb = const.get(rs), const.get(rt)
            if ca is not None and cb is not None:
                need_guard[0] = True
                v = ca | cb
                out.append((f"{def_r(rd, v)} = {v}", k))
            else:
                ua, ub = use_r(rs), use_r(rt)
                out.append((f"{def_r(rd)} = {ua} | {ub}", k))
        elif name == "xor":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = {ua} ^ {ub}", k))
        elif name == "nor":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = ({ua} | {ub}) ^ 4294967295", k))
        elif name == "andi":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            u = use_r(rs)
            out.append((f"{def_r(rt)} = {u} & {imm & 0xFFFF}", k))
        elif name == "ori":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            c = const.get(rs)
            if c is not None:
                need_guard[0] = True
                v = c | (imm & 0xFFFF)
                out.append((f"{def_r(rt, v)} = {v}", k))
            else:
                u = use_r(rs)
                out.append((f"{def_r(rt)} = {u} | {imm & 0xFFFF}", k))
        elif name == "xori":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            u = use_r(rs)
            out.append((f"{def_r(rt)} = {u} ^ {imm & 0xFFFF}", k))
        elif name == "sll":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            s = imm & 31
            c = const.get(rs)
            if c is not None:
                need_guard[0] = True
                v = (c << s) & _M32
                out.append((f"{def_r(rt, v)} = {v}", k))
            elif s == 0:
                u = use_r(rs)
                out.append((f"{def_r(rt)} = {u}", k))
            else:
                u = use_r(rs)
                out.append((f"{def_r(rt)} = ({u} << {s}) & 4294967295", k))
        elif name == "srl":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            u = use_r(rs)
            out.append((f"{def_r(rt)} = {u} >> {imm & 31}", k))
        elif name == "sra":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            s = imm & 31
            u = use_r(rs)
            if s == 0:
                out.append((f"{def_r(rt)} = {u}", k))
            else:
                fill = (_M32 >> s) ^ _M32
                out.append((f"{def_r(rt)} = {u} >> {s} | {fill} "
                            f"if {u} & 2147483648 else {u} >> {s}", k))
        elif name == "sllv":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = ({ua} << ({ub} & 31)) "
                        "& 4294967295", k))
        elif name == "srlv":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"{def_r(rd)} = {ua} >> ({ub} & 31)", k))
        elif name == "srav":
            rd, rs, rt = _need_int(inst.rd, inst.rs, inst.rt)
            ua, ub = use_r(rs), use_r(rt)
            out.append((f"s = {ub} & 31", k))
            out.append((f"{def_r(rd)} = {ua} >> s | "
                        f"((4294967295 >> s) ^ 4294967295) "
                        f"if {ua} & 2147483648 else {ua} >> s", k))
        elif name == "lui":
            rt, imm = _need_int(inst.rt, inst.imm)
            v = (imm & 0xFFFF) << 16
            out.append((f"{def_r(rt, v)} = {v}", k))
        elif name in ("lb", "lbu"):
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            A = addr_expr(rs, imm, out, k)
            out.append((f"pg = PG({A} >> 12)", k))
            out.append(("if pg is None:", k))
            if name == "lb":
                out.append((f" {def_r(rt)} = lb({A}) & 4294967295", k))
                out.append(("else:", k))
                out.append((f" t = pg[{A} & 4095]", k))
                out.append((f" r{rt} = t | 4294967040 if t & 128 else t", k))
            else:
                out.append((f" {def_r(rt)} = lb({A}, False)", k))
                out.append(("else:", k))
                out.append((f" r{rt} = pg[{A} & 4095]", k))
        elif name == "sb":
            rs, rt, imm = _need_int(inst.rs, inst.rt, inst.imm)
            A = addr_expr(rs, imm, out, k)
            u = use_r(rt)
            out.append((f"pg = PG({A} >> 12)", k))
            out.append(("if pg is None:", k))
            out.append((f" sb({A}, {u})", k))
            out.append(("else:", k))
            out.append((f" pg[{A} & 4095] = {u} & 255", k))
        elif name == "ldc1":
            rs, ft, imm = _need_int(inst.rs, inst.ft, inst.imm)
            A = addr_expr(rs, imm, out, k)
            out.append((f"pg = PG({A} >> 12)", k))
            out.append((f"if pg is None or {A} & 7:", k))
            out.append((f" {def_f(ft)} = ld({A})", k))
            out.append(("else:", k))
            out.append((f" f{ft} = UD(pg, {A} & 4095)[0]", k))
        elif name == "sdc1":
            rs, ft, imm = _need_int(inst.rs, inst.ft, inst.imm)
            A = addr_expr(rs, imm, out, k)
            out.append((f"pg = PG({A} >> 12)", k))
            out.append((f"if pg is None or {A} & 7:", k))
            out.append((f" sd({A}, {use_f(ft)})", k))
            out.append(("else:", k))
            out.append((f" P8(pg, {A} & 4095, f{ft})", k))
        elif name == "add.d":
            fd, fs, ft = _need_int(inst.fd, inst.fs, inst.ft)
            out.append((f"{def_f(fd)} = {use_f(fs)} + {use_f(ft)}", k))
        elif name == "sub.d":
            fd, fs, ft = _need_int(inst.fd, inst.fs, inst.ft)
            out.append((f"{def_f(fd)} = {use_f(fs)} - {use_f(ft)}", k))
        elif name == "mul.d":
            fd, fs, ft = _need_int(inst.fd, inst.fs, inst.ft)
            out.append((f"{def_f(fd)} = {use_f(fs)} * {use_f(ft)}", k))
        elif name == "div.d":
            fd, fs, ft = _need_int(inst.fd, inst.fs, inst.ft)
            out.append((f"if {use_f(ft)} == 0.0: raise SimulationError("
                        f"'FP division by zero at 0x{inst.address:x}')", k))
            out.append((f"{def_f(fd)} = {use_f(fs)} / f{ft}", k))
        elif name == "neg.d":
            fd, fs = _need_int(inst.fd, inst.fs)
            out.append((f"{def_f(fd)} = -{use_f(fs)}", k))
        elif name == "abs.d":
            fd, fs = _need_int(inst.fd, inst.fs)
            out.append((f"{def_f(fd)} = abs({use_f(fs)})", k))
        elif name == "mov.d":
            fd, fs = _need_int(inst.fd, inst.fs)
            out.append((f"{def_f(fd)} = {use_f(fs)}", k))
        elif name == "sqrt.d":
            fd, fs = _need_int(inst.fd, inst.fs)
            out.append((f"if {use_f(fs)} < 0: raise SimulationError("
                        f"'sqrt of negative at 0x{inst.address:x}')", k))
            out.append((f"{def_f(fd)} = f{fs} ** 0.5", k))
        elif name == "c.eq.d":
            fs, ft = _need_int(inst.fs, inst.ft)
            out.append((f"{def_fc()} = {use_f(fs)} == {use_f(ft)}", k))
        elif name == "c.lt.d":
            fs, ft = _need_int(inst.fs, inst.ft)
            out.append((f"{def_fc()} = {use_f(fs)} < {use_f(ft)}", k))
        elif name == "c.le.d":
            fs, ft = _need_int(inst.fs, inst.ft)
            out.append((f"{def_fc()} = {use_f(fs)} <= {use_f(ft)}", k))
        elif name == "mtc1":
            fs, rt = _need_int(inst.fs, inst.rt)
            u = use_r(rt)
            out.append((f"{def_f(fs)} = float({u} - 4294967296 "
                        f"if {u} & 2147483648 else {u})", k))
        elif name == "mfc1":
            fs, rt = _need_int(inst.fs, inst.rt)
            out.append((f"{def_r(rt)} = int({use_f(fs)}) & 4294967295", k))
        elif name == "cvt.d.w":
            fd, fs = _need_int(inst.fd, inst.fs)
            out.append((f"{def_f(fd)} = float({use_f(fs)})", k))
        elif name == "cvt.w.d":
            fd, fs = _need_int(inst.fd, inst.fs)
            # truncate toward 0, matching the interpreter
            out.append((f"{def_f(fd)} = float(int({use_f(fs)}))", k))
        elif name == "nop":
            pass
        elif name == "j":
            (t,) = _need_int(tindex[p])
            body.extend(out)
            return t
        elif name == "jal":
            ra = TEXT_BASE + WORD_SIZE * (p + 1)
            (t,) = _need_int(tindex[p])
            # inline the call: $ra becomes a block constant, the shadow
            # call stack is maintained exactly as tier0 would, and the
            # matching `jr $ra` (if $ra survives the callee) continues the
            # trace at the return point — hot call-in-loop paths then close
            # back on the head and iterate in place
            out.append((f"{def_r(31, ra)} = {ra}", k))
            out.append((f"cs.append(({inst.address}, {inst.target_address}, "
                        f"{ra}))", k))
            body.extend(out)
            return t
        elif name == "jalr":
            rd, rs = _need_int(inst.rd, inst.rs)
            ra = TEXT_BASE + WORD_SIZE * (p + 1)
            u = use_r(rs)
            out.append((f"{writeback()}a = {u}", k))
            out.append((f"regs[{rd}] = {ra}", k))
            out.append((f"cs.append(({inst.address}, a, {ra}))", k))
            out.append((f"pend((I[{p}], None, {cnt(K)}))", k))
            out.append((f"return (a - {TEXT_BASE}) // {WORD_SIZE}, "
                        f"{cnt(K)}", k))
            body.extend(out)
            return "terminal"
        elif name == "jr":
            (rs,) = _need_int(inst.rs)
            if rs == 31:
                ra = const.get(31)
                if ra is not None and (ra - TEXT_BASE) % WORD_SIZE == 0 \
                        and 0 <= (ra - TEXT_BASE) // WORD_SIZE < n:
                    # the return address is a block constant (set by an
                    # inlined jal and not clobbered by the callee): pop the
                    # shadow stack and continue the trace at the return
                    # point — the call disappears into the superblock
                    out.append(("if cs:", k))
                    out.append((" cs.pop()", k))
                    body.extend(out)
                    return (ra - TEXT_BASE) // WORD_SIZE
            u = use_r(rs)
            out.append((f"{writeback()}a = {u}", k))
            if rs == 31:
                out.append(("if cs:", k))
                out.append((" cs.pop()", k))
            else:
                out.append((f"pend((I[{p}], None, {cnt(K)}))", k))
            out.append((f"return (a - {TEXT_BASE}) // {WORD_SIZE}, "
                        f"{cnt(K)}", k))
            body.extend(out)
            return "terminal"
        elif name == "syscall":
            out.append((f"{writeback()}t = M._syscall(I[{p}])", k))
            out.append(("if t:", k))
            out.append((f" return {p + 1}, {cnt(K)}", k))
            out.append((f"return {HALT_INDEX}, {cnt(K)}", k))
            body.extend(out)
            return "terminal"
        elif name in _BRANCH_COND:
            return "branch"
        else:
            raise _Truncate
        body.extend(out)
        return p + 1

    def _branch_cond(inst):
        """The Python test expression for a conditional branch."""
        name = inst.op.name
        if name in ("bc1t", "bc1f"):
            ref_fc[0] = True
            return _BRANCH_COND[name]
        if name in ("beq", "bne"):
            rs, rt = _need_int(inst.rs, inst.rt)
            return _BRANCH_COND[name].format(a=use_r(rs), b=use_r(rt))
        (rs,) = _need_int(inst.rs)
        return _BRANCH_COND[name].format(a=use_r(rs))

    def _emit_side_branch(inst, p, k, cond, in_tail=False):
        """Emit a conditional branch in side-exit form (the non-assumed
        direction leaves the block) and return the assumed continuation."""
        K = k + 1
        t_idx = tindex[p]
        (t_idx,) = _need_int(t_idx)
        fall = p + 1
        # backward-taken/forward-not-taken assumed direction
        assume_taken = 0 <= inst.target_address <= inst.address
        side = fall if assume_taken else t_idx
        m = len(branches)
        if in_tail:
            ae = -1  # post-divergence: not part of the assumed path
        else:
            ae = len(assumed_events)
            assumed_events.append((p, K - ex_asm[0], assume_taken))
        branches.append((p, K, cond, assume_taken, side, ae, in_tail))
        body.append((f"\x02{m}\x02t", k))
        body.append((f"\x02{m}\x02p", k))
        body.append((f"\x02{m}\x02i", k))
        body.append((f" SE[0] += 1; \x04{m}\x04{writeback()}"
                     f"return {side}, {cnt(K)}", k))
        return t_idx if assume_taken else fall

    def _arm_ok(lo, hi):
        """pcs ``lo..hi-1`` qualify as a diamond arm: short, in range, not
        yet in the block, and free of control flow."""
        if hi - lo > MAX_ARM_LEN:
            return False
        for q in range(lo, hi):
            if q in visited or not 0 <= q < n:
                return False
            nm = insts[q].op.name
            if nm in _TERMINAL or nm == "j" or nm in _BRANCH_COND:
                return False
        return True

    def _emit_arm(lo, hi):
        """Emit pcs ``lo..hi-1`` indented one level (inside an if/else
        suite), claiming their offsets/visited/prefix slots."""
        for q in range(lo, hi):
            kq = len(offsets)
            prefix_defs.append(tuple(defs_order))
            offsets.append(q)
            visited.add(q)
            mk = len(body)
            if emit_one(insts[q], q, kq) != q + 1:
                raise _Truncate  # pragma: no cover - pre-screened by _arm_ok
            for i in range(mk, len(body)):
                body[i] = (" " + body[i][0], body[i][1])

    def _fold_rejoin(p2):
        """Mini-formation of a loop-rejoin path, emitted one level deep
        (inside an else-suite): follow the path — simple ops, direct
        jumps/calls, conditional branches in side-exit form — until it
        reaches the block head.  Anything else (indirects, syscalls,
        revisits, the length cap) raises :class:`_Truncate` so the caller
        abandons the fold."""
        while p2 != head:
            if p2 in visited or not 0 <= p2 < n \
                    or len(offsets) >= MAX_BLOCK_LEN:
                raise _Truncate
            inst2 = insts[p2]
            nm = inst2.op.name
            if nm in ("jalr", "syscall"):
                raise _Truncate
            kq = len(offsets)
            prefix_defs.append(tuple(defs_order))
            offsets.append(p2)
            visited.add(p2)
            mk = len(body)
            if nm in _BRANCH_COND:
                p2 = _emit_side_branch(inst2, p2, kq, _branch_cond(inst2),
                                       in_tail=True)
            else:
                p2 = emit_one(inst2, p2, kq)
                if type(p2) is not int:
                    raise _Truncate
            for i in range(mk, len(body)):
                body[i] = (" " + body[i][0], body[i][1])

    def try_diamond(inst, p, k, cond):
        """Fold a forward if/else (or if-then hammock) into the block.

        Both successor paths are compiled under a runtime test instead of
        making the non-assumed one a side exit; the runtime skip counter
        ``ex`` keeps retired counts exact (offsets of the untaken arm are
        skipped).  The branch event is recorded per execution with its
        actual outcome, which forces the block out of run-marker (RLE)
        event mode — worth it exactly when the branch alternates, the case
        that otherwise side-exits every few iterations.  Returns the join
        pc to continue formation at, or ``None`` (no foldable shape, or an
        arm instruction turned out uncompilable)."""
        t_idx = tindex[p]
        if type(t_idx) is not int:
            return None
        fall = p + 1
        K = k + 1
        if t_idx <= p:
            # backward branch: fold the *loop tail* — when the target is
            # the block's own head and the fall-through path eventually
            # rejoins it (a `continue`-style loop, possibly through an
            # outer backedge and nested side-exiting branches), both
            # outcomes continue the loop instead of side-exiting every
            # time the tail runs
            if t_idx != head:
                return None
            s_body, s_off = len(body), len(offsets)
            s_pref, s_defs = len(prefix_defs), len(defs_order)
            s_branches, s_ae = len(branches), len(assumed_events)
            s_folds = len(folds)
            s_const = dict(const)
            f = len(folds)
            ae = len(assumed_events)
            assumed_events.append((p, K - ex_asm[0], True))
            folds.append((p, K, True, ae))
            try:
                body.append((f"t = {cond}", k))
                body.append((f"\x07{f}\x07p", k))
                body.append(("if t:", k))
                if f > 0:
                    body.append((f" \x07{f}\x07a", k))
                bump = len(body)
                body.append((" ex += 0", k))  # patched once the tail is laid
                body.append(("else:", k))
                body.append((f" \x07{f}\x07d", k))
                c_entry = dict(const)
                _fold_rejoin(fall)
                # taking the backedge skips every tail slot; the tail path
                # itself runs them all, so its own ex stays untouched
                body[bump] = (f" ex += {len(offsets) - (k + 1)}", k)
                merged = {r: v for r, v in c_entry.items()
                          if const.get(r) == v}
            except _Truncate:
                del body[s_body:]
                for pc_ in offsets[s_off:]:
                    visited.discard(pc_)
                del offsets[s_off:]
                del prefix_defs[s_pref:]
                defs_set.difference_update(defs_order[s_defs:])
                del defs_order[s_defs:]
                del branches[s_branches:]
                del assumed_events[s_ae:]
                del folds[s_folds:]
                const.clear()
                const.update(s_const)
                return None
            const.clear()
            const.update(merged)
            dyn[0] = True
            # the assumed (taken) direction skips the whole tail
            ex_asm[0] += len(offsets) - (k + 1)
            return head
        q = t_idx - 1  # candidate arm-terminating `j` of an if/else
        if 0 <= q < n and insts[q].op.name == "j" and type(tindex[q]) is int \
                and tindex[q] > t_idx and q not in visited \
                and _arm_ok(fall, q) and _arm_ok(t_idx, tindex[q]):
            join = tindex[q]
            then_len = q - fall           # fall-through arm, its `j` apart
            else_len = join - t_idx       # taken arm
            total = then_len + 1 + else_len
        elif t_idx - fall >= 1 and _arm_ok(fall, t_idx):
            join = t_idx
            then_len = t_idx - fall       # fall-through arm; taken skips it
            else_len = -1                 # sentinel: hammock, no else arm
            total = then_len
        else:
            return None
        if len(offsets) + total + 2 > MAX_BLOCK_LEN:
            return None
        s_body, s_off = len(body), len(offsets)
        s_pref, s_defs = len(prefix_defs), len(defs_order)
        s_ae, s_folds = len(assumed_events), len(folds)
        s_const = dict(const)
        f = len(folds)
        ae = len(assumed_events)
        # forward branch: the assumed (not-taken) direction runs the
        # fall-through arm
        assumed_events.append((p, K - ex_asm[0], False))
        folds.append((p, K, False, ae))
        try:
            body.append((f"t = {cond}", k))
            body.append((f"\x07{f}\x07p", k))
            if else_len < 0:
                # hammock: taken skips the fall-through arm
                body.append(("if t:", k))
                body.append((f" \x07{f}\x07d", k))
                body.append((f" ex += {then_len}", k))
                body.append(("else:", k))
                if f > 0:
                    body.append((f" \x07{f}\x07a", k))
                c_entry = dict(const)
                mk = len(body)
                _emit_arm(fall, t_idx)
                if len(body) == mk:  # all-nop arm: keep the suite valid
                    body.append((" pass", None))
                c_arm = const
                merged = {r: v for r, v in c_entry.items()
                          if c_arm.get(r) == v}
            else:
                # if/else: the *taken* (else) arm claims the offset slots
                # right after the branch, then the fall-through arm and its
                # terminating `j`; each path's ex bump skips the other's
                # slots (before its own arm on the fall path, after it on
                # the taken path — so a mid-arm fault sees the right ex)
                body.append(("if t:", k))
                body.append((f" \x07{f}\x07d", k))
                c_entry = dict(const)
                _emit_arm(t_idx, join)
                body.append((f" ex += {then_len + 1}", k))
                c_else = dict(const)
                const.clear()
                const.update(c_entry)
                body.append(("else:", k))
                if f > 0:
                    body.append((f" \x07{f}\x07a", k))
                body.append((f" ex += {else_len}", k))
                _emit_arm(fall, q)
                # the arm's `j` occupies a count slot but emits no code
                prefix_defs.append(tuple(defs_order))
                offsets.append(q)
                visited.add(q)
                merged = {r: v for r, v in c_else.items()
                          if const.get(r) == v}
        except _Truncate:
            del body[s_body:]
            for pc_ in offsets[s_off:]:
                visited.discard(pc_)
            del offsets[s_off:]
            del prefix_defs[s_pref:]
            defs_set.difference_update(defs_order[s_defs:])
            del defs_order[s_defs:]
            del assumed_events[s_ae:]
            del folds[s_folds:]
            const.clear()
            const.update(s_const)
            return None
        # only constants that survive *both* paths stay folded
        const.clear()
        const.update(merged)
        dyn[0] = True
        if else_len >= 0:
            # the assumed (fall) direction skips the taken arm's slots
            ex_asm[0] += else_len
        return join

    def emit_branch(inst, p, k):
        """Emit a conditional branch and return the assumed continuation pc.

        The non-assumed direction becomes a side exit; if the assumed
        continuation turns out to be unusable (already in the block, out
        of range, length cap) the main loop closes the block with a plain
        exit to it, so a loop-closing backward branch keeps its hot
        direction off the side-exit path.

        The concrete shape (test + event + guard) is decided at assembly
        time via the ``\\x02``/``\\x03``/``\\x04`` markers — see
        :func:`render_branch` — because whether the block loops is only
        known once formation completes."""
        cond = _branch_cond(inst)
        nxt = try_diamond(inst, p, k, cond)
        if nxt is not None:
            return nxt
        return _emit_side_branch(inst, p, k, cond)

    p = head
    looped = False
    while True:
        if p == head and offsets:
            # the assumed path closed back on the head: hot inner loops
            # iterate in place (see the module docstring for the budget
            # contract encoded in the for-range driver below)
            looped = True
            break
        if len(offsets) >= MAX_BLOCK_LEN or p in visited or not 0 <= p < n:
            emit_exit(body, None, "", p, len(offsets))
            break
        inst = insts[p]
        k = len(offsets)
        mark_defs = len(defs_order)
        mark_branches = len(branches)
        mark_ae, mark_folds = len(assumed_events), len(folds)
        const_before = dict(const)
        prefix_defs.append(tuple(defs_order))
        offsets.append(p)
        visited.add(p)
        mark = len(body)
        try:
            nxt = emit_one(inst, p, k)
            if nxt == "branch":
                nxt = emit_branch(inst, p, k)
        except _Truncate:
            del body[mark:]
            defs_set.difference_update(defs_order[mark_defs:])
            del defs_order[mark_defs:]
            del branches[mark_branches:]
            del assumed_events[mark_ae:]
            del folds[mark_folds:]
            const.clear()
            const.update(const_before)
            prefix_defs.pop()
            offsets.pop()
            visited.discard(p)
            if not offsets:
                return None
            emit_exit(body, None, "", p, len(offsets))
            break
        if nxt == "terminal":
            break
        p = nxt

    # -- assemble and compile ------------------------------------------------
    # Out-of-range register numbers (corrupted operands) must fault at the
    # offending instruction with interpreter-identical errors, not at block
    # entry: refuse the block and let the engine single-step it.
    if any(not 0 <= i < 32 for i in ref_r) or \
            any(not 0 <= i < 32 for i in ref_f):
        return None
    length = len(offsets)
    entry = []
    loads = [f"r{i} = regs[{i}] & 4294967295" for i in sorted(ref_r)]
    loads += [f"f{i} = fregs[{i}]" for i in sorted(ref_f)]
    if ref_fc[0]:
        loads.append("fc = M.fp_cond")
    for j in range(0, len(loads), 8):
        entry.append("; ".join(loads[j:j + 8]))

    header = ("def _b(base, stop, regs=RG, fregs=FG, pend=PD, cs=CS, I=IN, "
              "SE=SEC, lw=LW, sw=SW, lb=LB, sb=SB, ld=LD, sd=SD, M=MM, "
              "PG=PG_, UW=UW_, P4=P4_, UD=UD_, P8=P8_, RT=RT_, "
              "SimulationError=ERR):")
    lines = [header]
    line_map: dict[int, int] = {}
    if need_guard[0]:
        # the constant fold assumed regs[0] == 0; bounce (zero progress)
        # to the interpreter in the pathological case where it isn't
        lines.append(f" if regs[0]: return {head}, base")
    for text in entry:
        lines.append(" " + text)
    indent = " "
    slen = length - ex_asm[0]
    if looped:
        mode = "rle" if not dyn[0] else "runs"
    else:
        mode = "flat"
    if mode == "rle":
        # whole-iteration driver: at least one iteration (the engine's
        # entry guard proved it fits the fuel limit), then as many more as
        # fit the *stop* budget
        lines.append(" b0 = base")
        lines.append(f" end = stop - {length - 1}")
        lines.append(" if end <= base: end = base + 1")
        lines.append(f" for base in range(b0, end, {length}):")
        indent = "  "
    elif mode == "runs":
        # fold loop: iterations retire a path-dependent count, so the
        # stride is applied explicitly (length minus the skipped offsets).
        # `runs` counts consecutive all-assumed iterations since `rb0` —
        # they pend nothing and are flushed as one run marker at the next
        # divergence or exit; `im` flags an iteration that diverged (its
        # events were pended exactly) so the epilogue restarts the run.
        lines.append(" rb0 = base; runs = 0; im = 0")
        lines.append(" while True:")
        lines.append("  ex = 0")
        indent = "  "
    elif dyn[0]:
        lines.append(" ex = 0")
    for text, k in body:
        # lines emitted inside a fold suite carry their own leading
        # indent; strip it so the marker renders see a clean prefix
        stripped = text.lstrip(" ")
        pad = text[:len(text) - len(stripped)]
        if stripped.startswith("\x07"):
            stripped = render_fold(stripped, mode, slen)
        else:
            stripped = render_branch(stripped, mode, dyn[0], length, slen)
        if stripped is None:
            continue
        lines.append(indent + pad +
                     render_cnt(render_writeback(stripped, looped), dyn[0]))
        if k is not None:
            line_map[len(lines)] = k
    if mode == "rle":
        # range exhausted: the iteration at `base` completed — record the
        # whole run and hand the head back to the engine for housekeeping
        lines.append(f" pend((None, RT, b0, (base - b0) // {length} + 1, "
                     f"{length}))")
        lines.append(" " + render_writeback(writeback(), True) +
                     f"return {head}, base + {length}")
    elif mode == "runs":
        # iteration complete: advance by what actually retired; a pure
        # (all-assumed) iteration extends the run, a diverged one already
        # pended its events and restarts the run after itself.  Run again
        # only if a whole worst-case iteration still fits the budget.
        lines.append(f"  base += {length} - ex")
        lines.append("  if im:")
        lines.append("   im = 0; rb0 = base")
        lines.append("  else:")
        lines.append("   runs += 1")
        lines.append(f"  if base + {length} > stop:")
        lines.append(f"   pend((None, RT, rb0, runs, {slen}))")
        lines.append("   " + render_writeback(writeback(), True) +
                     f"return {head}, base")

    head_addr = insts[head].address
    source = "\n".join(lines) + "\n"
    if looped:
        # In iterations after the first, locals for registers defined at
        # *later* offsets hold the previous iteration's (already-committed)
        # values, so fault recovery must write back the full def set, not
        # just the prefix.  In the first iteration those locals still hold
        # the entry-loaded values (defs are always entry-loaded because
        # def_r/def_f add to the ref sets), making the writeback a no-op.
        prefix = (tuple(defs_order),) * len(offsets)
    else:
        prefix = tuple(prefix_defs)
    spec = BlockSpec()
    spec.head = head
    spec.head_addr = head_addr
    spec.code = compile(source, f"<superblock 0x{head_addr:x}>", "exec")
    spec.max_len = length
    spec.offsets = tuple(offsets)
    spec.line_map = line_map
    spec.prefix_defs = prefix
    spec.source = source
    spec.looped = looped
    spec.iter_idx = tuple(
        (p, assumed, K) for p, K, assumed in assumed_events
    ) if looped else ()
    spec.slen = slen
    return spec


class TraceCache:
    """Per-machine cache of compiled superblocks (immutable code, so blocks
    are never invalidated).  Hit/miss/side-exit counters feed the
    ``sim.tier1.*`` telemetry series.

    Formation and bytecode compilation go through the per-executable
    :class:`BlockSpec` cache, so a fresh machine over an already-traced
    executable (the common pipeline shape: one profiling pass, then one
    sequence pass; or many service jobs) pays only a cheap re-bind per
    block instead of recompiling."""

    def __init__(self, machine):
        self.machine = machine
        self.blocks: dict[int, CompiledBlock] = {}
        self.code_map: dict = {}
        self.blacklist: set[int] = set()
        self.compiled = 0
        self._specs = _specs_for(machine.executable)

    def compile(self, head) -> CompiledBlock | None:
        if self.compiled >= MAX_BLOCKS or head in self.blacklist:
            return None
        specs = self._specs
        if head in specs:
            spec = specs[head]
        else:
            try:
                spec = _form_superblock(self.machine, head)
            except Exception:
                spec = None
            specs[head] = spec
        if spec is not None:
            try:
                block = _bind_block(spec, self.machine)
            except Exception:
                block = None
        else:
            block = None
        if block is None:
            self.blacklist.add(head)
            return None
        self.blocks[head] = block
        self.code_map[block.code] = block
        self.compiled += 1
        return block


def recover_block_fault(cache: TraceCache, exc: BaseException,
                        machine) -> tuple[int, int] | None:
    """Map a fault raised inside a compiled superblock back to the exact
    (pc_index, retired_count) and write the pre-fault register state back
    to the machine.  For looped blocks the branch events of the completed
    iterations (as one run marker) and of the partial final iteration are
    reconstructed into the pending-event list, exactly as tier0 would have
    recorded them.  Returns ``None`` if *exc* did not originate in one of
    *cache*'s blocks."""
    tb = exc.__traceback__
    hit = None
    while tb is not None:
        block = cache.code_map.get(tb.tb_frame.f_code)
        if block is not None:
            hit = (block, tb.tb_frame, tb.tb_lineno)
        tb = tb.tb_next
    if hit is None:
        return None
    block, frame, lineno = hit
    locs = frame.f_locals
    base = locs.get("base")
    if not isinstance(base, int):
        return None
    k = block.line_map.get(lineno)
    if k is None:
        # fault in the entry loads (should not happen): nothing executed
        return block.head, base
    # fold blocks skip the untaken arm's offsets; `ex` holds the skip
    ex = locs.get("ex")
    if type(ex) is not int:
        ex = 0
    if block.looped and block.iter_events:
        pending = machine._pending
        b0 = locs.get("b0")
        if isinstance(b0, int):
            # RLE loop: completed iterations derive from the range driver
            pending.append(
                (None, block.iter_events, b0, (base - b0) // block.max_len,
                 block.max_len))
            for inst, assumed, K in block.iter_events:
                if K <= k:
                    pending.append((inst, assumed, base + K))
        else:
            # runs-compressed loop: the generated code tracks the run
            rb0, runs = locs.get("rb0"), locs.get("runs")
            if isinstance(rb0, int) and isinstance(runs, int):
                pending.append(
                    (None, block.iter_events, rb0, runs, block.slen))
                if not locs.get("im"):
                    # fault on the assumed path: replay its events up to
                    # the fault (a diverged iteration pended them already)
                    for inst, assumed, K in block.iter_events:
                        if K <= k - ex:
                            pending.append((inst, assumed, base + K))
    for kind, idx in block.prefix_defs[k]:
        if kind == "r":
            v = locs.get(f"r{idx}")
            if v is not None:
                # block locals hold the unsigned form; the register file
                # is signed
                machine.regs[idx] = v - 4294967296 \
                    if v & 2147483648 else v
        elif kind == "f":
            v = locs.get(f"f{idx}")
            if v is not None:
                machine.fregs[idx] = v
        else:
            v = locs.get("fc")
            if v is not None:
                machine.fp_cond = v
    return block.offsets[k], base + k + 1 - ex
