"""Simulator substrate: the QPT stand-in.

Runs linked executables (:class:`~repro.sim.machine.Machine`) while streaming
the events QPT's instrumentation counted: edge profiles
(:class:`~repro.sim.profile.EdgeProfile`) and trace-based sequence analysis
(:class:`~repro.sim.trace.SequenceAnalyzer`).
"""

from repro.errors import CallFrame, CrashReport
from repro.isa.program import Executable
from repro.sim.engine import (
    DEFAULT_ENGINE, ENGINES, FORCE_TIER0_ENV, resolve_engine_name,
)
from repro.sim.machine import (
    ExitStatus, HALT_ADDRESS, InputExhausted, Machine, Observer,
    SimulationError, SimulationLimitExceeded, SimulationTimeout,
)
from repro.sim.memory import Memory, MemoryError_
from repro.sim.profile import EdgeProfile
from repro.sim.trace import BranchTrace, SequenceAnalyzer

__all__ = [
    "Machine",
    "Observer",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FORCE_TIER0_ENV",
    "resolve_engine_name",
    "ExitStatus",
    "HALT_ADDRESS",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationTimeout",
    "InputExhausted",
    "CrashReport",
    "CallFrame",
    "Memory",
    "MemoryError_",
    "EdgeProfile",
    "SequenceAnalyzer",
    "BranchTrace",
    "run_with_profile",
    "run_with_sequences",
]


def run_with_profile(
    executable: Executable,
    inputs: list | None = None,
    max_instructions: int = 200_000_000,
    engine: str | None = None,
) -> EdgeProfile:
    """Run *executable* to completion and return its edge profile."""
    profile = EdgeProfile()
    machine = Machine(executable, inputs=inputs, observers=[profile],
                      max_instructions=max_instructions, engine=engine)
    machine.run()
    return profile


def run_with_sequences(
    executable: Executable,
    predictions_by_name: dict[str, dict[int, bool]],
    inputs: list | None = None,
    max_instructions: int = 200_000_000,
    engine: str | None = None,
) -> dict[str, SequenceAnalyzer]:
    """Run *executable* once while measuring the sequence-length distribution
    of several static predictors simultaneously.

    *predictions_by_name* maps a label (e.g. ``"perfect"``) to a full
    prediction map (branch address -> predict-taken). Returns the analyzers
    keyed by the same labels.
    """
    analyzers = {name: SequenceAnalyzer(preds)
                 for name, preds in predictions_by_name.items()}
    machine = Machine(executable, inputs=inputs,
                      observers=list(analyzers.values()),
                      max_instructions=max_instructions, engine=engine)
    machine.run()
    return analyzers
