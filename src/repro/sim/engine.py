"""Tiered execution engines behind the :class:`~repro.sim.Machine` facade.

Two engines share the pre-decoded handler table from
:mod:`repro.sim.decode` and one definition of the housekeeping that used
to live inline in the interpreter loop (fuel, watchdog ticks, hot-PC
sampling, batched observer flushes):

* **tier0** — straight dispatch: ``pc = handlers[pc](count)`` with
  per-instruction fuel/tick checks.  The behavioral baseline.
* **tier1** — tier0 plus a :class:`~repro.sim.traces.TraceCache`: landing
  pcs (branch/jump targets) are counted, and once one crosses
  ``HOT_THRESHOLD`` the straight-line region starting there is compiled
  into a superblock.  Watchdog/telemetry/observer work is batched at
  superblock boundaries; the fuel limit is respected exactly by refusing
  to enter a block whose full path could cross it.

Both engines retire identical architectural state, outputs, branch-event
streams, and crash reports — the Tier-0-vs-Tier-1 differential suite
holds over every benchmark.

Engine selection (:func:`resolve_engine_name`): an explicit request
(constructor argument / CLI ``--engine``) wins, then the
``REPRO_SIM_ENGINE`` environment variable, then the default ``tier1``.
The chaos seam ``REPRO_CHAOS_FORCE_TIER0`` overrides everything — it
exists so fault-injection harnesses can pin the baseline engine without
threading configuration through every layer.
"""

from __future__ import annotations

import os
from time import monotonic, perf_counter

from repro.errors import (
    SimulationError, SimulationLimitExceeded, SimulationTimeout,
)
from repro.isa.program import TEXT_BASE, WORD_SIZE
from repro.sim.decode import HALT_INDEX, build_handlers
from repro.sim.traces import HOT_THRESHOLD, TraceCache, recover_block_fault

__all__ = ["DEFAULT_ENGINE", "ENGINES", "ENGINE_ENV", "FORCE_TIER0_ENV",
           "resolve_engine_name", "create_engine", "Tier0Engine",
           "Tier1Engine"]

DEFAULT_ENGINE = "tier1"
ENGINES = ("tier0", "tier1")

#: Environment override for the default engine (lowest priority).
ENGINE_ENV = "REPRO_SIM_ENGINE"
#: Chaos seam: any non-empty value pins every new Machine to tier0,
#: regardless of explicit requests (highest priority).
FORCE_TIER0_ENV = "REPRO_CHAOS_FORCE_TIER0"


def resolve_engine_name(requested: str | None = None) -> str:
    """Resolve the engine to use: chaos seam > explicit > env > default."""
    if os.environ.get(FORCE_TIER0_ENV, ""):
        return "tier0"
    name = requested or os.environ.get(ENGINE_ENV, "") or DEFAULT_ENGINE
    if name not in ENGINES:
        raise ValueError(
            f"unknown sim engine {name!r}; expected one of {ENGINES}")
    return name


def create_engine(machine):
    """Instantiate the engine named by ``machine.engine``."""
    if machine.engine == "tier0":
        return Tier0Engine(machine)
    return Tier1Engine(machine)


def _replay_sink(ob):
    """Adapt an observer without ``on_events`` to the batched API.

    Run markers from looped superblocks (``(None, template, base0,
    iterations, length)``) are expanded into the exact per-event calls
    tier0 would have made."""
    on_branch = getattr(ob, "on_branch", None)
    on_indirect = getattr(ob, "on_indirect", None)

    def replay(batch):
        for ev in batch:
            inst = ev[0]
            if inst is None:
                if on_branch is not None:
                    _, tmpl, b0, iters, ln = ev
                    for i in range(iters):
                        cb = b0 + i * ln
                        for binst, taken, off in tmpl:
                            on_branch(binst, taken, cb + off)
                continue
            taken = ev[1]
            if taken is None:
                if on_indirect is not None:
                    on_indirect(inst, ev[2])
            elif on_branch is not None:
                on_branch(inst, taken, ev[2])
    return replay


class _EngineBase:
    """Shared setup: the pre-decoded handler table and event batching."""

    name = "?"

    def __init__(self, machine):
        self.machine = machine
        self.handlers = build_handlers(machine)

    def _make_flush(self, observers):
        """Build the batched event flush for one run.

        Copy-then-clear so a raising observer can never cause events to be
        re-delivered by the fault-path drain; the crash-report branch
        history and the dynamic-branch count are updated before observers
        see the batch, so counts survive observer faults.

        Run markers (``ev[0] is None``) summarize the completed iterations
        of a looped superblock; the history and the count aggregate them
        in ``O(template)`` rather than ``O(iterations)`` — the bounded
        history deque only ever needs its last ``maxlen`` events."""
        machine = self.machine
        pending = machine._pending
        history = machine._branch_history
        hist_append = history.append
        hist_extend = history.extend
        hist_max = history.maxlen
        counted = [0]
        # duck-typed observers (tests) may lack on_events; replay the batch
        # through their per-event hooks instead
        sinks = []
        for ob in observers:
            batched = getattr(ob, "on_events", None)
            if batched is None:
                batched = _replay_sink(ob)
            sinks.append(batched)

        def flush():
            if not pending:
                return
            batch = pending[:]
            del pending[:]
            n = 0
            for ev in batch:
                if ev[0] is None:
                    _, tmpl, _b0, iters, _ln = ev
                    if iters > 0 and tmpl:
                        n += len(tmpl) * iters
                        pairs = [(t[0].address, t[1]) for t in tmpl]
                        reps = min(iters, hist_max // len(pairs) + 1)
                        hist_extend(pairs * reps)
                    continue
                taken = ev[1]
                if taken is not None:
                    hist_append((ev[0].address, taken))
                    n += 1
            counted[0] += n
            for sink in sinks:
                sink(batch)
        return flush, counted


class Tier0Engine(_EngineBase):
    """Pre-decoded dispatch with per-instruction housekeeping."""

    name = "tier0"

    def run_loop(self, pc):
        m = self.machine
        handlers = self.handlers
        insts = m._insts
        n = len(handlers)
        count = m.instr_count
        limit = m.max_instructions
        observers = list(m.observers)
        flush, counted = self._make_flush(observers)
        deadline = None
        if m.wall_clock_deadline is not None:
            deadline = monotonic() + m.wall_clock_deadline
        tick_mask = m._tick_mask
        sampling = m.pc_sample_interval is not None
        hot_pc: dict[int, int] = {}
        ticks = 0
        start = (count, m.dynamic_branches, m.syscall_count, perf_counter())
        m._fault_pc = pc

        try:
            while True:
                if 0 <= pc < n:
                    count += 1
                    if count > limit:
                        raise SimulationLimitExceeded(
                            f"exceeded fuel budget of {limit} instructions "
                            f"at 0x{insts[pc].address:x}")
                    if not count & tick_mask:
                        # periodic housekeeping (cold path, every 2^k
                        # instrs): watchdog + sampler + event flush
                        ticks += 1
                        if deadline is not None and monotonic() > deadline:
                            raise SimulationTimeout(
                                f"watchdog: exceeded wall-clock deadline of "
                                f"{m.wall_clock_deadline:.3f}s after {count} "
                                f"instructions at 0x{insts[pc].address:x}")
                        if sampling:
                            addr = insts[pc].address
                            hot_pc[addr] = hot_pc.get(addr, 0) + 1
                        flush()
                    pc = handlers[pc](count)
                    continue
                if pc == HALT_INDEX:
                    break
                raise SimulationError(
                    f"pc out of range: 0x{TEXT_BASE + WORD_SIZE * pc:x}")
        except BaseException:
            try:
                flush()
            except Exception:
                pass
            m._fault_pc = pc
            m._finish_run(count, counted[0], ticks, hot_pc, start,
                          faulted=True)
            raise

        flush()
        m._finish_run(count, counted[0], ticks, hot_pc, start, faulted=False)
        for ob in observers:
            ob.on_finish(count)
        return m._exit_status(count)


class Tier1Engine(_EngineBase):
    """Tier-0 dispatch plus hot-PC superblock compilation."""

    name = "tier1"

    def __init__(self, machine):
        super().__init__(machine)
        self.cache = TraceCache(machine)
        self.heat: dict[int, int] = {}

    def run_loop(self, pc):
        m = self.machine
        handlers = self.handlers
        insts = m._insts
        n = len(handlers)
        count = m.instr_count
        limit = m.max_instructions
        observers = list(m.observers)
        flush, counted = self._make_flush(observers)
        deadline = None
        if m.wall_clock_deadline is not None:
            deadline = monotonic() + m.wall_clock_deadline
        tick_mask = m._tick_mask
        tick_shift = (tick_mask + 1).bit_length() - 1
        # per-dispatch budget for looped superblocks: one call may retire at
        # most one tick interval's worth of instructions (and never past the
        # fuel limit), bounding watchdog-check latency, sampling granularity
        # and pending-event memory exactly like tier0's tick cadence
        chunk = tick_mask + 1
        sampling = m.pc_sample_interval is not None
        hot_pc: dict[int, int] = {}
        ticks = 0
        ticks_done = count >> tick_shift
        start = (count, m.dynamic_branches, m.syscall_count, perf_counter())
        m._fault_pc = pc

        cache = self.cache
        blocks = cache.blocks
        blocks_get = blocks.get
        heat = self.heat
        heat_get = heat.get
        side_cell = m._side_exit_cell
        se_start = side_cell[0]
        compiled_start = cache.compiled
        hits = 0
        misses = 0
        residency: dict[int, int] = {}
        landed = True  # run entry is a landing

        def tier_stats():
            return {
                "compiled": cache.compiled - compiled_start,
                "hits": hits,
                "misses": misses,
                "side_exits": side_cell[0] - se_start,
                "residency": residency,
            }

        try:
            while True:
                if 0 <= pc < n:
                    block = blocks_get(pc)
                    progressed = False
                    if block is not None and count + block.max_len <= limit:
                        before = count
                        stop = count + chunk
                        if stop > limit:
                            stop = limit
                        npc, count = block.fn(count, stop)
                        # a zero-progress return is the $zero-guard bounce:
                        # fall through and single-step instead
                        progressed = count != before
                    if progressed:
                        pc = npc
                        hits += 1
                        length = count - before
                        residency[length] = residency.get(length, 0) + 1
                        nt = count >> tick_shift
                        if nt != ticks_done:
                            # batched housekeeping at the block boundary
                            crossed = nt - ticks_done
                            ticks_done = nt
                            ticks += crossed
                            if deadline is not None and pc != HALT_INDEX \
                                    and monotonic() > deadline:
                                addr = insts[pc].address if 0 <= pc < n \
                                    else block.head_addr
                                raise SimulationTimeout(
                                    f"watchdog: exceeded wall-clock deadline "
                                    f"of {m.wall_clock_deadline:.3f}s after "
                                    f"{count} instructions at 0x{addr:x}")
                            if sampling:
                                addr = block.head_addr
                                hot_pc[addr] = hot_pc.get(addr, 0) + crossed
                            flush()
                        landed = True
                        continue
                    if landed:
                        misses += 1
                        h = heat_get(pc, 0) + 1
                        heat[pc] = h
                        if h == HOT_THRESHOLD and block is None:
                            if cache.compile(pc) is not None:
                                landed = False
                                continue
                    # interpret one instruction (cold pc, or a block held
                    # back by the fuel guard so the limit faults exactly)
                    count += 1
                    if count > limit:
                        raise SimulationLimitExceeded(
                            f"exceeded fuel budget of {limit} instructions "
                            f"at 0x{insts[pc].address:x}")
                    if not count & tick_mask:
                        ticks += 1
                        ticks_done = count >> tick_shift
                        if deadline is not None and monotonic() > deadline:
                            raise SimulationTimeout(
                                f"watchdog: exceeded wall-clock deadline of "
                                f"{m.wall_clock_deadline:.3f}s after {count} "
                                f"instructions at 0x{insts[pc].address:x}")
                        if sampling:
                            addr = insts[pc].address
                            hot_pc[addr] = hot_pc.get(addr, 0) + 1
                        flush()
                    npc = handlers[pc](count)
                    landed = npc != pc + 1
                    pc = npc
                    continue
                if pc == HALT_INDEX:
                    break
                raise SimulationError(
                    f"pc out of range: 0x{TEXT_BASE + WORD_SIZE * pc:x}")
        except BaseException as exc:
            recovered = recover_block_fault(cache, exc, m)
            if recovered is not None:
                pc, count = recovered
            try:
                flush()
            except Exception:
                pass
            m._fault_pc = pc
            m._finish_run(count, counted[0], ticks, hot_pc, start,
                          faulted=True, tier_stats=tier_stats())
            raise

        flush()
        m._finish_run(count, counted[0], ticks, hot_pc, start, faulted=False,
                      tier_stats=tier_stats())
        for ob in observers:
            ob.on_finish(count)
        return m._exit_status(count)
