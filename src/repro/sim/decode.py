"""Tier-0 pre-decoding: one closure per instruction, built once per machine.

The seed interpreter re-dispatched every instruction through a long
``if name == ...`` chain, paying attribute lookups (``inst.op.name``,
``inst.rs``...) on every dynamic instruction.  :func:`build_handlers`
hoists all of that to *decode time*: each static instruction becomes a
small closure whose free variables are plain ints (register numbers,
immediates, precomputed branch-target indices) and whose body is just
the operation's semantics.  The engine loop then runs
``pc = handlers[pc](count)`` with no per-step decoding at all.

Handler protocol
----------------
``handler(count) -> next_pc_index`` where *count* is the retired-
instruction counter *including* this instruction.  Handlers never touch
fuel, ticks, or telemetry — that bookkeeping stays in the engine loop so
Tier-0 and Tier-1 share one definition of it.  Branch and indirect-jump
events are appended to the machine's pending-event list
(``machine._pending``) as ``(inst, taken_or_None, count)`` tuples and
flushed in batches by the engine (see ``Observer.on_events``).

Decode never fails the machine constructor: an instruction whose decode
raises (corrupted operands injected by chaos tooling, unknown opcodes)
gets a *deferred-fault* closure that raises the same error only if and
when that pc actually executes — exactly where the seed interpreter
would have raised it.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.program import TEXT_BASE, WORD_SIZE

__all__ = ["HALT_ADDRESS", "HALT_INDEX", "build_handlers"]

#: Sentinel return address: ``jr $ra`` to this halts the machine (used when
#: a program's ``main`` returns and no exit syscall was made).
HALT_ADDRESS = 0

#: The (negative) instruction index the halt address maps to; engines break
#: out of their dispatch loop when ``pc == HALT_INDEX``.
HALT_INDEX = (HALT_ADDRESS - TEXT_BASE) // WORD_SIZE

_M32 = 0xFFFF_FFFF
_W32 = 1 << 32
_S32 = 1 << 31


def build_handlers(machine) -> list:
    """Pre-decode ``machine._insts`` into a parallel list of closures."""
    insts = machine._insts
    tindex = machine._tindex
    regs = machine.regs
    fregs = machine.fregs
    memory = machine.memory
    pend = machine._pending.append
    call_stack = machine._call_stack
    load_word = memory.load_word
    store_word = memory.store_word
    load_byte = memory.load_byte
    store_byte = memory.store_byte
    load_double = memory.load_double
    store_double = memory.store_double

    def make(inst, i):
        name = inst.op.name
        nxt = i + 1
        rd, rs, rt = inst.rd, inst.rs, inst.rt
        fd, fs, ft = inst.fd, inst.fs, inst.ft
        imm = inst.imm

        if name == "addiu" or name == "addi":
            def h(count, rs=rs, rt=rt, imm=imm, nxt=nxt):
                v = (regs[rs] + imm) & _M32
                regs[rt] = v - _W32 if v & _S32 else v
                return nxt
            return h
        if name == "lw":
            def h(count, rs=rs, rt=rt, imm=imm, nxt=nxt):
                regs[rt] = load_word((regs[rs] & _M32) + imm)
                return nxt
            return h
        if name == "sw":
            def h(count, rs=rs, rt=rt, imm=imm, nxt=nxt):
                store_word((regs[rs] & _M32) + imm, regs[rt])
                return nxt
            return h
        if name == "addu" or name == "add":
            def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                v = (regs[rs] + regs[rt]) & _M32
                regs[rd] = v - _W32 if v & _S32 else v
                return nxt
            return h
        if name == "beq":
            def h(count, inst=inst, rs=rs, rt=rt, t=tindex[i], nxt=nxt):
                if regs[rs] == regs[rt]:
                    pend((inst, True, count))
                    return t
                pend((inst, False, count))
                return nxt
            return h
        if name == "bne":
            def h(count, inst=inst, rs=rs, rt=rt, t=tindex[i], nxt=nxt):
                if regs[rs] != regs[rt]:
                    pend((inst, True, count))
                    return t
                pend((inst, False, count))
                return nxt
            return h
        if name == "slt":
            def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                regs[rd] = 1 if regs[rs] < regs[rt] else 0
                return nxt
            return h
        if name == "slti":
            def h(count, rs=rs, rt=rt, imm=imm, nxt=nxt):
                regs[rt] = 1 if regs[rs] < imm else 0
                return nxt
            return h
        if name == "sltu":
            def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                regs[rd] = 1 if (regs[rs] & _M32) < (regs[rt] & _M32) else 0
                return nxt
            return h
        if name == "sltiu":
            def h(count, rs=rs, rt=rt, uimm=imm & _M32, nxt=nxt):
                regs[rt] = 1 if (regs[rs] & _M32) < uimm else 0
                return nxt
            return h
        if name == "j":
            def h(count, t=tindex[i]):
                return t
            return h
        if name == "jal":
            ra = TEXT_BASE + WORD_SIZE * (i + 1)
            def h(count, inst=inst, t=tindex[i], ra=ra,
                  frame=(inst.address, inst.target_address, ra)):
                regs[31] = ra
                call_stack.append(frame)
                return t
            return h
        if name == "jr":
            if rs == 31:
                def h(count, rs=rs):
                    addr = regs[rs] & _M32
                    if call_stack:
                        call_stack.pop()
                    if addr == HALT_ADDRESS:
                        return HALT_INDEX
                    return (addr - TEXT_BASE) // WORD_SIZE
                return h

            def h(count, inst=inst, rs=rs):
                addr = regs[rs] & _M32
                pend((inst, None, count))
                if addr == HALT_ADDRESS:
                    return HALT_INDEX
                return (addr - TEXT_BASE) // WORD_SIZE
            return h
        if name == "jalr":
            ra = TEXT_BASE + WORD_SIZE * (i + 1)
            def h(count, inst=inst, rd=rd, rs=rs, ra=ra, site=inst.address):
                addr = regs[rs] & _M32
                regs[rd] = ra
                call_stack.append((site, addr, ra))
                pend((inst, None, count))
                return (addr - TEXT_BASE) // WORD_SIZE
            return h
        if name == "blez":
            def h(count, inst=inst, rs=rs, t=tindex[i], nxt=nxt):
                if regs[rs] <= 0:
                    pend((inst, True, count))
                    return t
                pend((inst, False, count))
                return nxt
            return h
        if name == "bgtz":
            def h(count, inst=inst, rs=rs, t=tindex[i], nxt=nxt):
                if regs[rs] > 0:
                    pend((inst, True, count))
                    return t
                pend((inst, False, count))
                return nxt
            return h
        if name == "bltz":
            def h(count, inst=inst, rs=rs, t=tindex[i], nxt=nxt):
                if regs[rs] < 0:
                    pend((inst, True, count))
                    return t
                pend((inst, False, count))
                return nxt
            return h
        if name == "bgez":
            def h(count, inst=inst, rs=rs, t=tindex[i], nxt=nxt):
                if regs[rs] >= 0:
                    pend((inst, True, count))
                    return t
                pend((inst, False, count))
                return nxt
            return h
        if name == "sub" or name == "subu":
            def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                v = (regs[rs] - regs[rt]) & _M32
                regs[rd] = v - _W32 if v & _S32 else v
                return nxt
            return h
        if name == "mul":
            def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                v = (regs[rs] * regs[rt]) & _M32
                regs[rd] = v - _W32 if v & _S32 else v
                return nxt
            return h
        if name == "div":
            def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt, addr=inst.address):
                denom = regs[rt]
                if denom == 0:
                    raise SimulationError(
                        f"integer division by zero at 0x{addr:x}")
                num = regs[rs]
                q = abs(num) // abs(denom)
                if (num < 0) != (denom < 0):
                    q = -q
                v = q & _M32
                regs[rd] = v - _W32 if v & _S32 else v
                return nxt
            return h
        if name == "rem":
            def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt, addr=inst.address):
                denom = regs[rt]
                if denom == 0:
                    raise SimulationError(
                        f"integer remainder by zero at 0x{addr:x}")
                num = regs[rs]
                q = abs(num) // abs(denom)
                if (num < 0) != (denom < 0):
                    q = -q
                v = (num - denom * q) & _M32
                regs[rd] = v - _W32 if v & _S32 else v
                return nxt
            return h
        if name in ("and", "or", "xor", "nor"):
            if name == "and":
                def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                    v = regs[rs] & regs[rt] & _M32
                    regs[rd] = v - _W32 if v & _S32 else v
                    return nxt
            elif name == "or":
                def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                    v = (regs[rs] | regs[rt]) & _M32
                    regs[rd] = v - _W32 if v & _S32 else v
                    return nxt
            elif name == "xor":
                def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                    v = (regs[rs] ^ regs[rt]) & _M32
                    regs[rd] = v - _W32 if v & _S32 else v
                    return nxt
            else:
                def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                    v = ~((regs[rs] & _M32) | (regs[rt] & _M32)) & _M32
                    regs[rd] = v - _W32 if v & _S32 else v
                    return nxt
            return h
        if name in ("andi", "ori", "xori"):
            uimm = imm & 0xFFFF
            if name == "andi":
                def h(count, rs=rs, rt=rt, uimm=uimm, nxt=nxt):
                    regs[rt] = regs[rs] & _M32 & uimm
                    return nxt
            elif name == "ori":
                def h(count, rs=rs, rt=rt, uimm=uimm, nxt=nxt):
                    v = (regs[rs] & _M32) | uimm
                    regs[rt] = v - _W32 if v & _S32 else v
                    return nxt
            else:
                def h(count, rs=rs, rt=rt, uimm=uimm, nxt=nxt):
                    v = (regs[rs] & _M32) ^ uimm
                    regs[rt] = v - _W32 if v & _S32 else v
                    return nxt
            return h
        if name in ("sll", "srl", "sra"):
            sh = imm & 31
            if name == "sll":
                def h(count, rs=rs, rt=rt, sh=sh, nxt=nxt):
                    v = ((regs[rs] & _M32) << sh) & _M32
                    regs[rt] = v - _W32 if v & _S32 else v
                    return nxt
            elif name == "srl":
                def h(count, rs=rs, rt=rt, sh=sh, nxt=nxt):
                    v = (regs[rs] & _M32) >> sh
                    regs[rt] = v - _W32 if v & _S32 else v
                    return nxt
            else:
                def h(count, rs=rs, rt=rt, sh=sh, nxt=nxt):
                    v = (regs[rs] >> sh) & _M32
                    regs[rt] = v - _W32 if v & _S32 else v
                    return nxt
            return h
        if name in ("sllv", "srlv", "srav"):
            if name == "sllv":
                def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                    v = ((regs[rs] & _M32) << (regs[rt] & 31)) & _M32
                    regs[rd] = v - _W32 if v & _S32 else v
                    return nxt
            elif name == "srlv":
                def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                    v = (regs[rs] & _M32) >> (regs[rt] & 31)
                    regs[rd] = v - _W32 if v & _S32 else v
                    return nxt
            else:
                def h(count, rd=rd, rs=rs, rt=rt, nxt=nxt):
                    v = (regs[rs] >> (regs[rt] & 31)) & _M32
                    regs[rd] = v - _W32 if v & _S32 else v
                    return nxt
            return h
        if name == "lui":
            v = (imm & 0xFFFF) << 16
            val = v - _W32 if v & _S32 else v
            def h(count, rt=rt, val=val, nxt=nxt):
                regs[rt] = val
                return nxt
            return h
        if name == "lb":
            def h(count, rs=rs, rt=rt, imm=imm, nxt=nxt):
                regs[rt] = load_byte((regs[rs] & _M32) + imm)
                return nxt
            return h
        if name == "lbu":
            def h(count, rs=rs, rt=rt, imm=imm, nxt=nxt):
                regs[rt] = load_byte((regs[rs] & _M32) + imm, signed=False)
                return nxt
            return h
        if name == "sb":
            def h(count, rs=rs, rt=rt, imm=imm, nxt=nxt):
                store_byte((regs[rs] & _M32) + imm, regs[rt])
                return nxt
            return h
        if name == "ldc1":
            def h(count, rs=rs, ft=ft, imm=imm, nxt=nxt):
                fregs[ft] = load_double((regs[rs] & _M32) + imm)
                return nxt
            return h
        if name == "sdc1":
            def h(count, rs=rs, ft=ft, imm=imm, nxt=nxt):
                store_double((regs[rs] & _M32) + imm, fregs[ft])
                return nxt
            return h
        if name == "add.d":
            def h(count, fd=fd, fs=fs, ft=ft, nxt=nxt):
                fregs[fd] = fregs[fs] + fregs[ft]
                return nxt
            return h
        if name == "sub.d":
            def h(count, fd=fd, fs=fs, ft=ft, nxt=nxt):
                fregs[fd] = fregs[fs] - fregs[ft]
                return nxt
            return h
        if name == "mul.d":
            def h(count, fd=fd, fs=fs, ft=ft, nxt=nxt):
                fregs[fd] = fregs[fs] * fregs[ft]
                return nxt
            return h
        if name == "div.d":
            def h(count, fd=fd, fs=fs, ft=ft, nxt=nxt, addr=inst.address):
                if fregs[ft] == 0.0:
                    raise SimulationError(
                        f"FP division by zero at 0x{addr:x}")
                fregs[fd] = fregs[fs] / fregs[ft]
                return nxt
            return h
        if name == "neg.d":
            def h(count, fd=fd, fs=fs, nxt=nxt):
                fregs[fd] = -fregs[fs]
                return nxt
            return h
        if name == "abs.d":
            def h(count, fd=fd, fs=fs, nxt=nxt):
                fregs[fd] = abs(fregs[fs])
                return nxt
            return h
        if name == "mov.d":
            def h(count, fd=fd, fs=fs, nxt=nxt):
                fregs[fd] = fregs[fs]
                return nxt
            return h
        if name == "sqrt.d":
            def h(count, fd=fd, fs=fs, nxt=nxt, addr=inst.address):
                if fregs[fs] < 0:
                    raise SimulationError(
                        f"sqrt of negative at 0x{addr:x}")
                fregs[fd] = fregs[fs] ** 0.5
                return nxt
            return h
        if name == "c.eq.d":
            def h(count, fs=fs, ft=ft, nxt=nxt):
                machine.fp_cond = fregs[fs] == fregs[ft]
                return nxt
            return h
        if name == "c.lt.d":
            def h(count, fs=fs, ft=ft, nxt=nxt):
                machine.fp_cond = fregs[fs] < fregs[ft]
                return nxt
            return h
        if name == "c.le.d":
            def h(count, fs=fs, ft=ft, nxt=nxt):
                machine.fp_cond = fregs[fs] <= fregs[ft]
                return nxt
            return h
        if name == "bc1t":
            def h(count, inst=inst, t=tindex[i], nxt=nxt):
                if machine.fp_cond:
                    pend((inst, True, count))
                    return t
                pend((inst, False, count))
                return nxt
            return h
        if name == "bc1f":
            def h(count, inst=inst, t=tindex[i], nxt=nxt):
                if machine.fp_cond:
                    pend((inst, False, count))
                    return nxt
                pend((inst, True, count))
                return t
            return h
        if name == "mtc1":
            def h(count, fs=fs, rt=rt, nxt=nxt):
                fregs[fs] = float(regs[rt])
                return nxt
            return h
        if name == "mfc1":
            def h(count, fs=fs, rt=rt, nxt=nxt):
                v = int(fregs[fs]) & _M32
                regs[rt] = v - _W32 if v & _S32 else v
                return nxt
            return h
        if name == "cvt.d.w":
            def h(count, fd=fd, fs=fs, nxt=nxt):
                fregs[fd] = float(fregs[fs])
                return nxt
            return h
        if name == "cvt.w.d":
            def h(count, fd=fd, fs=fs, nxt=nxt):
                fregs[fd] = float(int(fregs[fs]))  # truncate toward 0
                return nxt
            return h
        if name == "syscall":
            def h(count, inst=inst, nxt=nxt):
                return nxt if machine._syscall(inst) else HALT_INDEX
            return h
        if name == "nop":
            def h(count, nxt=nxt):
                return nxt
            return h

        def h(count, name=name):
            raise SimulationError(f"unimplemented opcode {name}")
        return h

    handlers = []
    for i, inst in enumerate(insts):
        try:
            handlers.append(make(inst, i))
        except Exception as exc:  # corrupted operands: fault at execute time
            def deferred(count, exc=exc):
                raise exc
            handlers.append(deferred)
    return handlers
