"""Trace-based sequence-length analysis (Section 6 of the paper).

A *break in control* is a mispredicted conditional branch, an indirect jump
other than a procedure return, or an indirect call. Each break ``B`` ends a
sequence running from (but not including) the previous break up to and
including ``B``; these sequences partition the instruction trace.

The paper buckets sequence lengths into intervals ``[10j, 10j+9]`` for
``0 <= j < 999`` with a final overflow bucket for lengths >= 9990, recording
both the number of sequences per bucket and the total instructions they
contain — enough to plot the cumulative distributions of Graphs 4-11 and to
compute the IPBC average and the *dividing length* (the sequence length at
which 50% of executed instructions are accounted for).

:class:`SequenceAnalyzer` computes all of this online from simulator events,
so the (potentially enormous) trace is never materialized — the very point
the paper makes about traces vs. profiles is preserved because we aggregate
per-sequence, not per-program.
"""

from __future__ import annotations

import logging

from repro import telemetry as _telemetry
from repro.isa.instructions import Instruction
from repro.sim.machine import Observer

_log = logging.getLogger("repro.sim.trace")

__all__ = ["SequenceAnalyzer", "BranchTrace", "NUM_BUCKETS", "BUCKET_WIDTH"]

NUM_BUCKETS = 1000
BUCKET_WIDTH = 10
_OVERFLOW = NUM_BUCKETS - 1


class SequenceAnalyzer(Observer):
    """Online computation of the sequence-length distribution for one static
    predictor.

    Parameters
    ----------
    predictions:
        Map from conditional-branch address to the predicted direction
        (True = taken edge). Must cover every branch that executes; a
        missing branch raises ``KeyError`` (predictors always provide a
        default).
    include_trailing:
        Whether the final, break-less run of instructions at program exit is
        counted as one more sequence (default True so that every executed
        instruction is accounted for).
    """

    def __init__(self, predictions: dict[int, bool],
                 include_trailing: bool = True) -> None:
        self.predictions = predictions
        self.include_trailing = include_trailing
        self.seq_counts = [0] * NUM_BUCKETS
        self.seq_instr_sums = [0] * NUM_BUCKETS
        self.n_breaks = 0
        self.n_branches = 0
        self.n_mispredicts = 0
        self.total_instructions = 0
        self._last_break_count = 0

    # -- observer hooks -----------------------------------------------------------

    def on_branch(self, inst: Instruction, taken: bool, instr_count: int) -> None:
        self.n_branches += 1
        if self.predictions[inst.address] != taken:
            self.n_mispredicts += 1
            self._record_break(instr_count)

    def on_indirect(self, inst: Instruction, instr_count: int) -> None:
        self._record_break(instr_count)

    def on_events(self, events) -> None:
        # batched fast path: same aggregation as the per-event hooks.  A
        # run marker stands for `iters` identical loop iterations; when the
        # predictor agrees with every event in the template (the common
        # case — the loop's hot direction), the whole run contributes no
        # breaks and aggregates in O(template).  Otherwise each iteration
        # breaks at the same offsets and is replayed break-by-break.
        predictions = self.predictions
        record = self._record_break
        n = 0
        misses = 0
        for ev in events:
            inst = ev[0]
            if inst is None:
                _, tmpl, b0, iters, ln = ev
                if iters <= 0 or not tmpl:
                    continue
                n += len(tmpl) * iters
                missed = [off for binst, taken, off in tmpl
                          if predictions[binst.address] != taken]
                if not missed:
                    continue
                misses += len(missed) * iters
                for i in range(iters):
                    cb = b0 + i * ln
                    for off in missed:
                        record(cb + off)
                continue
            taken = ev[1]
            if taken is None:
                record(ev[2])
                continue
            n += 1
            if predictions[inst.address] != taken:
                misses += 1
                record(ev[2])
        self.n_branches += n
        self.n_mispredicts += misses

    def on_finish(self, instr_count: int) -> None:
        self.total_instructions = instr_count
        if self.include_trailing and instr_count > self._last_break_count:
            self._record_break(instr_count)

    def _record_break(self, instr_count: int) -> None:
        length = instr_count - self._last_break_count
        self._last_break_count = instr_count
        self.n_breaks += 1
        bucket = min(length // BUCKET_WIDTH, _OVERFLOW)
        self.seq_counts[bucket] += 1
        self.seq_instr_sums[bucket] += length

    # -- derived metrics -----------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        """Fraction of dynamic conditional branches mispredicted."""
        if self.n_branches == 0:
            return 0.0
        return self.n_mispredicts / self.n_branches

    @property
    def ipbc_average(self) -> float:
        """The profile-based metric: instructions executed per break in
        control. (This is what Fisher & Freudenberger computed; the paper
        shows it misrepresents the true sequence-length distribution.)"""
        if self.n_breaks == 0:
            return float(self.total_instructions)
        return self.total_instructions / self.n_breaks

    def cumulative_instructions(self) -> list[tuple[int, float]]:
        """Points ``(x, pct)`` where *pct* is the percentage of executed
        instructions accounted for by sequences of length < x; x ranges over
        bucket upper edges (10, 20, ..., 9990, inf as the last point)."""
        total = sum(self.seq_instr_sums)
        if total == 0:
            return []
        points = []
        running = 0
        for j in range(NUM_BUCKETS):
            running += self.seq_instr_sums[j]
            x = (j + 1) * BUCKET_WIDTH
            points.append((x, 100.0 * running / total))
        return points

    def cumulative_breaks(self) -> list[tuple[int, float]]:
        """Points ``(x, pct)`` where *pct* is the percentage of breaks in
        control accounted for by sequences of length < x (Graph 5)."""
        total = sum(self.seq_counts)
        if total == 0:
            return []
        points = []
        running = 0
        for j in range(NUM_BUCKETS):
            running += self.seq_counts[j]
            x = (j + 1) * BUCKET_WIDTH
            points.append((x, 100.0 * running / total))
        return points

    @property
    def dividing_length(self) -> int:
        """The sequence length at which 50% of executed instructions are
        accounted for (bucket upper edge containing the median instruction)."""
        total = sum(self.seq_instr_sums)
        if total == 0:
            return 0
        running = 0
        for j in range(NUM_BUCKETS):
            running += self.seq_instr_sums[j]
            if 2 * running >= total:
                return (j + 1) * BUCKET_WIDTH
        return NUM_BUCKETS * BUCKET_WIDTH  # pragma: no cover


class BranchTrace(Observer):
    """Records the raw sequence of (branch address, taken) events.

    Intended for tests and small programs — memory grows with the dynamic
    branch count, capped at *limit* events (older events are NOT discarded;
    recording simply stops).  Truncation is *never silent*: the first
    dropped event logs a one-line warning, every dropped event is counted
    in ``dropped`` (and in the ``trace.truncated`` telemetry counter), and
    ``truncated`` stays set for callers to test.
    """

    def __init__(self, limit: int = 1_000_000) -> None:
        self.events: list[tuple[int, bool]] = []
        self.limit = limit
        self.truncated = False
        self.dropped = 0

    def on_events(self, events) -> None:
        # batched fast path: bulk-extend below the limit, fall back to the
        # per-event hook (which owns the truncation accounting) otherwise.
        # Run markers expand to `iters` repetitions of their template.
        conditional: list[tuple[int, bool]] = []
        for e in events:
            if e[0] is None:
                tmpl, iters = e[1], e[3]
                if iters > 0 and tmpl:
                    conditional.extend(
                        [(b.address, t) for b, t, _off in tmpl] * iters)
            elif e[1] is not None:
                conditional.append((e[0].address, e[1]))
        if len(self.events) + len(conditional) <= self.limit:
            self.events.extend(conditional)
            return
        for e in events:
            if e[0] is None:
                _, tmpl, b0, iters, ln = e
                for i in range(iters):
                    cb = b0 + i * ln
                    for binst, taken, off in tmpl:
                        self.on_branch(binst, taken, cb + off)
            elif e[1] is not None:
                self.on_branch(e[0], e[1], e[2])

    def on_branch(self, inst: Instruction, taken: bool, instr_count: int) -> None:
        if len(self.events) < self.limit:
            self.events.append((inst.address, taken))
            return
        if not self.truncated:
            self.truncated = True
            _log.warning(
                "BranchTrace limit of %d events reached at instruction "
                "%d (branch 0x%x); further events are dropped — raise "
                "limit= or use SequenceAnalyzer for online aggregation",
                self.limit, instr_count, inst.address)
        self.dropped += 1
        _telemetry.get().counter("trace.truncated").inc()

    def on_finish(self, instr_count: int) -> None:
        if self.truncated:
            _log.warning(
                "BranchTrace truncated: kept %d events, dropped %d",
                len(self.events), self.dropped)
