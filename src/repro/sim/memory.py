"""Sparse byte-addressable memory for the simulator.

Backed by 4 KiB pages allocated on demand, so the SPIM-like address layout
(text at 0x400000, data at 0x10000000, stack below 0x80000000) costs nothing.
Word (4-byte) and double (8-byte) accesses must be naturally aligned — the
BLC compiler guarantees this — and therefore never cross a page boundary.

Faults (misalignment, page-budget exhaustion) raise
:class:`~repro.errors.MemoryError_`, part of the unified
:class:`~repro.errors.ReproError` taxonomy.
"""

from __future__ import annotations

import struct

from repro.errors import MemoryError_

__all__ = ["Memory", "MemoryError_", "PAGE_SIZE"]

PAGE_SIZE = 4096
_PAGE_MASK = PAGE_SIZE - 1
_PAGE_SHIFT = 12


class Memory:
    """Sparse simulated memory.

    Parameters
    ----------
    max_pages:
        Optional budget on the number of distinct 4 KiB pages that may be
        allocated; touching a new page beyond it raises
        :class:`MemoryError_`. ``None`` (the default) means unlimited —
        the historical behavior.
    """

    def __init__(self, max_pages: int | None = None) -> None:
        self._pages: dict[int, bytearray] = {}
        self.max_pages = max_pages

    def _page(self, addr: int) -> bytearray:
        page = self._pages.get(addr >> _PAGE_SHIFT)
        if page is None:
            if self.max_pages is not None and \
                    len(self._pages) >= self.max_pages:
                raise MemoryError_(
                    f"memory limit exceeded: access at 0x{addr:x} needs a "
                    f"new page but the budget is {self.max_pages} pages "
                    f"({self.max_pages * PAGE_SIZE} bytes)")
            page = bytearray(PAGE_SIZE)
            self._pages[addr >> _PAGE_SHIFT] = page
        return page

    @property
    def pages_allocated(self) -> int:
        """Number of distinct 4 KiB pages touched so far."""
        return len(self._pages)

    # -- bulk ------------------------------------------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Copy *data* into memory starting at *addr* (may span pages)."""
        offset = 0
        while offset < len(data):
            page = self._page(addr + offset)
            start = (addr + offset) & _PAGE_MASK
            n = min(PAGE_SIZE - start, len(data) - offset)
            page[start:start + n] = data[offset:offset + n]
            offset += n

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read *length* bytes starting at *addr* (may span pages)."""
        out = bytearray()
        offset = 0
        while offset < length:
            page = self._page(addr + offset)
            start = (addr + offset) & _PAGE_MASK
            n = min(PAGE_SIZE - start, length - offset)
            out += page[start:start + n]
            offset += n
        return bytes(out)

    # -- scalar -----------------------------------------------------------------

    def load_word(self, addr: int) -> int:
        """Load a signed 32-bit word."""
        if addr & 3:
            raise MemoryError_(f"misaligned word load at 0x{addr:x}")
        page = self._page(addr)
        off = addr & _PAGE_MASK
        value = int.from_bytes(page[off:off + 4], "little")
        return value - 0x1_0000_0000 if value >= 0x8000_0000 else value

    def store_word(self, addr: int, value: int) -> None:
        """Store a 32-bit word (value taken mod 2^32)."""
        if addr & 3:
            raise MemoryError_(f"misaligned word store at 0x{addr:x}")
        page = self._page(addr)
        off = addr & _PAGE_MASK
        page[off:off + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")

    def load_byte(self, addr: int, signed: bool = True) -> int:
        page = self._page(addr)
        value = page[addr & _PAGE_MASK]
        if signed and value >= 0x80:
            return value - 0x100
        return value

    def store_byte(self, addr: int, value: int) -> None:
        page = self._page(addr)
        page[addr & _PAGE_MASK] = value & 0xFF

    def load_double(self, addr: int) -> float:
        if addr & 7:
            raise MemoryError_(f"misaligned double load at 0x{addr:x}")
        page = self._page(addr)
        off = addr & _PAGE_MASK
        return struct.unpack_from("<d", page, off)[0]

    def store_double(self, addr: int, value: float) -> None:
        if addr & 7:
            raise MemoryError_(f"misaligned double store at 0x{addr:x}")
        page = self._page(addr)
        struct.pack_into("<d", page, addr & _PAGE_MASK, value)

    # -- strings -----------------------------------------------------------------

    def load_cstring(self, addr: int, limit: int = 1 << 20) -> str:
        """Read a NUL-terminated latin-1 string starting at *addr*."""
        out = bytearray()
        while len(out) < limit:
            b = self._page(addr) [addr & _PAGE_MASK]
            if b == 0:
                return out.decode("latin-1")
            out.append(b)
            addr += 1
        raise MemoryError_("unterminated string")
