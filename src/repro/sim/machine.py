"""The ISA simulator facade.

This is our stand-in for running a QPT-instrumented binary: instead of
rewriting the executable, the simulator raises events at exactly the points
QPT's instrumentation counted — conditional-branch outcomes (for edge
profiles) and breaks in control (for trace analysis). Observers implementing
:class:`Observer` subscribe to those events; execution itself has no timing
model (the paper measures prediction accuracy, not cycles).

Execution is tiered (see :mod:`repro.sim.engine`): the instruction stream
is pre-decoded once into per-opcode closures (:mod:`repro.sim.decode`,
"tier0"), and by default hot straight-line regions are further compiled
into fused superblock handlers (:mod:`repro.sim.traces`, "tier1") with
watchdog/telemetry/observer housekeeping batched at superblock boundaries.
Both tiers retire identical architectural state, output, branch-event
streams, and crash reports; ``Machine`` is the stable facade over them —
it owns all simulated state (registers, memory, syscalls, call-stack and
branch-history shadows) while the engines own only dispatch.

Arithmetic follows MIPS semantics: 32-bit two's-complement wraparound,
truncating division, logical/arithmetic shifts. Doubles are IEEE 754 via the
host.

Robustness: the simulator enforces two independent resource limits — an
instruction-fuel budget (:class:`SimulationLimitExceeded`) and an optional
wall-clock watchdog deadline (:class:`SimulationTimeout`, checked every
``watchdog_interval`` instructions) — and on *any* fault attaches a
:class:`~repro.errors.CrashReport` snapshot (pc, faulting instruction,
register file, call stack reconstructed from ``jal``/``jalr`` history, last
N branch outcomes) to the raised :class:`~repro.errors.ReproError`.
Unexpected builtin exceptions escaping the dispatch loop are converted into
:class:`SimulationError` so callers never see a bare ``KeyError``.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight
from repro.errors import (
    CallFrame, CrashReport, InputExhausted, MemoryError_, ReproError,
    SimulationError, SimulationLimitExceeded, SimulationTimeout,
)
from repro.isa.instructions import Instruction
from repro.isa.program import Executable, GP_VALUE, STACK_TOP, TEXT_BASE, WORD_SIZE
from repro.sim.decode import HALT_ADDRESS
from repro.sim.engine import create_engine, resolve_engine_name
from repro.sim.memory import PAGE_SIZE, Memory

__all__ = [
    "Machine",
    "Observer",
    "ExitStatus",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationTimeout",
    "InputExhausted",
    "CrashReport",
    "HALT_ADDRESS",
]

_INT_MIN = -(1 << 31)
_WRAP = 1 << 32
_SIGN = 1 << 31


def _s32(value: int) -> int:
    """Wrap *value* to signed 32-bit."""
    value &= 0xFFFF_FFFF
    return value - _WRAP if value & _SIGN else value


#: Builtin exceptions that the dispatch loop converts into typed
#: :class:`SimulationError` internal faults (with crash report) instead of
#: letting them escape bare.
_INTERNAL_FAULTS = (KeyError, IndexError, ValueError, TypeError,
                    AttributeError, ZeroDivisionError, OverflowError,
                    struct.error)


class Observer:
    """Subscriber to execution events. Subclass and override what you need.

    The engines deliver events in *batches* (:meth:`on_events`) flushed at
    housekeeping ticks, superblock boundaries, faults, and run end.  The
    default implementation replays a batch through the per-event hooks, so
    subclasses overriding only :meth:`on_branch`/:meth:`on_indirect` keep
    working unchanged; throughput-sensitive observers override
    :meth:`on_events` instead.  Event order is always execution order, and
    the batch list is only valid for the duration of the call."""

    def on_branch(self, inst: Instruction, taken: bool, instr_count: int) -> None:
        """A conditional branch executed; *taken* is its outcome and
        *instr_count* the number of instructions executed so far (including
        this branch)."""

    def on_indirect(self, inst: Instruction, instr_count: int) -> None:
        """An indirect jump (non-return ``jr``) or indirect call (``jalr``)
        executed — always a break in control under any static predictor."""

    def on_events(self, events) -> None:
        """A batch of ``(inst, taken_or_None, instr_count)`` tuples in
        execution order; ``taken is None`` marks an indirect event.
        Tier-1 run markers (``inst is None``: the completed iterations
        of a looped superblock, see :mod:`repro.sim.traces`) are
        expanded here into the exact per-event calls tier0 would make,
        so subclasses overriding only the per-event hooks stay
        tier-agnostic."""
        for ev in events:
            inst = ev[0]
            if inst is None:
                _, template, base, iterations, length = ev
                for i in range(iterations):
                    count = base + i * length
                    for binst, taken, offset in template:
                        self.on_branch(binst, taken, count + offset)
                continue
            taken = ev[1]
            if taken is None:
                self.on_indirect(inst, ev[2])
            else:
                self.on_branch(inst, taken, ev[2])

    def on_finish(self, instr_count: int) -> None:
        """Execution finished normally."""


@dataclass
class ExitStatus:
    """Result of a completed run."""

    exit_code: int
    instr_count: int
    dynamic_branches: int
    output: str
    machine: "Machine | None" = field(repr=False, default=None)


class Machine:
    """Simulator facade for a linked :class:`Executable`.

    Parameters
    ----------
    executable:
        The program to run.
    inputs:
        Values consumed, in order, by the ``read_int`` / ``read_double`` /
        ``read_char`` syscalls — this is how datasets are fed to benchmarks.
    observers:
        Event subscribers (edge profilers, sequence analyzers, tracers).
    max_instructions:
        Fuel limit; :class:`SimulationLimitExceeded` is raised beyond it.
    wall_clock_deadline:
        Optional watchdog budget in *seconds of wall time* for the whole
        run; :class:`SimulationTimeout` is raised once it passes. Checked
        every *watchdog_interval* instructions (tier1 may defer the check
        to the end of the current superblock, bounding overshoot by the
        block length cap on top of the interval).
    watchdog_interval:
        How many instructions between periodic housekeeping ticks
        (rounded down to a power of two).  The wall-clock deadline is
        checked at least this often; the hot-PC sampler may tighten the
        tick interval (see *pc_sample_interval*).
    max_memory_bytes:
        Optional cap on simulated memory actually allocated (rounded up to
        whole 4 KiB pages); :class:`~repro.errors.MemoryError_` beyond it.
    branch_history_limit:
        How many recent conditional-branch outcomes to keep for the crash
        report's ``branch_history`` ring.
    pc_sample_interval:
        Off by default (``None``).  When set to *N*, one pc sample is
        taken per *N* executed instructions (rounded down to a power of
        two) into ``hot_pc_samples`` — a statistical profile of where
        simulated execution time goes — and published to the telemetry
        sink as the ``sim.hot_pc`` labeled counter.  Tier1 attributes the
        samples of a superblock's instructions to the block's head pc.
    telemetry:
        Explicit telemetry sink override; default is the process-wide
        seam (:func:`repro.telemetry.get`), a no-op unless installed.
        The dispatch loop itself never calls the sink — per-run counters
        are accumulated as local integers and published once at the end
        of :meth:`run` (success or fault), keeping disabled-mode
        overhead on the hot loop at zero telemetry calls.
    engine:
        ``"tier0"`` (pre-decoded dispatch only) or ``"tier1"`` (adds the
        superblock trace cache).  ``None`` resolves via
        :func:`repro.sim.engine.resolve_engine_name`: the
        ``REPRO_CHAOS_FORCE_TIER0`` chaos seam, then ``REPRO_SIM_ENGINE``,
        then the default ``tier1``.
    """

    def __init__(
        self,
        executable: Executable,
        inputs: list | None = None,
        observers: list[Observer] | None = None,
        max_instructions: int = 200_000_000,
        wall_clock_deadline: float | None = None,
        watchdog_interval: int = 16384,
        max_memory_bytes: int | None = None,
        branch_history_limit: int = 32,
        pc_sample_interval: int | None = None,
        telemetry: "_telemetry.Telemetry | None" = None,
        engine: str | None = None,
    ) -> None:
        self.executable = executable
        max_pages = None
        if max_memory_bytes is not None:
            max_pages = max(1, -(-max_memory_bytes // PAGE_SIZE))
        self.memory = Memory(max_pages=max_pages)
        if executable.data:
            self.memory.write_bytes(0x1000_0000, executable.data)
        self.regs = [0] * 32
        self.fregs = [0.0] * 32
        self.fp_cond = False
        self.regs[28] = _s32(GP_VALUE)
        self.regs[29] = STACK_TOP & ~7
        self.regs[30] = self.regs[29]
        self.regs[31] = HALT_ADDRESS
        self.inputs = deque(inputs or [])
        self.observers = list(observers or [])
        self.max_instructions = max_instructions
        self.wall_clock_deadline = wall_clock_deadline
        self.telemetry = telemetry if telemetry is not None \
            else _telemetry.get()
        self.engine = resolve_engine_name(engine)
        # housekeeping ticks happen when (count & mask) == 0; force the
        # interval to a power of two.  The hot-PC sampler shares the tick,
        # so an enabled sampler tightens the interval to its own period.
        interval = max(1, watchdog_interval)
        self.pc_sample_interval = pc_sample_interval
        if pc_sample_interval is not None:
            interval = min(interval, max(1, pc_sample_interval))
        self._tick_mask = (1 << (interval.bit_length() - 1)) - 1
        #: sampled pc -> sample count (only populated when
        #: *pc_sample_interval* is set)
        self.hot_pc_samples: dict[int, int] = {}
        self.watchdog_ticks = 0
        self.syscall_count = 0
        self.output_parts: list[str] = []
        self.instr_count = 0
        self.dynamic_branches = 0
        self.exit_code = 0
        self._inputs_consumed = 0
        self._fault_pc = -1
        #: (call_site_addr, callee_addr, return_addr) — best-effort shadow
        #: stack maintained from jal/jalr/jr-$ra history for crash reports.
        self._call_stack: list[tuple[int, int, int]] = []
        #: ring of recent (branch_address, taken) outcomes for crash reports
        self._branch_history: deque[tuple[int, bool]] = deque(
            maxlen=max(1, branch_history_limit))
        #: batched (inst, taken_or_None, count) events awaiting a flush;
        #: shared by the pre-decoded handlers and compiled superblocks
        self._pending: list[tuple[Instruction, bool | None, int]] = []
        #: shared mutable counter cell bumped by superblock side exits
        self._side_exit_cell = [0]
        self._brk = executable.heap_start
        self._insts = executable.instructions
        # precomputed branch/jump target indices
        self._tindex = [
            (i.target_address - TEXT_BASE) // WORD_SIZE if i.target_address >= 0
            else -1
            for i in self._insts
        ]
        self._engine_obj = None

    # -- public API --------------------------------------------------------------

    @property
    def output(self) -> str:
        """Everything the program printed so far."""
        return "".join(self.output_parts)

    def run(self, entry: int | None = None) -> ExitStatus:
        """Execute from *entry* (default: the executable's entry point) until
        exit, and return an :class:`ExitStatus`.

        Any fault — typed or an unexpected builtin exception from the
        dispatch loop — surfaces as a :class:`~repro.errors.ReproError`
        carrying a :class:`~repro.errors.CrashReport` snapshot.
        """
        pc = ((entry if entry is not None else self.executable.entry)
              - TEXT_BASE) // WORD_SIZE
        try:
            return self._engine().run_loop(pc)
        except ReproError as exc:
            raise exc.attach_crash_report(self.crash_snapshot(self._fault_pc))
        except _INTERNAL_FAULTS as exc:
            fault = SimulationError(
                f"internal simulator fault: {type(exc).__name__}: {exc}")
            fault.attach_crash_report(self.crash_snapshot(self._fault_pc))
            raise fault from exc

    def _engine(self):
        """The lazily-created execution engine (decode happens here)."""
        eng = self._engine_obj
        if eng is None:
            eng = self._engine_obj = create_engine(self)
        return eng

    # -- engine accounting seam --------------------------------------------------

    def _finish_run(self, count: int, new_branches: int, ticks: int,
                    hot_pc: dict[int, int], start: tuple, faulted: bool,
                    tier_stats: dict | None = None) -> None:
        """Fold one run's engine-local accounting back into the machine and
        publish telemetry; called exactly once per run on both the success
        and the fault path."""
        start_count, start_branches, start_syscalls, start_wall = start
        self.instr_count = count
        self.dynamic_branches = start_branches + new_branches
        self.watchdog_ticks += ticks
        self._merge_samples(hot_pc)
        self._publish_telemetry(count - start_count, new_branches,
                                self.syscall_count - start_syscalls,
                                ticks, perf_counter() - start_wall,
                                hot_pc, faulted, tier_stats)

    def _exit_status(self, count: int) -> ExitStatus:
        return ExitStatus(self.exit_code, count, self.dynamic_branches,
                          self.output, self)

    def _merge_samples(self, hot_pc: dict[int, int]) -> None:
        """Fold one run's hot-PC samples into the machine-lifetime dict."""
        for addr, hits in hot_pc.items():
            self.hot_pc_samples[addr] = \
                self.hot_pc_samples.get(addr, 0) + hits

    def _publish_telemetry(self, executed: int, branches: int,
                           syscalls: int, ticks: int, elapsed: float,
                           hot_pc: dict[int, int], faulted: bool,
                           tier_stats: dict | None = None) -> None:
        """Flush this run's locally-accumulated counters to the sink.

        Called exactly once per :meth:`run` (on both the success and the
        fault path); a disabled sink returns immediately.
        """
        tm = self.telemetry
        if not tm.enabled:
            return
        tm.counter("sim.runs").inc()
        if faulted:
            tm.counter("sim.runs_faulted").inc()
        tm.counter("sim.instructions").inc(executed)
        tm.counter("sim.branches").inc(branches)
        tm.counter("sim.syscalls").inc(syscalls)
        tm.counter("sim.watchdog_ticks").inc(ticks)
        tm.gauge("sim.memory_pages").set(self.memory.pages_allocated)
        if elapsed > 0 and executed > 0:
            tm.gauge("sim.instructions_per_sec").set(executed / elapsed)
            tm.histogram("sim.run_instructions").observe(executed)
        if hot_pc:
            family = tm.labeled_counter("sim.hot_pc")
            for addr, hits in hot_pc.items():
                family.inc(f"0x{addr:x}", hits)
            tm.counter("sim.hot_pc_samples").inc(sum(hot_pc.values()))
        if tier_stats is not None:
            tm.counter("sim.tier1.superblocks_compiled").inc(
                tier_stats["compiled"])
            tm.counter("sim.tier1.trace_cache_hits").inc(tier_stats["hits"])
            tm.counter("sim.tier1.trace_cache_misses").inc(
                tier_stats["misses"])
            tm.counter("sim.tier1.side_exits").inc(tier_stats["side_exits"])
            residency = tier_stats["residency"]
            if residency:
                hist = tm.histogram("sim.tier1.superblock_residency")
                for length, times in residency.items():
                    hist.observe(length, times)

    # -- post-mortem -----------------------------------------------------------

    def crash_snapshot(self, pc_index: int = -1) -> CrashReport:
        """Snapshot the machine state for post-mortem debugging.

        *pc_index* is an index into the instruction list (``pc`` in the run
        loop); out-of-range values are reported as such rather than failing.
        """
        addr = TEXT_BASE + WORD_SIZE * pc_index
        if 0 <= pc_index < len(self._insts):
            inst = self._insts[pc_index]
            try:
                text = inst.render()
            except Exception:  # corrupted instruction: still report something
                text = f"<unrenderable {inst.op.name} instruction>"
        else:
            text = "<pc outside text segment>"
        frames = [CallFrame(self._proc_name(callee), call_site, ret)
                  for call_site, callee, ret in self._call_stack]
        return CrashReport(
            pc=addr, instruction=text, instr_count=self.instr_count,
            registers=list(self.regs), fp_registers=list(self.fregs),
            call_stack=frames, branch_history=list(self._branch_history),
            output_tail=self.output[-200:],
            # the process's black box rides along with the machine's: the
            # last-N flight-recorder events (retries, lease steals, state
            # transitions) leading up to this fault
            flight=_flight.dump()[-32:])

    def _proc_name(self, addr: int) -> str:
        """Resolve a text address to its procedure name (best effort)."""
        try:
            return self.executable.procedure_containing(addr).name
        except (IndexError, TypeError):
            return f"0x{addr:x}"

    # -- syscalls ------------------------------------------------------------

    def _syscall(self, inst: Instruction | None = None) -> bool:
        """Execute a syscall; return False to halt.

        *inst* (the ``syscall`` instruction itself) is used to name the
        faulting pc in error messages.
        """
        pc = inst.address if inst is not None else -1
        self.syscall_count += 1
        service = self.regs[2]
        if service == 1:  # print_int
            self.output_parts.append(str(self.regs[4]))
        elif service == 3:  # print_double
            self.output_parts.append(repr(self.fregs[12]))
        elif service == 4:  # print_string
            self.output_parts.append(self.memory.load_cstring(_u32(self.regs[4])))
        elif service == 5:  # read_int
            if not self.inputs:
                raise InputExhausted(
                    f"read_int (syscall 5) starved at pc 0x{pc:x} after "
                    f"consuming {self._inputs_consumed} input values", pc=pc)
            self._inputs_consumed += 1
            self.regs[2] = _s32(int(self.inputs.popleft()))
        elif service == 7:  # read_double
            if not self.inputs:
                raise InputExhausted(
                    f"read_double (syscall 7) starved at pc 0x{pc:x} after "
                    f"consuming {self._inputs_consumed} input values", pc=pc)
            self._inputs_consumed += 1
            self.fregs[0] = float(self.inputs.popleft())
        elif service == 9:  # sbrk
            amount = self.regs[4]
            self.regs[2] = _s32(self._brk)
            self._brk = (self._brk + amount + 7) & ~7
        elif service == 10:  # exit
            self.exit_code = 0
            return False
        elif service == 11:  # print_char
            self.output_parts.append(chr(self.regs[4] & 0xFF))
        elif service == 17:  # exit with code
            self.exit_code = self.regs[4]
            return False
        else:
            raise SimulationError(
                f"unknown syscall {service} at pc 0x{pc:x}", pc=pc)
        return True


def _u32(value: int) -> int:
    """View a signed 32-bit value as unsigned."""
    return value & 0xFFFF_FFFF
