"""The ISA interpreter.

This is our stand-in for running a QPT-instrumented binary: instead of
rewriting the executable, the interpreter raises events at exactly the points
QPT's instrumentation counted — conditional-branch outcomes (for edge
profiles) and breaks in control (for trace analysis). Observers implementing
:class:`Observer` subscribe to those events; the execution itself is
otherwise a plain fetch-decode-execute loop with no timing model (the paper
measures prediction accuracy, not cycles).

Arithmetic follows MIPS semantics: 32-bit two's-complement wraparound,
truncating division, logical/arithmetic shifts. Doubles are IEEE 754 via the
host.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.program import Executable, GP_VALUE, STACK_TOP, TEXT_BASE, WORD_SIZE
from repro.sim.memory import Memory

__all__ = [
    "Machine",
    "Observer",
    "ExitStatus",
    "SimulationError",
    "SimulationLimitExceeded",
    "InputExhausted",
    "HALT_ADDRESS",
]

#: Sentinel return address: `jr $ra` to this halts the machine (used when a
#: program's `main` returns and no exit syscall was made).
HALT_ADDRESS = 0

_INT_MIN = -(1 << 31)
_WRAP = 1 << 32
_SIGN = 1 << 31


def _s32(value: int) -> int:
    """Wrap *value* to signed 32-bit."""
    value &= 0xFFFF_FFFF
    return value - _WRAP if value & _SIGN else value


class SimulationError(Exception):
    """Raised on invalid execution (bad pc, bad syscall, ...)."""


class SimulationLimitExceeded(SimulationError):
    """Raised when the instruction budget is exhausted."""


class InputExhausted(SimulationError):
    """Raised when a read syscall finds no more input."""


class Observer:
    """Subscriber to execution events. Subclass and override what you need."""

    def on_branch(self, inst: Instruction, taken: bool, instr_count: int) -> None:
        """A conditional branch executed; *taken* is its outcome and
        *instr_count* the number of instructions executed so far (including
        this branch)."""

    def on_indirect(self, inst: Instruction, instr_count: int) -> None:
        """An indirect jump (non-return ``jr``) or indirect call (``jalr``)
        executed — always a break in control under any static predictor."""

    def on_finish(self, instr_count: int) -> None:
        """Execution finished normally."""


@dataclass
class ExitStatus:
    """Result of a completed run."""

    exit_code: int
    instr_count: int
    dynamic_branches: int
    output: str
    machine: "Machine" = field(repr=False, default=None)


class Machine:
    """Interpreter for a linked :class:`Executable`.

    Parameters
    ----------
    executable:
        The program to run.
    inputs:
        Values consumed, in order, by the ``read_int`` / ``read_double`` /
        ``read_char`` syscalls — this is how datasets are fed to benchmarks.
    observers:
        Event subscribers (edge profilers, sequence analyzers, tracers).
    max_instructions:
        Fuel limit; :class:`SimulationLimitExceeded` is raised beyond it.
    """

    def __init__(
        self,
        executable: Executable,
        inputs: list | None = None,
        observers: list[Observer] | None = None,
        max_instructions: int = 200_000_000,
    ) -> None:
        self.executable = executable
        self.memory = Memory()
        if executable.data:
            self.memory.write_bytes(0x1000_0000, executable.data)
        self.regs = [0] * 32
        self.fregs = [0.0] * 32
        self.fp_cond = False
        self.regs[28] = _s32(GP_VALUE)
        self.regs[29] = STACK_TOP & ~7
        self.regs[30] = self.regs[29]
        self.regs[31] = HALT_ADDRESS
        self.inputs = deque(inputs or [])
        self.observers = list(observers or [])
        self.max_instructions = max_instructions
        self.output_parts: list[str] = []
        self.instr_count = 0
        self.dynamic_branches = 0
        self.exit_code = 0
        self._brk = executable.heap_start
        self._insts = executable.instructions
        # precomputed branch/jump target indices
        self._tindex = [
            (i.target_address - TEXT_BASE) // WORD_SIZE if i.target_address >= 0
            else -1
            for i in self._insts
        ]

    # -- public API --------------------------------------------------------------

    @property
    def output(self) -> str:
        """Everything the program printed so far."""
        return "".join(self.output_parts)

    def run(self, entry: int | None = None) -> ExitStatus:
        """Execute from *entry* (default: the executable's entry point) until
        exit, and return an :class:`ExitStatus`."""
        pc = ((entry if entry is not None else self.executable.entry)
              - TEXT_BASE) // WORD_SIZE
        insts = self._insts
        tindex = self._tindex
        regs = self.regs
        fregs = self.fregs
        memory = self.memory
        n_insts = len(insts)
        count = self.instr_count
        branches = self.dynamic_branches
        limit = self.max_instructions
        observers = self.observers
        branch_observers = observers  # all observers see branches

        running = True
        while running:
            if not 0 <= pc < n_insts:
                if pc == (HALT_ADDRESS - TEXT_BASE) // WORD_SIZE:
                    break
                raise SimulationError(
                    f"pc out of range: 0x{TEXT_BASE + WORD_SIZE * pc:x}")
            inst = insts[pc]
            count += 1
            if count > limit:
                self.instr_count = count
                raise SimulationLimitExceeded(
                    f"exceeded {limit} instructions at 0x{inst.address:x}")
            name = inst.op.name
            next_pc = pc + 1

            # --- hottest opcodes first ---
            if name == "addiu" or name == "addi":
                regs[inst.rt] = _s32(regs[inst.rs] + inst.imm)
            elif name == "lw":
                regs[inst.rt] = memory.load_word(_u32(regs[inst.rs]) + inst.imm)
            elif name == "sw":
                memory.store_word(_u32(regs[inst.rs]) + inst.imm, regs[inst.rt])
            elif name == "addu" or name == "add":
                regs[inst.rd] = _s32(regs[inst.rs] + regs[inst.rt])
            elif name == "beq":
                taken = regs[inst.rs] == regs[inst.rt]
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "bne":
                taken = regs[inst.rs] != regs[inst.rt]
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "slt":
                regs[inst.rd] = 1 if regs[inst.rs] < regs[inst.rt] else 0
            elif name == "slti":
                regs[inst.rt] = 1 if regs[inst.rs] < inst.imm else 0
            elif name == "sltu":
                regs[inst.rd] = 1 if _u32(regs[inst.rs]) < _u32(regs[inst.rt]) else 0
            elif name == "sltiu":
                regs[inst.rt] = 1 if _u32(regs[inst.rs]) < (inst.imm & 0xFFFF_FFFF) else 0
            elif name == "j":
                next_pc = tindex[pc]
            elif name == "jal":
                regs[31] = TEXT_BASE + WORD_SIZE * (pc + 1)
                next_pc = tindex[pc]
            elif name == "jr":
                addr = _u32(regs[inst.rs])
                if inst.rs != 31:
                    for ob in observers:
                        ob.on_indirect(inst, count)
                if addr == HALT_ADDRESS:
                    break
                next_pc = (addr - TEXT_BASE) // WORD_SIZE
            elif name == "jalr":
                addr = _u32(regs[inst.rs])
                regs[inst.rd] = TEXT_BASE + WORD_SIZE * (pc + 1)
                for ob in observers:
                    ob.on_indirect(inst, count)
                next_pc = (addr - TEXT_BASE) // WORD_SIZE
            elif name == "blez":
                taken = regs[inst.rs] <= 0
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "bgtz":
                taken = regs[inst.rs] > 0
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "bltz":
                taken = regs[inst.rs] < 0
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "bgez":
                taken = regs[inst.rs] >= 0
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "sub" or name == "subu":
                regs[inst.rd] = _s32(regs[inst.rs] - regs[inst.rt])
            elif name == "mul":
                regs[inst.rd] = _s32(regs[inst.rs] * regs[inst.rt])
            elif name == "div":
                denom = regs[inst.rt]
                if denom == 0:
                    raise SimulationError(
                        f"integer division by zero at 0x{inst.address:x}")
                q = abs(regs[inst.rs]) // abs(denom)
                if (regs[inst.rs] < 0) != (denom < 0):
                    q = -q
                regs[inst.rd] = _s32(q)
            elif name == "rem":
                denom = regs[inst.rt]
                if denom == 0:
                    raise SimulationError(
                        f"integer remainder by zero at 0x{inst.address:x}")
                q = abs(regs[inst.rs]) // abs(denom)
                if (regs[inst.rs] < 0) != (denom < 0):
                    q = -q
                regs[inst.rd] = _s32(regs[inst.rs] - denom * q)
            elif name == "and":
                regs[inst.rd] = _s32(_u32(regs[inst.rs]) & _u32(regs[inst.rt]))
            elif name == "or":
                regs[inst.rd] = _s32(_u32(regs[inst.rs]) | _u32(regs[inst.rt]))
            elif name == "xor":
                regs[inst.rd] = _s32(_u32(regs[inst.rs]) ^ _u32(regs[inst.rt]))
            elif name == "nor":
                regs[inst.rd] = _s32(~(_u32(regs[inst.rs]) | _u32(regs[inst.rt])))
            elif name == "andi":
                regs[inst.rt] = _s32(_u32(regs[inst.rs]) & (inst.imm & 0xFFFF))
            elif name == "ori":
                regs[inst.rt] = _s32(_u32(regs[inst.rs]) | (inst.imm & 0xFFFF))
            elif name == "xori":
                regs[inst.rt] = _s32(_u32(regs[inst.rs]) ^ (inst.imm & 0xFFFF))
            elif name == "sll":
                regs[inst.rt] = _s32(_u32(regs[inst.rs]) << (inst.imm & 31))
            elif name == "srl":
                regs[inst.rt] = _s32(_u32(regs[inst.rs]) >> (inst.imm & 31))
            elif name == "sra":
                regs[inst.rt] = _s32(regs[inst.rs] >> (inst.imm & 31))
            elif name == "sllv":
                regs[inst.rd] = _s32(_u32(regs[inst.rs]) << (_u32(regs[inst.rt]) & 31))
            elif name == "srlv":
                regs[inst.rd] = _s32(_u32(regs[inst.rs]) >> (_u32(regs[inst.rt]) & 31))
            elif name == "srav":
                regs[inst.rd] = _s32(regs[inst.rs] >> (_u32(regs[inst.rt]) & 31))
            elif name == "lui":
                regs[inst.rt] = _s32((inst.imm & 0xFFFF) << 16)
            elif name == "lb":
                regs[inst.rt] = memory.load_byte(_u32(regs[inst.rs]) + inst.imm)
            elif name == "lbu":
                regs[inst.rt] = memory.load_byte(
                    _u32(regs[inst.rs]) + inst.imm, signed=False)
            elif name == "sb":
                memory.store_byte(_u32(regs[inst.rs]) + inst.imm, regs[inst.rt])
            elif name == "ldc1":
                fregs[inst.ft] = memory.load_double(_u32(regs[inst.rs]) + inst.imm)
            elif name == "sdc1":
                memory.store_double(_u32(regs[inst.rs]) + inst.imm, fregs[inst.ft])
            elif name == "add.d":
                fregs[inst.fd] = fregs[inst.fs] + fregs[inst.ft]
            elif name == "sub.d":
                fregs[inst.fd] = fregs[inst.fs] - fregs[inst.ft]
            elif name == "mul.d":
                fregs[inst.fd] = fregs[inst.fs] * fregs[inst.ft]
            elif name == "div.d":
                if fregs[inst.ft] == 0.0:
                    raise SimulationError(
                        f"FP division by zero at 0x{inst.address:x}")
                fregs[inst.fd] = fregs[inst.fs] / fregs[inst.ft]
            elif name == "neg.d":
                fregs[inst.fd] = -fregs[inst.fs]
            elif name == "abs.d":
                fregs[inst.fd] = abs(fregs[inst.fs])
            elif name == "mov.d":
                fregs[inst.fd] = fregs[inst.fs]
            elif name == "sqrt.d":
                if fregs[inst.fs] < 0:
                    raise SimulationError(
                        f"sqrt of negative at 0x{inst.address:x}")
                fregs[inst.fd] = fregs[inst.fs] ** 0.5
            elif name == "c.eq.d":
                self.fp_cond = fregs[inst.fs] == fregs[inst.ft]
            elif name == "c.lt.d":
                self.fp_cond = fregs[inst.fs] < fregs[inst.ft]
            elif name == "c.le.d":
                self.fp_cond = fregs[inst.fs] <= fregs[inst.ft]
            elif name == "bc1t":
                taken = self.fp_cond
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "bc1f":
                taken = not self.fp_cond
                branches += 1
                for ob in branch_observers:
                    ob.on_branch(inst, taken, count)
                if taken:
                    next_pc = tindex[pc]
            elif name == "mtc1":
                # reinterpret not needed: our compiler only moves int values
                # for conversion, always via cvt.d.w
                fregs[inst.fs] = float(regs[inst.rt])
            elif name == "mfc1":
                regs[inst.rt] = _s32(int(fregs[inst.fs]))
            elif name == "cvt.d.w":
                fregs[inst.fd] = float(fregs[inst.fs])
            elif name == "cvt.w.d":
                fregs[inst.fd] = float(int(fregs[inst.fs]))  # truncate toward 0
            elif name == "syscall":
                running = self._syscall()
            elif name == "nop":
                pass
            else:  # pragma: no cover - all opcodes handled above
                raise SimulationError(f"unimplemented opcode {name}")

            pc = next_pc

        self.instr_count = count
        self.dynamic_branches = branches
        for ob in observers:
            ob.on_finish(count)
        return ExitStatus(self.exit_code, count, branches, self.output, self)

    # -- syscalls ------------------------------------------------------------

    def _syscall(self) -> bool:
        """Execute a syscall; return False to halt."""
        service = self.regs[2]
        if service == 1:  # print_int
            self.output_parts.append(str(self.regs[4]))
        elif service == 3:  # print_double
            self.output_parts.append(repr(self.fregs[12]))
        elif service == 4:  # print_string
            self.output_parts.append(self.memory.load_cstring(_u32(self.regs[4])))
        elif service == 5:  # read_int
            if not self.inputs:
                raise InputExhausted("read_int: input exhausted")
            self.regs[2] = _s32(int(self.inputs.popleft()))
        elif service == 7:  # read_double
            if not self.inputs:
                raise InputExhausted("read_double: input exhausted")
            self.fregs[0] = float(self.inputs.popleft())
        elif service == 9:  # sbrk
            amount = self.regs[4]
            self.regs[2] = _s32(self._brk)
            self._brk = (self._brk + amount + 7) & ~7
        elif service == 10:  # exit
            self.exit_code = 0
            return False
        elif service == 11:  # print_char
            self.output_parts.append(chr(self.regs[4] & 0xFF))
        elif service == 17:  # exit with code
            self.exit_code = self.regs[4]
            return False
        else:
            raise SimulationError(f"unknown syscall {service}")
        return True


def _u32(value: int) -> int:
    """View a signed 32-bit value as unsigned."""
    return value & 0xFFFF_FFFF
