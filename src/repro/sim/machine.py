"""The ISA interpreter.

This is our stand-in for running a QPT-instrumented binary: instead of
rewriting the executable, the interpreter raises events at exactly the points
QPT's instrumentation counted — conditional-branch outcomes (for edge
profiles) and breaks in control (for trace analysis). Observers implementing
:class:`Observer` subscribe to those events; the execution itself is
otherwise a plain fetch-decode-execute loop with no timing model (the paper
measures prediction accuracy, not cycles).

Arithmetic follows MIPS semantics: 32-bit two's-complement wraparound,
truncating division, logical/arithmetic shifts. Doubles are IEEE 754 via the
host.

Robustness: the interpreter enforces two independent resource limits — an
instruction-fuel budget (:class:`SimulationLimitExceeded`) and an optional
wall-clock watchdog deadline (:class:`SimulationTimeout`, checked every
``watchdog_interval`` instructions) — and on *any* fault attaches a
:class:`~repro.errors.CrashReport` snapshot (pc, faulting instruction,
register file, call stack reconstructed from ``jal``/``jalr`` history, last
N branch outcomes) to the raised :class:`~repro.errors.ReproError`.
Unexpected builtin exceptions escaping the dispatch loop are converted into
:class:`SimulationError` so callers never see a bare ``KeyError``.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from time import monotonic, perf_counter

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight
from repro.errors import (
    CallFrame, CrashReport, InputExhausted, MemoryError_, ReproError,
    SimulationError, SimulationLimitExceeded, SimulationTimeout,
)
from repro.isa.instructions import Instruction
from repro.isa.program import Executable, GP_VALUE, STACK_TOP, TEXT_BASE, WORD_SIZE
from repro.sim.memory import PAGE_SIZE, Memory

__all__ = [
    "Machine",
    "Observer",
    "ExitStatus",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationTimeout",
    "InputExhausted",
    "CrashReport",
    "HALT_ADDRESS",
]

#: Sentinel return address: `jr $ra` to this halts the machine (used when a
#: program's `main` returns and no exit syscall was made).
HALT_ADDRESS = 0

_INT_MIN = -(1 << 31)
_WRAP = 1 << 32
_SIGN = 1 << 31


def _s32(value: int) -> int:
    """Wrap *value* to signed 32-bit."""
    value &= 0xFFFF_FFFF
    return value - _WRAP if value & _SIGN else value


#: Builtin exceptions that the dispatch loop converts into typed
#: :class:`SimulationError` internal faults (with crash report) instead of
#: letting them escape bare.
_INTERNAL_FAULTS = (KeyError, IndexError, ValueError, TypeError,
                    AttributeError, ZeroDivisionError, OverflowError,
                    struct.error)


class Observer:
    """Subscriber to execution events. Subclass and override what you need."""

    def on_branch(self, inst: Instruction, taken: bool, instr_count: int) -> None:
        """A conditional branch executed; *taken* is its outcome and
        *instr_count* the number of instructions executed so far (including
        this branch)."""

    def on_indirect(self, inst: Instruction, instr_count: int) -> None:
        """An indirect jump (non-return ``jr``) or indirect call (``jalr``)
        executed — always a break in control under any static predictor."""

    def on_finish(self, instr_count: int) -> None:
        """Execution finished normally."""


@dataclass
class ExitStatus:
    """Result of a completed run."""

    exit_code: int
    instr_count: int
    dynamic_branches: int
    output: str
    machine: "Machine | None" = field(repr=False, default=None)


class Machine:
    """Interpreter for a linked :class:`Executable`.

    Parameters
    ----------
    executable:
        The program to run.
    inputs:
        Values consumed, in order, by the ``read_int`` / ``read_double`` /
        ``read_char`` syscalls — this is how datasets are fed to benchmarks.
    observers:
        Event subscribers (edge profilers, sequence analyzers, tracers).
    max_instructions:
        Fuel limit; :class:`SimulationLimitExceeded` is raised beyond it.
    wall_clock_deadline:
        Optional watchdog budget in *seconds of wall time* for the whole
        run; :class:`SimulationTimeout` is raised once it passes. Checked
        every *watchdog_interval* instructions, so overshoot is bounded by
        the cost of one check window.
    watchdog_interval:
        How many instructions between periodic housekeeping ticks
        (rounded down to a power of two).  The wall-clock deadline is
        checked at least this often; the hot-PC sampler may tighten the
        tick interval (see *pc_sample_interval*).
    max_memory_bytes:
        Optional cap on simulated memory actually allocated (rounded up to
        whole 4 KiB pages); :class:`~repro.errors.MemoryError_` beyond it.
    branch_history_limit:
        How many recent conditional-branch outcomes to keep for the crash
        report's ``branch_history`` ring.
    pc_sample_interval:
        Off by default (``None``).  When set to *N*, the pc of every
        *N*-th instruction (rounded down to a power of two) is sampled
        into ``hot_pc_samples`` — a statistical profile of where
        simulated execution time goes — and published to the telemetry
        sink as the ``sim.hot_pc`` labeled counter.
    telemetry:
        Explicit telemetry sink override; default is the process-wide
        seam (:func:`repro.telemetry.get`), a no-op unless installed.
        The dispatch loop itself never calls the sink — per-run counters
        are accumulated as local integers and published once at the end
        of :meth:`run` (success or fault), keeping disabled-mode
        overhead on the hot loop at zero telemetry calls.
    """

    def __init__(
        self,
        executable: Executable,
        inputs: list | None = None,
        observers: list[Observer] | None = None,
        max_instructions: int = 200_000_000,
        wall_clock_deadline: float | None = None,
        watchdog_interval: int = 16384,
        max_memory_bytes: int | None = None,
        branch_history_limit: int = 32,
        pc_sample_interval: int | None = None,
        telemetry: "_telemetry.Telemetry | None" = None,
    ) -> None:
        self.executable = executable
        max_pages = None
        if max_memory_bytes is not None:
            max_pages = max(1, -(-max_memory_bytes // PAGE_SIZE))
        self.memory = Memory(max_pages=max_pages)
        if executable.data:
            self.memory.write_bytes(0x1000_0000, executable.data)
        self.regs = [0] * 32
        self.fregs = [0.0] * 32
        self.fp_cond = False
        self.regs[28] = _s32(GP_VALUE)
        self.regs[29] = STACK_TOP & ~7
        self.regs[30] = self.regs[29]
        self.regs[31] = HALT_ADDRESS
        self.inputs = deque(inputs or [])
        self.observers = list(observers or [])
        self.max_instructions = max_instructions
        self.wall_clock_deadline = wall_clock_deadline
        self.telemetry = telemetry if telemetry is not None \
            else _telemetry.get()
        # housekeeping ticks happen when (count & mask) == 0; force the
        # interval to a power of two.  The hot-PC sampler shares the tick,
        # so an enabled sampler tightens the interval to its own period.
        interval = max(1, watchdog_interval)
        self.pc_sample_interval = pc_sample_interval
        if pc_sample_interval is not None:
            interval = min(interval, max(1, pc_sample_interval))
        self._tick_mask = (1 << (interval.bit_length() - 1)) - 1
        #: sampled pc -> sample count (only populated when
        #: *pc_sample_interval* is set)
        self.hot_pc_samples: dict[int, int] = {}
        self.watchdog_ticks = 0
        self.syscall_count = 0
        self.output_parts: list[str] = []
        self.instr_count = 0
        self.dynamic_branches = 0
        self.exit_code = 0
        self._inputs_consumed = 0
        self._fault_pc = -1
        #: (call_site_addr, callee_addr, return_addr) — best-effort shadow
        #: stack maintained from jal/jalr/jr-$ra history for crash reports.
        self._call_stack: list[tuple[int, int, int]] = []
        #: ring of recent (branch_address, taken) outcomes for crash reports
        self._branch_history: deque[tuple[int, bool]] = deque(
            maxlen=max(1, branch_history_limit))
        self._brk = executable.heap_start
        self._insts = executable.instructions
        # precomputed branch/jump target indices
        self._tindex = [
            (i.target_address - TEXT_BASE) // WORD_SIZE if i.target_address >= 0
            else -1
            for i in self._insts
        ]

    # -- public API --------------------------------------------------------------

    @property
    def output(self) -> str:
        """Everything the program printed so far."""
        return "".join(self.output_parts)

    def run(self, entry: int | None = None) -> ExitStatus:
        """Execute from *entry* (default: the executable's entry point) until
        exit, and return an :class:`ExitStatus`.

        Any fault — typed or an unexpected builtin exception from the
        dispatch loop — surfaces as a :class:`~repro.errors.ReproError`
        carrying a :class:`~repro.errors.CrashReport` snapshot.
        """
        pc = ((entry if entry is not None else self.executable.entry)
              - TEXT_BASE) // WORD_SIZE
        try:
            return self._run_loop(pc)
        except ReproError as exc:
            raise exc.attach_crash_report(self.crash_snapshot(self._fault_pc))
        except _INTERNAL_FAULTS as exc:
            fault = SimulationError(
                f"internal simulator fault: {type(exc).__name__}: {exc}")
            fault.attach_crash_report(self.crash_snapshot(self._fault_pc))
            raise fault from exc

    def _run_loop(self, pc: int) -> ExitStatus:
        insts = self._insts
        tindex = self._tindex
        regs = self.regs
        fregs = self.fregs
        memory = self.memory
        n_insts = len(insts)
        count = self.instr_count
        branches = self.dynamic_branches
        limit = self.max_instructions
        observers = self.observers
        branch_observers = observers  # all observers see branches
        record_branch = self._branch_history.append
        call_stack = self._call_stack
        deadline = None
        if self.wall_clock_deadline is not None:
            deadline = monotonic() + self.wall_clock_deadline
        tick_mask = self._tick_mask
        sampling = self.pc_sample_interval is not None
        hot_pc: dict[int, int] = {}  # this run's samples; merged at the end
        ticks = 0
        start_count = count
        start_branches = branches
        start_syscalls = self.syscall_count
        start_wall = perf_counter()
        self._fault_pc = pc

        try:
            running = True
            while running:
                if not 0 <= pc < n_insts:
                    if pc == (HALT_ADDRESS - TEXT_BASE) // WORD_SIZE:
                        break
                    raise SimulationError(
                        f"pc out of range: 0x{TEXT_BASE + WORD_SIZE * pc:x}")
                inst = insts[pc]
                count += 1
                if count > limit:
                    raise SimulationLimitExceeded(
                        f"exceeded fuel budget of {limit} instructions "
                        f"at 0x{inst.address:x}")
                if not count & tick_mask:
                    # periodic housekeeping (cold path, every 2^k instrs):
                    # wall-clock watchdog + sampled hot-PC profiler
                    ticks += 1
                    if deadline is not None and monotonic() > deadline:
                        raise SimulationTimeout(
                            f"watchdog: exceeded wall-clock deadline of "
                            f"{self.wall_clock_deadline:.3f}s after {count} "
                            f"instructions at 0x{inst.address:x}")
                    if sampling:
                        addr = inst.address
                        hot_pc[addr] = hot_pc.get(addr, 0) + 1
                name = inst.op.name
                next_pc = pc + 1

                # --- hottest opcodes first ---
                if name == "addiu" or name == "addi":
                    regs[inst.rt] = _s32(regs[inst.rs] + inst.imm)
                elif name == "lw":
                    regs[inst.rt] = memory.load_word(_u32(regs[inst.rs]) + inst.imm)
                elif name == "sw":
                    memory.store_word(_u32(regs[inst.rs]) + inst.imm, regs[inst.rt])
                elif name == "addu" or name == "add":
                    regs[inst.rd] = _s32(regs[inst.rs] + regs[inst.rt])
                elif name == "beq":
                    taken = regs[inst.rs] == regs[inst.rt]
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "bne":
                    taken = regs[inst.rs] != regs[inst.rt]
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "slt":
                    regs[inst.rd] = 1 if regs[inst.rs] < regs[inst.rt] else 0
                elif name == "slti":
                    regs[inst.rt] = 1 if regs[inst.rs] < inst.imm else 0
                elif name == "sltu":
                    regs[inst.rd] = 1 if _u32(regs[inst.rs]) < _u32(regs[inst.rt]) else 0
                elif name == "sltiu":
                    regs[inst.rt] = 1 if _u32(regs[inst.rs]) < (inst.imm & 0xFFFF_FFFF) else 0
                elif name == "j":
                    next_pc = tindex[pc]
                elif name == "jal":
                    ra = TEXT_BASE + WORD_SIZE * (pc + 1)
                    regs[31] = ra
                    call_stack.append((inst.address, inst.target_address, ra))
                    next_pc = tindex[pc]
                elif name == "jr":
                    addr = _u32(regs[inst.rs])
                    if inst.rs != 31:
                        for ob in observers:
                            ob.on_indirect(inst, count)
                    elif call_stack:
                        call_stack.pop()
                    if addr == HALT_ADDRESS:
                        break
                    next_pc = (addr - TEXT_BASE) // WORD_SIZE
                elif name == "jalr":
                    addr = _u32(regs[inst.rs])
                    ra = TEXT_BASE + WORD_SIZE * (pc + 1)
                    regs[inst.rd] = ra
                    call_stack.append((inst.address, addr, ra))
                    for ob in observers:
                        ob.on_indirect(inst, count)
                    next_pc = (addr - TEXT_BASE) // WORD_SIZE
                elif name == "blez":
                    taken = regs[inst.rs] <= 0
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "bgtz":
                    taken = regs[inst.rs] > 0
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "bltz":
                    taken = regs[inst.rs] < 0
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "bgez":
                    taken = regs[inst.rs] >= 0
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "sub" or name == "subu":
                    regs[inst.rd] = _s32(regs[inst.rs] - regs[inst.rt])
                elif name == "mul":
                    regs[inst.rd] = _s32(regs[inst.rs] * regs[inst.rt])
                elif name == "div":
                    denom = regs[inst.rt]
                    if denom == 0:
                        raise SimulationError(
                            f"integer division by zero at 0x{inst.address:x}")
                    q = abs(regs[inst.rs]) // abs(denom)
                    if (regs[inst.rs] < 0) != (denom < 0):
                        q = -q
                    regs[inst.rd] = _s32(q)
                elif name == "rem":
                    denom = regs[inst.rt]
                    if denom == 0:
                        raise SimulationError(
                            f"integer remainder by zero at 0x{inst.address:x}")
                    q = abs(regs[inst.rs]) // abs(denom)
                    if (regs[inst.rs] < 0) != (denom < 0):
                        q = -q
                    regs[inst.rd] = _s32(regs[inst.rs] - denom * q)
                elif name == "and":
                    regs[inst.rd] = _s32(_u32(regs[inst.rs]) & _u32(regs[inst.rt]))
                elif name == "or":
                    regs[inst.rd] = _s32(_u32(regs[inst.rs]) | _u32(regs[inst.rt]))
                elif name == "xor":
                    regs[inst.rd] = _s32(_u32(regs[inst.rs]) ^ _u32(regs[inst.rt]))
                elif name == "nor":
                    regs[inst.rd] = _s32(~(_u32(regs[inst.rs]) | _u32(regs[inst.rt])))
                elif name == "andi":
                    regs[inst.rt] = _s32(_u32(regs[inst.rs]) & (inst.imm & 0xFFFF))
                elif name == "ori":
                    regs[inst.rt] = _s32(_u32(regs[inst.rs]) | (inst.imm & 0xFFFF))
                elif name == "xori":
                    regs[inst.rt] = _s32(_u32(regs[inst.rs]) ^ (inst.imm & 0xFFFF))
                elif name == "sll":
                    regs[inst.rt] = _s32(_u32(regs[inst.rs]) << (inst.imm & 31))
                elif name == "srl":
                    regs[inst.rt] = _s32(_u32(regs[inst.rs]) >> (inst.imm & 31))
                elif name == "sra":
                    regs[inst.rt] = _s32(regs[inst.rs] >> (inst.imm & 31))
                elif name == "sllv":
                    regs[inst.rd] = _s32(_u32(regs[inst.rs]) << (_u32(regs[inst.rt]) & 31))
                elif name == "srlv":
                    regs[inst.rd] = _s32(_u32(regs[inst.rs]) >> (_u32(regs[inst.rt]) & 31))
                elif name == "srav":
                    regs[inst.rd] = _s32(regs[inst.rs] >> (_u32(regs[inst.rt]) & 31))
                elif name == "lui":
                    regs[inst.rt] = _s32((inst.imm & 0xFFFF) << 16)
                elif name == "lb":
                    regs[inst.rt] = memory.load_byte(_u32(regs[inst.rs]) + inst.imm)
                elif name == "lbu":
                    regs[inst.rt] = memory.load_byte(
                        _u32(regs[inst.rs]) + inst.imm, signed=False)
                elif name == "sb":
                    memory.store_byte(_u32(regs[inst.rs]) + inst.imm, regs[inst.rt])
                elif name == "ldc1":
                    fregs[inst.ft] = memory.load_double(_u32(regs[inst.rs]) + inst.imm)
                elif name == "sdc1":
                    memory.store_double(_u32(regs[inst.rs]) + inst.imm, fregs[inst.ft])
                elif name == "add.d":
                    fregs[inst.fd] = fregs[inst.fs] + fregs[inst.ft]
                elif name == "sub.d":
                    fregs[inst.fd] = fregs[inst.fs] - fregs[inst.ft]
                elif name == "mul.d":
                    fregs[inst.fd] = fregs[inst.fs] * fregs[inst.ft]
                elif name == "div.d":
                    if fregs[inst.ft] == 0.0:
                        raise SimulationError(
                            f"FP division by zero at 0x{inst.address:x}")
                    fregs[inst.fd] = fregs[inst.fs] / fregs[inst.ft]
                elif name == "neg.d":
                    fregs[inst.fd] = -fregs[inst.fs]
                elif name == "abs.d":
                    fregs[inst.fd] = abs(fregs[inst.fs])
                elif name == "mov.d":
                    fregs[inst.fd] = fregs[inst.fs]
                elif name == "sqrt.d":
                    if fregs[inst.fs] < 0:
                        raise SimulationError(
                            f"sqrt of negative at 0x{inst.address:x}")
                    fregs[inst.fd] = fregs[inst.fs] ** 0.5
                elif name == "c.eq.d":
                    self.fp_cond = fregs[inst.fs] == fregs[inst.ft]
                elif name == "c.lt.d":
                    self.fp_cond = fregs[inst.fs] < fregs[inst.ft]
                elif name == "c.le.d":
                    self.fp_cond = fregs[inst.fs] <= fregs[inst.ft]
                elif name == "bc1t":
                    taken = self.fp_cond
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "bc1f":
                    taken = not self.fp_cond
                    record_branch((inst.address, taken))
                    branches += 1
                    for ob in branch_observers:
                        ob.on_branch(inst, taken, count)
                    if taken:
                        next_pc = tindex[pc]
                elif name == "mtc1":
                    # reinterpret not needed: our compiler only moves int values
                    # for conversion, always via cvt.d.w
                    fregs[inst.fs] = float(regs[inst.rt])
                elif name == "mfc1":
                    regs[inst.rt] = _s32(int(fregs[inst.fs]))
                elif name == "cvt.d.w":
                    fregs[inst.fd] = float(fregs[inst.fs])
                elif name == "cvt.w.d":
                    fregs[inst.fd] = float(int(fregs[inst.fs]))  # truncate toward 0
                elif name == "syscall":
                    running = self._syscall(inst)
                elif name == "nop":
                    pass
                else:  # pragma: no cover - all opcodes handled above
                    raise SimulationError(f"unimplemented opcode {name}")

                pc = next_pc
        except BaseException:
            # snapshot state for the crash report before unwinding
            self._fault_pc = pc
            self.instr_count = count
            self.dynamic_branches = branches
            self.watchdog_ticks += ticks
            self._merge_samples(hot_pc)
            self._publish_telemetry(count - start_count,
                                    branches - start_branches,
                                    self.syscall_count - start_syscalls,
                                    ticks, perf_counter() - start_wall,
                                    hot_pc, faulted=True)
            raise

        self.instr_count = count
        self.dynamic_branches = branches
        self.watchdog_ticks += ticks
        self._merge_samples(hot_pc)
        self._publish_telemetry(count - start_count,
                                branches - start_branches,
                                self.syscall_count - start_syscalls,
                                ticks, perf_counter() - start_wall,
                                hot_pc, faulted=False)
        for ob in observers:
            ob.on_finish(count)
        return ExitStatus(self.exit_code, count, branches, self.output, self)

    def _merge_samples(self, hot_pc: dict[int, int]) -> None:
        """Fold one run's hot-PC samples into the machine-lifetime dict."""
        for addr, hits in hot_pc.items():
            self.hot_pc_samples[addr] = \
                self.hot_pc_samples.get(addr, 0) + hits

    def _publish_telemetry(self, executed: int, branches: int,
                           syscalls: int, ticks: int, elapsed: float,
                           hot_pc: dict[int, int], faulted: bool) -> None:
        """Flush this run's locally-accumulated counters to the sink.

        Called exactly once per :meth:`run` (on both the success and the
        fault path); a disabled sink returns immediately.
        """
        tm = self.telemetry
        if not tm.enabled:
            return
        tm.counter("sim.runs").inc()
        if faulted:
            tm.counter("sim.runs_faulted").inc()
        tm.counter("sim.instructions").inc(executed)
        tm.counter("sim.branches").inc(branches)
        tm.counter("sim.syscalls").inc(syscalls)
        tm.counter("sim.watchdog_ticks").inc(ticks)
        tm.gauge("sim.memory_pages").set(self.memory.pages_allocated)
        if elapsed > 0 and executed > 0:
            tm.gauge("sim.instructions_per_sec").set(executed / elapsed)
            tm.histogram("sim.run_instructions").observe(executed)
        if hot_pc:
            family = tm.labeled_counter("sim.hot_pc")
            for addr, hits in hot_pc.items():
                family.inc(f"0x{addr:x}", hits)
            tm.counter("sim.hot_pc_samples").inc(sum(hot_pc.values()))

    # -- post-mortem -----------------------------------------------------------

    def crash_snapshot(self, pc_index: int = -1) -> CrashReport:
        """Snapshot the machine state for post-mortem debugging.

        *pc_index* is an index into the instruction list (``pc`` in the run
        loop); out-of-range values are reported as such rather than failing.
        """
        addr = TEXT_BASE + WORD_SIZE * pc_index
        if 0 <= pc_index < len(self._insts):
            inst = self._insts[pc_index]
            try:
                text = inst.render()
            except Exception:  # corrupted instruction: still report something
                text = f"<unrenderable {inst.op.name} instruction>"
        else:
            text = "<pc outside text segment>"
        frames = [CallFrame(self._proc_name(callee), call_site, ret)
                  for call_site, callee, ret in self._call_stack]
        return CrashReport(
            pc=addr, instruction=text, instr_count=self.instr_count,
            registers=list(self.regs), fp_registers=list(self.fregs),
            call_stack=frames, branch_history=list(self._branch_history),
            output_tail=self.output[-200:],
            # the process's black box rides along with the machine's: the
            # last-N flight-recorder events (retries, lease steals, state
            # transitions) leading up to this fault
            flight=_flight.dump()[-32:])

    def _proc_name(self, addr: int) -> str:
        """Resolve a text address to its procedure name (best effort)."""
        try:
            return self.executable.procedure_containing(addr).name
        except (IndexError, TypeError):
            return f"0x{addr:x}"

    # -- syscalls ------------------------------------------------------------

    def _syscall(self, inst: Instruction | None = None) -> bool:
        """Execute a syscall; return False to halt.

        *inst* (the ``syscall`` instruction itself) is used to name the
        faulting pc in error messages.
        """
        pc = inst.address if inst is not None else -1
        self.syscall_count += 1
        service = self.regs[2]
        if service == 1:  # print_int
            self.output_parts.append(str(self.regs[4]))
        elif service == 3:  # print_double
            self.output_parts.append(repr(self.fregs[12]))
        elif service == 4:  # print_string
            self.output_parts.append(self.memory.load_cstring(_u32(self.regs[4])))
        elif service == 5:  # read_int
            if not self.inputs:
                raise InputExhausted(
                    f"read_int (syscall 5) starved at pc 0x{pc:x} after "
                    f"consuming {self._inputs_consumed} input values", pc=pc)
            self._inputs_consumed += 1
            self.regs[2] = _s32(int(self.inputs.popleft()))
        elif service == 7:  # read_double
            if not self.inputs:
                raise InputExhausted(
                    f"read_double (syscall 7) starved at pc 0x{pc:x} after "
                    f"consuming {self._inputs_consumed} input values", pc=pc)
            self._inputs_consumed += 1
            self.fregs[0] = float(self.inputs.popleft())
        elif service == 9:  # sbrk
            amount = self.regs[4]
            self.regs[2] = _s32(self._brk)
            self._brk = (self._brk + amount + 7) & ~7
        elif service == 10:  # exit
            self.exit_code = 0
            return False
        elif service == 11:  # print_char
            self.output_parts.append(chr(self.regs[4] & 0xFF))
        elif service == 17:  # exit with code
            self.exit_code = self.regs[4]
            return False
        else:
            raise SimulationError(
                f"unknown syscall {service} at pc 0x{pc:x}", pc=pc)
        return True


def _u32(value: int) -> int:
    """View a signed 32-bit value as unsigned."""
    return value & 0xFFFF_FFFF
