"""Edge profiling — what QPT's instrumented executions produced.

An :class:`EdgeProfile` records, for each conditional branch (identified by
its text address), how many times control passed to the target successor
(taken) and to the fall-through successor (not taken). It is the ground
truth for miss rates and for the *perfect static predictor*, which predicts
each branch's more frequently executed outgoing edge.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.sim.machine import Observer

__all__ = ["EdgeProfile"]


class EdgeProfile(Observer):
    """Per-branch taken / not-taken counts collected during a run."""

    def __init__(self) -> None:
        self._counts: dict[int, list[int]] = {}
        self.total_dynamic_branches = 0
        self.total_instructions = 0

    # -- observer hooks ----------------------------------------------------------

    def on_branch(self, inst: Instruction, taken: bool, instr_count: int) -> None:
        counts = self._counts.get(inst.address)
        if counts is None:
            counts = [0, 0]
            self._counts[inst.address] = counts
        counts[0 if taken else 1] += 1
        self.total_dynamic_branches += 1

    def on_events(self, events) -> None:
        # batched fast path: identical aggregation to on_branch, without a
        # method call per event.  A run marker (ev[0] is None) stands for
        # `iters` identical loop iterations; aggregate it per template
        # entry instead of expanding.
        get = self._counts.get
        counts_map = self._counts
        n = 0
        for ev in events:
            inst = ev[0]
            if inst is None:
                tmpl, iters = ev[1], ev[3]
                if iters <= 0:
                    continue
                for binst, taken, _off in tmpl:
                    counts = get(binst.address)
                    if counts is None:
                        counts = [0, 0]
                        counts_map[binst.address] = counts
                    counts[0 if taken else 1] += iters
                    n += iters
                continue
            taken = ev[1]
            if taken is None:
                continue
            counts = get(inst.address)
            if counts is None:
                counts = [0, 0]
                counts_map[inst.address] = counts
            counts[0 if taken else 1] += 1
            n += 1
        self.total_dynamic_branches += n

    def on_finish(self, instr_count: int) -> None:
        self.total_instructions = instr_count

    # -- queries -------------------------------------------------------------------

    def taken_count(self, addr: int) -> int:
        """How many times the branch at *addr* was taken."""
        counts = self._counts.get(addr)
        return counts[0] if counts else 0

    def not_taken_count(self, addr: int) -> int:
        """How many times the branch at *addr* fell through."""
        counts = self._counts.get(addr)
        return counts[1] if counts else 0

    def execution_count(self, addr: int) -> int:
        """Total executions of the branch at *addr*."""
        counts = self._counts.get(addr)
        return counts[0] + counts[1] if counts else 0

    def executed_branches(self) -> list[int]:
        """Addresses of all branches that executed at least once."""
        return sorted(self._counts)

    def items(self):
        """Iterate ``(addr, taken_count, not_taken_count)`` tuples."""
        for addr in sorted(self._counts):
            taken, not_taken = self._counts[addr]
            yield addr, taken, not_taken

    def __contains__(self, addr: int) -> bool:
        return addr in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    # -- derived -----------------------------------------------------------------

    def perfect_predictions(self) -> dict[int, bool]:
        """The perfect static predictor's choice for every executed branch:
        True (predict taken) iff the taken count is at least the fall-through
        count. Ties go to taken (either choice gives the same miss count)."""
        return {addr: taken >= not_taken
                for addr, taken, not_taken in self.items()}

    def perfect_miss_count(self, addr: int) -> int:
        """Misses of the perfect static predictor on the branch at *addr*
        (the smaller of its two edge counts)."""
        counts = self._counts.get(addr)
        return min(counts) if counts else 0

    def merged_with(self, other: "EdgeProfile") -> "EdgeProfile":
        """Pointwise sum of two profiles (e.g. across datasets)."""
        merged = EdgeProfile()
        for profile in (self, other):
            for addr, taken, not_taken in profile.items():
                counts = merged._counts.setdefault(addr, [0, 0])
                counts[0] += taken
                counts[1] += not_taken
            merged.total_dynamic_branches += profile.total_dynamic_branches
            merged.total_instructions += profile.total_instructions
        return merged
