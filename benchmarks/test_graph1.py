"""Graph 1: average miss rate of all 5040 heuristic orders, sorted.

Paper shape: ordering matters — a spread of a few percentage points between
best and worst orders, with a long flat region of good orders.
"""

from conftest import once
from repro.harness import graph1


def test_graph1(runner, benchmark):
    g = once(benchmark, lambda: graph1(runner))
    print("\n" + g.describe())

    assert len(g.curve) == 5040
    # ordering matters, but not catastrophically (paper: ~25.5% to ~28%)
    assert 0.01 < g.spread < 0.15
    # the curve is monotone by construction; most orders are near-median
    import numpy as np
    median = float(np.median(g.curve))
    near = ((g.curve > median - 0.02) & (g.curve < median + 0.02)).mean()
    assert near > 0.3
