"""Graph 12: the analytic model f(m,s) = 1-(1-m)^s for m = 2.5%..30%.

Paper shape: 'the payoff in sequence length comes not from moving from 30%
to 15%, but from reducing the miss rate to less than 15%'.
"""

import numpy as np

from conftest import once
from repro.harness import graph12


def test_graph12(benchmark):
    family = once(benchmark, graph12)
    assert len(family) == 12
    lengths = np.arange(1, 102)

    # each curve is monotone in s and bounded
    for m, curve in family.items():
        assert ((curve >= 0) & (curve <= 1)).all()
        assert (np.diff(curve) >= 0).all()

    # curves are ordered by miss rate at every length
    ms = sorted(family)
    for a, b in zip(ms, ms[1:]):
        assert (family[a] <= family[b] + 1e-12).all()

    def frac_long(m, s=64):
        """fraction of instructions in sequences longer than s"""
        return float(1 - family[m][s - 1])

    # the paper's knee: 30% -> 15% buys little; below 15% buys a lot
    gain_high = frac_long(0.15) - frac_long(0.30)
    gain_low = frac_long(0.025) - frac_long(0.15)
    assert gain_low > 10 * gain_high
