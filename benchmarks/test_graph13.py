"""Graph 13: miss rates across multiple datasets per benchmark.

Paper shape: the heuristic predictor makes the same predictions regardless
of dataset; for most benchmarks its miss rate does not vary too widely
across datasets, and differences track matching shifts in the perfect
predictor's rate.
"""

from conftest import once
from repro.harness import graph13


def test_graph13(runner, benchmark):
    g = once(benchmark, lambda: graph13(runner))
    print("\n" + g.describe())

    by_bench = g.by_benchmark()
    assert len(by_bench) == 22
    assert all(len(points) == 3 for points in by_bench.values())

    stable = 0
    for name, points in by_bench.items():
        rates = [p.heuristic_miss for p in points]
        for p in points:
            assert p.perfect_miss <= p.heuristic_miss + 1e-9
        if max(rates) - min(rates) < 0.12:
            stable += 1
    # most benchmarks are stable across datasets (paper: 'for many of the
    # benchmarks the miss rates do not vary too widely')
    assert stable >= 12
