"""Shared state for the table/figure benchmarks.

One session-scoped :class:`SuiteRunner` over the full suite ('ref'
datasets): the first benchmark to need a profiled run pays for it, the rest
reuse it. Each `test_tableN`/`test_graphN` regenerates one table or figure
of the paper and asserts its reproduction claims (see EXPERIMENTS.md).

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.harness import SuiteRunner


@pytest.fixture(scope="session")
def runner() -> SuiteRunner:
    return SuiteRunner()


def once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing (the suite
    executions inside are far too heavy for statistical repetition)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
