"""Table 1: benchmark listing with code sizes (compile-only)."""

from conftest import once
from repro.harness import table1


def test_table1(runner, benchmark):
    t = once(benchmark, lambda: table1(runner))
    print("\n" + t.render())
    # 20 benchmarks in two groups, like the paper's 23 in two groups
    assert len(t.rows) == 22
    groups = {r.group for r in t.rows}
    assert groups == {"int", "fp"}
    # sizes span more than an order of magnitude (paper: 1.6KB..856KB)
    sizes = [r.code_size_kb for r in t.rows]
    assert max(sizes) / min(sizes) > 10
    # every row names its paper analogue
    assert all(r.paper_analogue for r in t.rows)
