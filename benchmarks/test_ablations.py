"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one design decision and measures its effect on the
suite (a representative subset, to keep runtime sane):

* rotated vs top-tested while/for loops (Loop-heuristic coverage);
* natural-loop loop predictor vs BTFNT on loop branches;
* the paper's fixed order vs the best order found by full search vs the
  pairwise order;
* Pointer heuristic with/without its $gp and call exclusions;
* Default policy: random vs always-fall-through vs always-taken.
"""

import pytest

from conftest import once
from repro.bench import get
from repro.core import (
    BTFNTPredictor, HeuristicPredictor, LoopRandomPredictor, PAPER_ORDER,
    best_order, classify_branches, evaluate_predictor, pairwise_order,
)
from repro.core.classify import Prediction
from repro.core.heuristics import loop_heuristic, pointer_heuristic
from repro.harness.tables import order_data_for
from repro.sim import EdgeProfile, Machine

ABLATION_BENCHES = ("scc", "fields", "gauss", "lzw", "queens")


def profiled(executable, inputs):
    profile = EdgeProfile()
    Machine(executable, inputs=inputs, observers=[profile],
            max_instructions=60_000_000).run()
    return profile


class TestLoopRotationAblation:
    def test_rotation_feeds_loop_heuristic(self, benchmark):
        """Rotated codegen creates the guard branches the non-loop Loop
        heuristic predicts; top-tested codegen starves it."""

        def run():
            coverage = {}
            for rotate in (True, False):
                hits = 0
                total = 0
                for name in ("fields", "gauss", "scc"):
                    b = get(name)
                    exe_kw = {"filename": name, "rotate_loops": rotate}
                    from repro.bcc import compile_and_link
                    exe = compile_and_link(b.source(), **exe_kw)
                    analysis = classify_branches(exe)
                    for br in analysis.non_loop_branches():
                        pa = analysis.analysis_of(br)
                        total += 1
                        if loop_heuristic(br, pa) is not None:
                            hits += 1
                coverage[rotate] = hits / total
            return coverage

        coverage = once(benchmark, run)
        print(f"\nLoop-heuristic static coverage: rotated="
              f"{coverage[True]:.3f} top-tested={coverage[False]:.3f}")
        assert coverage[True] > 1.5 * coverage[False]

    def test_rotation_reduces_dynamic_branch_misses(self, benchmark):
        """With rotation, the whole-program heuristic should do no worse —
        and executions get cheaper (no unconditional back jumps)."""

        def run():
            out = {}
            for rotate in (True, False):
                from repro.bcc import compile_and_link
                b = get("gauss")
                exe = compile_and_link(b.source(), rotate_loops=rotate)
                inputs = list(b.dataset("small").inputs)
                profile = profiled(exe, inputs)
                analysis = classify_branches(exe)
                result = evaluate_predictor(HeuristicPredictor(analysis),
                                            profile)
                out[rotate] = (result.miss_rate, profile.total_instructions)
            return out

        out = once(benchmark, run)
        print(f"\nrotated: miss={out[True][0]:.3f} "
              f"insts={out[True][1]}; top-tested: miss={out[False][0]:.3f} "
              f"insts={out[False][1]}")
        # rotated code executes fewer instructions (no j-back per iteration)
        assert out[True][1] < out[False][1]


class TestLoopPredictorVsBTFNT:
    def test_natural_loop_beats_btfnt(self, runner, benchmark):
        def run():
            loop_misses = btfnt_misses = executed = 0
            for name in ABLATION_BENCHES:
                r = runner.run(name)
                loop = evaluate_predictor(LoopRandomPredictor(r.analysis),
                                          r.profile, r.loop_addresses)
                btfnt = evaluate_predictor(BTFNTPredictor(r.analysis),
                                           r.profile, r.loop_addresses)
                loop_misses += loop.misses
                btfnt_misses += btfnt.misses
                executed += loop.executed
            return loop_misses, btfnt_misses, executed

        loop_misses, btfnt_misses, executed = once(benchmark, run)
        print(f"\nloop-branch misses: natural-loop={loop_misses} "
              f"btfnt={btfnt_misses} of {executed}")
        assert loop_misses <= btfnt_misses


class TestOrderChoiceAblation:
    def test_paper_order_vs_searched_orders(self, runner, benchmark):
        def run():
            datasets = [order_data_for(runner.run(n))
                        for n in ABLATION_BENCHES]
            from repro.core import miss_rate_matrix, order_miss_rate
            searched, searched_miss = best_order(datasets)
            pairwise = pairwise_order(datasets)

            def avg(order):
                rates = [order_miss_rate(d, order) for d in datasets]
                return sum(rates) / len(rates)

            return {
                "paper": avg(PAPER_ORDER),
                "searched": searched_miss,
                "pairwise": avg(pairwise),
            }

        rates = once(benchmark, run)
        print(f"\norder miss rates: {rates}")
        # full search is optimal by construction
        assert rates["searched"] <= rates["paper"] + 1e-9
        assert rates["searched"] <= rates["pairwise"] + 1e-9
        # the paper's fixed order is competitive (within a few points)
        assert rates["paper"] - rates["searched"] < 0.10


class TestPointerExclusionsAblation:
    @pytest.mark.parametrize("variant,kwargs", [
        ("paper", {}),
        ("no_gp_exclusion", {"exclude_gp": False}),
        ("no_call_exclusion", {"exclude_calls": False}),
    ])
    def test_variants_measured(self, runner, benchmark, variant, kwargs):
        def run():
            misses = executed = covered = 0
            for name in ("scc", "lzw", "fields"):
                r = runner.run(name)
                for br in r.analysis.non_loop_branches():
                    count = r.profile.execution_count(br.address)
                    if count == 0:
                        continue
                    pa = r.analysis.analysis_of(br)
                    prediction = pointer_heuristic(br, pa, **kwargs)
                    if prediction is None:
                        continue
                    covered += 1
                    executed += count
                    if prediction is Prediction.TAKEN:
                        misses += r.profile.not_taken_count(br.address)
                    else:
                        misses += r.profile.taken_count(br.address)
            return covered, executed, misses

        covered, executed, misses = once(benchmark, run)
        rate = misses / executed if executed else 0.0
        print(f"\nPoint[{variant}]: {covered} branches, "
              f"{executed} dynamic, miss {rate:.3f}")
        assert covered > 0

    def test_exclusions_change_coverage(self, runner):
        """Dropping the $gp exclusion must not shrink coverage (it only
        admits more loads)."""
        def coverage(**kwargs):
            n = 0
            for name in ("scc", "lzw", "fields"):
                r = runner.run(name)
                for br in r.analysis.non_loop_branches():
                    pa = r.analysis.analysis_of(br)
                    if pointer_heuristic(br, pa, **kwargs) is not None:
                        n += 1
            return n

        assert coverage(exclude_gp=False) >= coverage()
        assert coverage(exclude_calls=False) >= coverage()


class TestDefaultPolicyAblation:
    def test_default_policies(self, runner, benchmark):
        def run():
            out = {}
            for policy in ("random", "taken", "not_taken"):
                misses = executed = 0
                for name in ABLATION_BENCHES:
                    r = runner.run(name)
                    hp = HeuristicPredictor(r.analysis, default=policy)
                    result = evaluate_predictor(hp, r.profile,
                                                r.executed_non_loop)
                    misses += result.misses
                    executed += result.executed
                out[policy] = misses / executed
            return out

        rates = once(benchmark, run)
        print(f"\ndefault-policy non-loop miss rates: {rates}")
        # all policies are in a plausible band; none catastrophically
        # dominates (the Default slice is a minority of branches)
        for rate in rates.values():
            assert 0.0 <= rate <= 0.7
        assert max(rates.values()) - min(rates.values()) < 0.25


class TestCombinerAblation:
    def test_priority_vs_voting(self, runner, benchmark):
        """The paper chose a total order over 'a voting protocol with
        weighings' (Section 5). Compare the two combiners on the suite."""
        from repro.core import VotingPredictor

        def run():
            priority_misses = vote_misses = executed = 0
            for name in ABLATION_BENCHES:
                r = runner.run(name)
                nl = r.executed_non_loop
                p = evaluate_predictor(HeuristicPredictor(r.analysis),
                                       r.profile, nl)
                v = evaluate_predictor(VotingPredictor(r.analysis),
                                       r.profile, nl)
                priority_misses += p.misses
                vote_misses += v.misses
                executed += p.executed
            return priority_misses, vote_misses, executed

        priority, vote, executed = once(benchmark, run)
        print(f"\nnon-loop misses: priority={priority / executed:.3f} "
              f"voting={vote / executed:.3f}")
        # both combiners land in the same quality band; neither collapses
        assert abs(priority - vote) / executed < 0.15
