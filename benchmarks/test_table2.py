"""Table 2: loop vs non-loop breakdown, loop predictor, naive baselines.

Paper shape being checked: the loop predictor's mean miss is ~12% (and far
below naive baselines); the perfect predictor shows most non-loop branches
are one-sided (~10% mean); Tgt/Rnd on non-loop branches are mediocre
(~50%); many programs are dominated by non-loop branches.
"""

from conftest import once
from repro.harness import table2


def test_table2(runner, benchmark):
    t = once(benchmark, lambda: table2(runner))
    print("\n" + t.render())
    s = t.summary()

    # loop predictor: accurate on loop branches (paper mean 12%)
    assert s["loop_pred"][0] < 0.25
    # perfect static prediction of non-loop branches is far below 50%
    # (paper mean 10%)
    assert s["non_loop_perfect"][0] < 0.25
    # naive strategies are mediocre (paper: ~50%); at least 2.5x the
    # perfect rate
    assert s["target"][0] > 2.5 * s["non_loop_perfect"][0]
    assert s["random"][0] > 2.5 * s["non_loop_perfect"][0]
    # non-loop branches dominate many programs (paper mean 43% overall,
    # >60% for half the integer group)
    assert s["non_loop_fraction"][0] > 0.30
    assert sum(1 for r in t.rows if r.non_loop_fraction > 0.5) >= 6
    # matmul (matrix300 analogue) is loop-dominated
    matmul = next(r for r in t.rows if r.name == "matmul")
    assert matmul.non_loop_fraction < 0.2
    # quad (fpppp analogue) is non-loop dominated
    quad = next(r for r in t.rows if r.name == "quad")
    assert quad.non_loop_fraction > 0.6
