"""Table 5: per-heuristic accounting under the paper's fixed priority order
(Point -> Call -> Opcode -> Return -> Store -> Loop -> Guard).

Paper shape: coverage partitions the dynamic non-loop branches; the Default
(random) slice performs near 50% where visible.
"""

import pytest

from conftest import once
from repro.harness import table5


def test_table5(runner, benchmark):
    t = once(benchmark, lambda: table5(runner))
    print("\n" + t.render())

    for row in t.rows:
        total_coverage = sum(c.coverage for c in row.cells.values())
        assert total_coverage == pytest.approx(1.0, abs=1e-6), row.name

    s = t.summary()
    # the Default slice behaves like random prediction (paper mean 45%)
    default_mean = s["Default"][0][0]
    assert 0.25 < default_mean < 0.65
