"""Table 6: the combined predictor's final results.

Paper headline: ~26% mean miss on non-loop branches, ~20% on all branches —
half-way between naive (~50%) and perfect (~10%), and better than Loop+Rand
in aggregate.
"""

from conftest import once
from repro.harness import mean_std, table6


def test_table6(runner, benchmark):
    t = once(benchmark, lambda: table6(runner))
    print("\n" + t.render())

    nl_mean, _ = mean_std([r.with_default_miss for r in t.rows])
    all_mean, _ = mean_std([r.all_miss for r in t.rows])
    lr_mean, _ = mean_std([r.loop_rand_miss for r in t.rows])
    perfect_mean, _ = mean_std([r.all_perfect for r in t.rows])
    rnd_mean, _ = mean_std([r.random_nl_miss for r in t.rows])

    # the paper's headline band: non-loop ~26%, all ~20%
    assert 0.15 < nl_mean < 0.40
    assert 0.10 < all_mean < 0.32
    # substantially better than random on non-loop branches...
    assert nl_mean < rnd_mean - 0.05
    # ...and no better than perfect
    assert all_mean >= perfect_mean
    # beats Loop+Rand over all branches in aggregate
    assert all_mean <= lr_mean + 0.01
    # the heuristics (before Default) cover most dynamic non-loop branches
    cov_mean, _ = mean_std([r.heuristic_coverage for r in t.rows])
    assert cov_mean > 0.6
