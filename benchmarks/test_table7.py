"""Table 7: summary means/std-devs, with and without the programs whose
dynamic non-loop branches are dominated by a handful of 'big' branches."""

from conftest import once
from repro.harness import table7


def test_table7(runner, benchmark):
    t = once(benchmark, lambda: table7(runner))
    print("\n" + t.render())

    # ordering of predictors holds in both populations
    for stats in (t.all_stats, t.most_stats):
        heuristic_all = stats["all"][0]
        loop_rand = stats["loop_rand"][0]
        tgt = stats["target_nl"][0]
        rnd = stats["random_nl"][0]
        heuristic_nl = stats["heuristic_nl"][0]
        assert heuristic_all <= loop_rand + 0.01
        assert heuristic_nl < tgt
        assert heuristic_nl < rnd
    # some programs are excluded by the >90%-big-branch rule (the paper
    # excluded eqntott, grep, tomcatv, matrix300)
    assert t.excluded
