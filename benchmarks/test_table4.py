"""Table 4: the most common best orders from the subset-generalization
experiment (paper: C(22,11) trials; here C(19, 9) over the suite minus the
matrix300 analogue).

Paper shape: a small set of orders wins most trials; their full-suite miss
rates sit near the global optimum; the pairwise-analysis order is inferior
but not catastrophic.
"""

from conftest import once
from repro.harness import table4


def test_table4(runner, benchmark):
    t = once(benchmark, lambda: table4(runner))
    print("\n" + t.render())

    assert t.n_trials > 10_000   # C(21,10) = 352716
    top_share = sum(share for _, share, _ in t.top_orders)
    # the 10 most common orders concentrate the wins far beyond uniform
    # chance (10/5040 = 0.2%); the paper saw ~60%, we see ~30% on a more
    # heterogeneous suite
    assert top_share > 0.15
    # their overall miss rates are tightly clustered near the best
    rates = [miss for _, _, miss in t.top_orders]
    assert max(rates) - min(rates) < 0.05
