"""Graphs 2-3: the subset experiment's winning orders — cumulative trial
share (Graph 2) and their full-suite miss rates (Graph 3).

Paper shape: ~622 distinct winners out of 5040 possible; the 40 most common
account for ~90% of trials; most of their miss rates are near-optimal.
"""

import numpy as np

from conftest import once
from repro.harness import graphs2_3


def test_graphs2_3(runner, benchmark):
    g = once(benchmark, lambda: graphs2_3(runner))
    print("\n" + g.describe())

    result = g.result
    # few distinct orders ever win (paper: 622 of 5040)
    assert len(result.orders) < 1000
    # the 40 most common orders dominate the trials (paper: ~90%)
    share = result.cumulative_trial_share()
    top40 = share[min(39, len(share) - 1)]
    assert top40 > 0.75
    # winning orders generalize: their full-suite miss rates are close to
    # the best achievable
    best = min(result.overall_miss_rates)
    top10_rates = np.array(result.overall_miss_rates[:10])
    assert (top10_rates < best + 0.03).all()
