"""Table 3: each heuristic applied individually — coverage and miss rates.

Paper shape: every heuristic achieves non-trivial dynamic coverage
somewhere; Opcode and Return are strong where they apply; Store is weak on
integer codes but useful on FP codes; the Pointer heuristic fires on the
pointer-chasing programs.
"""

from conftest import once
from repro.bench import INT_GROUP
from repro.core.heuristics import HEURISTIC_NAMES
from repro.harness import table3


def test_table3(runner, benchmark):
    t = once(benchmark, lambda: table3(runner))
    print("\n" + t.render())

    rows = {r.name: r for r in t.rows}
    # every heuristic is visible (>=1% coverage) on several benchmarks
    for h in HEURISTIC_NAMES:
        visible = [r for r in t.rows if r.cells[h].visible]
        assert len(visible) >= 3, h

    summary = t.summary()
    # Opcode where it applies is accurate (paper mean 16%)
    assert summary["Opcode"][0][0] < 0.30
    # Return heuristic performs well (paper mean 28%)
    assert summary["Return"][0][0] < 0.40
    # the Pointer heuristic fires on pointer-chasing programs
    pointer_hits = [name for name in ("minilisp", "scc", "wordfreq", "exprc")
                    if rows[name].cells["Point"].visible]
    assert len(pointer_hits) >= 3
    # mesh (tomcatv analogue): Store applies and is accurate; Guard applies
    # and is bad — the paper's signature disagreement
    mesh = rows["mesh"]
    assert mesh.cells["Store"].visible and mesh.cells["Store"].miss < 0.3
    assert mesh.cells["Guard"].visible and mesh.cells["Guard"].miss > 0.7
