"""Graphs 4-11: trace-based cumulative sequence-length distributions for
Perfect / Heuristic / Loop+Rand on the hard-to-predict benchmarks.

Paper shape: Perfect dominates; on complex-control-flow programs the
Heuristic curve sits closer to Loop+Rand than to Perfect (very high accuracy
is needed for long sequences); the profile-based IPBC average underestimates
the trace-based dividing length when the sequence-length distribution is
skewed.
"""

from conftest import once
from repro.harness import SEQUENCE_BENCHMARKS, graphs4_11


def test_graphs4_11(runner, benchmark):
    results = once(benchmark, lambda: graphs4_11(runner))
    skew_hits = 0
    for sg in results:
        print("\n" + sg.describe())
        perfect = sg.analyzers["Perfect"]
        heuristic = sg.analyzers["Heuristic"]
        loop_rand = sg.analyzers["Loop+Rand"]

        # predictor quality ordering
        assert perfect.n_mispredicts <= heuristic.n_mispredicts
        assert perfect.ipbc_average >= heuristic.ipbc_average - 1e-9
        assert perfect.dividing_length >= heuristic.dividing_length
        # every instruction-weighted curve is dominated by Perfect's
        # (Perfect accumulates short sequences no faster)
        p_curve = dict(perfect.cumulative_instructions())
        h_curve = dict(heuristic.cumulative_instructions())
        for x in (50, 100, 500):
            assert p_curve[x] <= h_curve[x] + 5.0
        # the skew argument: IPBC average below the dividing length
        if perfect.ipbc_average < perfect.dividing_length:
            skew_hits += 1
    # the skew effect the paper highlights appears on most benchmarks
    assert skew_hits >= len(results) // 2
    assert len(results) == len(SEQUENCE_BENCHMARKS)
