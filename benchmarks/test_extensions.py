"""Extension experiments beyond the paper's tables.

* **Program-based vs profile-based** (the paper's framing claim: program-
  based prediction is roughly "a factor of two worse, on the average, than
  profile-based prediction" but needs no training run): train the
  profile-guided predictor on the `alt` dataset, test on `ref`.
* **Static vs dynamic hardware** (related-work context: Lee & Smith 2-bit
  counters; McFarling & Hennessy's profile≈dynamic observation).
* **Extended Guard** (the paper's Section 4.4 generalization): how coverage
  and accuracy change when Guard looks beyond the immediate successor.
"""

from conftest import once
from repro.core import (
    BimodalPredictor, HeuristicPredictor, LastDirectionPredictor,
    Prediction, ProfileGuidedPredictor, StaticAsDynamic, evaluate_predictor,
    extended_guard_heuristic,
)
from repro.core.heuristics import guard_heuristic
from repro.sim import Machine

CROSS_BENCHES = ("fields", "scc", "gauss", "lzw", "exprc", "match",
                 "knapsack", "mesh")


class TestProgramVsProfileBased:
    def test_factor_of_two_claim(self, runner, benchmark):
        def run():
            program_misses = profile_misses = floor_misses = executed = 0
            for name in CROSS_BENCHES:
                test_run = runner.run(name, "ref")
                train_run = runner.run(name, "alt")
                guided = ProfileGuidedPredictor(test_run.analysis,
                                                train_run.profile)
                heuristic = HeuristicPredictor(test_run.analysis)
                from repro.core import PerfectPredictor
                perfect = PerfectPredictor(test_run.analysis,
                                           test_run.profile)
                g = evaluate_predictor(guided, test_run.profile)
                h = evaluate_predictor(heuristic, test_run.profile)
                f = evaluate_predictor(perfect, test_run.profile)
                program_misses += h.misses
                profile_misses += g.misses
                floor_misses += f.misses
                executed += h.executed
            return program_misses, profile_misses, floor_misses, executed

        program, profile, floor, executed = once(benchmark, run)
        print(f"\nmiss rates on ref: program-based {program / executed:.3f},"
              f" profile-based(alt-trained) {profile / executed:.3f},"
              f" perfect {floor / executed:.3f}")
        # profile-based (even cross-trained) beats program-based...
        assert profile < program
        # ...and cross-trained profiles sit near the perfect floor
        # (Fisher & Freudenberger's stability result)
        assert profile - floor < 0.05 * executed
        # the paper's framing claim: program-based is "a factor of two
        # worse, on the average, than profile-based"
        ratio = program / profile
        print(f"program/profile miss-rate ratio: {ratio:.2f}")
        assert 1.2 <= ratio < 5.0


class TestStaticVsDynamic:
    def test_three_way_comparison(self, runner, benchmark):
        def run():
            out = {}
            for name in ("scc", "fields", "gauss"):
                r = runner.run(name)
                static = StaticAsDynamic(
                    HeuristicPredictor(r.analysis).prediction_map())
                bimodal = BimodalPredictor()
                one_bit = LastDirectionPredictor()
                machine = Machine(r.executable,
                                  inputs=list(r.dataset.inputs),
                                  observers=[static, bimodal, one_bit],
                                  max_instructions=60_000_000)
                machine.run()
                out[name] = {
                    "heuristic": static.miss_rate,
                    "bimodal": bimodal.miss_rate,
                    "last": one_bit.miss_rate,
                }
            return out

        results = once(benchmark, run)
        for name, rates in results.items():
            print(f"\n{name}: " + " ".join(
                f"{k}={100 * v:.1f}%" for k, v in rates.items()))
            # 2-bit dynamic hardware beats program-based static prediction
            # (the cost the paper accepts for needing no hardware)
            assert rates["bimodal"] <= rates["heuristic"] + 0.02
            # and hysteresis beats 1-bit history overall
        total_bi = sum(r["bimodal"] for r in results.values())
        total_last = sum(r["last"] for r in results.values())
        assert total_bi <= total_last


class TestExtendedGuardExperiment:
    def test_generalization_widens_coverage(self, runner, benchmark):
        def run():
            plain_cov = ext_cov = 0
            plain_misses = plain_exec = 0
            ext_misses = ext_exec = 0
            for name in ("scc", "exprc", "minilisp", "gauss"):
                r = runner.run(name)
                for br in r.analysis.non_loop_branches():
                    count = r.profile.execution_count(br.address)
                    if count == 0:
                        continue
                    pa = r.analysis.analysis_of(br)

                    def misses_of(prediction):
                        if prediction is Prediction.TAKEN:
                            return r.profile.not_taken_count(br.address)
                        return r.profile.taken_count(br.address)

                    plain = guard_heuristic(br, pa)
                    extended = extended_guard_heuristic(br, pa)
                    if plain is not None:
                        plain_cov += 1
                        plain_exec += count
                        plain_misses += misses_of(plain)
                    if extended is not None:
                        ext_cov += 1
                        ext_exec += count
                        ext_misses += misses_of(extended)
            return (plain_cov, plain_exec, plain_misses,
                    ext_cov, ext_exec, ext_misses)

        (p_cov, p_exec, p_miss, e_cov, e_exec, e_miss) = \
            once(benchmark, run)
        print(f"\nGuard: {p_cov} branches, miss {p_miss / p_exec:.3f}; "
              f"extended: {e_cov} branches, miss {e_miss / e_exec:.3f}")
        # the generalization strictly widens static coverage
        assert e_cov > p_cov
        assert e_exec >= p_exec
