#!/usr/bin/env python3
"""Sequence lengths for trace scheduling: how long can a scheduler assume it
runs without a mispredicted branch?

Section 6 of the paper: what matters to global instruction schedulers and
wide-issue machines is not the miss rate itself but the length of the
instruction sequences between *breaks in control*. This example runs one
benchmark from the suite under three predictors simultaneously and prints
the cumulative sequence-length distribution, the (misleading) profile-based
IPBC average, and the trace-based dividing length — reproducing the
paper's argument that the IPBC average misstates what a scheduler sees.

Run:  python examples/trace_scheduling_regions.py [benchmark]
"""

import sys

from repro import SuiteRunner, sequence_experiment
from repro.core.model import model_fraction


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "scc"
    runner = SuiteRunner([name])
    run = runner.run(name, "small")
    print(f"benchmark {name} ({run.instr_count} instructions, "
          f"{run.dynamic_total} dynamic branches)")

    analyzers = sequence_experiment(
        run.executable, run.profile,
        inputs=list(run.dataset.inputs), analysis=run.analysis)

    print(f"\n{'predictor':10s} {'miss':>6s} {'IPBC avg':>9s} "
          f"{'dividing len':>13s}")
    for label in ("Loop+Rand", "Heuristic", "Perfect"):
        a = analyzers[label]
        print(f"{label:10s} {100 * a.miss_rate:5.1f}% "
              f"{a.ipbc_average:9.0f} {a.dividing_length:13d}")

    print("\ncumulative % of instructions in sequences of length < x:")
    xs = (10, 20, 50, 100, 200, 500, 1000)
    header = "x:         " + "".join(f"{x:>8d}" for x in xs)
    print(header)
    for label in ("Loop+Rand", "Heuristic", "Perfect"):
        curve = dict(analyzers[label].cumulative_instructions())
        row = "".join(f"{curve.get(x, 100.0):8.1f}" for x in xs)
        print(f"{label:10s} {row}")

    # compare against the analytic model at the heuristic's miss rate
    m = analyzers["Heuristic"].miss_rate
    print(f"\nanalytic model f(m={m:.3f}, s) = 1-(1-m)^s for comparison:")
    row = "".join(f"{100 * model_fraction(m, x):8.1f}" for x in xs)
    print(f"{'model':10s} {row}")
    print("\n(the model assumes unit blocks; real code has multi-"
          "instruction blocks, so real sequences run longer)")


if __name__ == "__main__":
    main()
