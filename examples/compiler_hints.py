#!/usr/bin/env python3
"""Using the predictor the way a compiler would: emit branch-direction hints
and lay out code so the predicted path falls through.

This is the paper's motivating use case — architectures like the DEC Alpha
and MIPS R4000 penalize mispredicted branches, and their static convention
(backward-taken / forward-not-taken) relies on the compiler arranging code
to match. This example:

1. compiles a pointer-chasing workload,
2. derives per-branch hints from the Ball-Larus predictor,
3. reports which branches a BTFNT machine would want *reversed* (the
   compiler would flip the branch sense and swap the successors), and
4. estimates the pipeline stalls saved versus naive BTFNT hardware.

Run:  python examples/compiler_hints.py
"""

from repro import (
    BTFNTPredictor, HeuristicPredictor, Prediction, classify_branches,
    compile_and_link, evaluate_predictor, run_with_profile,
)

SOURCE = r"""
// A symbol-table workload: hash with external chaining, lots of null tests
// and guard branches (the paper's pointer-chasing class).

struct Sym {
    int key;
    int value;
    struct Sym *next;
};

struct Sym *buckets[128];
int collisions;

int hash(int key) {
    return ((key * 2654435761) >> 7) & 127;
}

struct Sym *find(int key) {
    struct Sym *p = buckets[hash(key)];
    while (p != NULL) {
        if (p->key == key) { return p; }
        p = p->next;
    }
    return NULL;
}

void insert(int key, int value) {
    struct Sym *p = find(key);
    int h;
    if (p != NULL) {
        p->value = value;   // update in place (rare)
        return;
    }
    h = hash(key);
    if (buckets[h] != NULL) { collisions++; }
    p = (struct Sym *)malloc(sizeof(struct Sym));
    p->key = key;
    p->value = value;
    p->next = buckets[h];
    buckets[h] = p;
}

int main() {
    int i, hits = 0;
    for (i = 0; i < 400; i++) { insert(i * 7, i); }
    for (i = 0; i < 4000; i++) {
        if (find(i) != NULL) { hits++; }
    }
    print_int(hits);
    print_char('\n');
    return 0;
}
"""

MISPREDICT_PENALTY_CYCLES = 10  # the paper cites "up to 10 cycles" (Alpha)


def main() -> None:
    exe = compile_and_link(SOURCE)
    analysis = classify_branches(exe)
    profile = run_with_profile(exe)

    heuristic = HeuristicPredictor(analysis)
    hints = heuristic.predictions()
    btfnt = BTFNTPredictor(analysis).predictions()

    # branches whose heuristic hint disagrees with the BTFNT default: the
    # compiler would reverse these (flip condition + swap targets)
    reversals = []
    for addr, hint in hints.items():
        if hint is not btfnt[addr] and profile.execution_count(addr) > 0:
            reversals.append(addr)

    print(f"{len(hints)} static branches; "
          f"{len(reversals)} would be reversed for a BTFNT machine:")
    for addr in sorted(reversals)[:12]:
        branch = analysis.branches[addr]
        rule = heuristic.attribution[addr]
        direction = "taken" if hints[addr] is Prediction.TAKEN else "fall-thru"
        print(f"  0x{addr:x} {branch.procedure.name:12s} "
              f"{branch.instruction.op.name:5s} -> predict {direction:9s} "
              f"({rule}, executed {profile.execution_count(addr)}x)")
    if len(reversals) > 12:
        print(f"  ... and {len(reversals) - 12} more")

    h = evaluate_predictor(heuristic, profile)
    b = evaluate_predictor(BTFNTPredictor(analysis), profile)
    saved = (b.misses - h.misses) * MISPREDICT_PENALTY_CYCLES
    print(f"\nmisses: BTFNT {b.misses} vs heuristic {h.misses} "
          f"(rates {b.cd()} vs {h.cd()})")
    print(f"estimated cycles saved at {MISPREDICT_PENALTY_CYCLES}/miss: "
          f"{saved} over {profile.total_instructions} instructions "
          f"({100 * saved / profile.total_instructions:.2f}% of execution)")


if __name__ == "__main__":
    main()
