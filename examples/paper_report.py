#!/usr/bin/env python3
"""Regenerate the paper's full evaluation (all tables, key graphs).

This is a thin wrapper over `python -m repro.harness`; it exists so the
examples directory shows the one-call path to the complete reproduction.

Run:  python examples/paper_report.py           # everything (a few minutes)
      python examples/paper_report.py 2 6       # just Tables 2 and 6
"""

import sys

from repro.harness.__main__ import main

if __name__ == "__main__":
    tables = ",".join(sys.argv[1:]) or "1,2,3,4,5,6,7"
    raise SystemExit(main(["--tables", tables, "--graphs", "1,2,4,12,13"]))
