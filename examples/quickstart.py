#!/usr/bin/env python3
"""Quickstart: compile a BLC program, profile it, and compare the paper's
program-based predictor against the perfect static predictor.

Run:  python examples/quickstart.py
"""

from repro import (
    HeuristicPredictor, LoopRandomPredictor, PerfectPredictor,
    RandomPredictor, TakenPredictor, classify_branches, compile_and_link,
    evaluate_predictor, run_with_profile,
)

SOURCE = r"""
// Binary search over a sorted table, with a miss counter: a classic mix of
// loop branches (the search loop) and non-loop branches (probe compares,
// null-result handling).

int table[1000];
int probes;

int search(int key) {
    int lo = 0;
    int hi = 999;
    int mid;
    while (lo <= hi) {
        mid = (lo + hi) / 2;
        probes++;
        if (table[mid] == key) { return mid; }
        if (table[mid] < key) { lo = mid + 1; }
        else                  { hi = mid - 1; }
    }
    return -1;
}

int main() {
    int i;
    int found = 0;
    for (i = 0; i < 1000; i++) { table[i] = i * 3; }
    for (i = 0; i < 2000; i++) {
        if (search(i) >= 0) { found++; }
    }
    print_str("found: ");
    print_int(found);
    print_str("  probes: ");
    print_int(probes);
    print_char('\n');
    return 0;
}
"""


def main() -> None:
    # 1. compile (the BLC runtime — malloc, string ops — is linked in, so
    #    the executable is self-contained, like the paper's MIPS a.outs)
    exe = compile_and_link(SOURCE)
    print(f"compiled: {len(exe.procedures)} procedures, "
          f"{exe.code_size_kb:.1f} KB")

    # 2. run once to collect the edge profile (ground truth)
    profile = run_with_profile(exe)
    print(f"executed {profile.total_instructions} instructions, "
          f"{profile.total_dynamic_branches} dynamic branches")

    # 3. classify branches and build predictors
    analysis = classify_branches(exe)
    print(f"static branches: {len(analysis.branches)} "
          f"({len(analysis.loop_branches())} loop, "
          f"{len(analysis.non_loop_branches())} non-loop)")

    predictors = [
        ("always-taken", TakenPredictor(analysis)),
        ("random", RandomPredictor(analysis)),
        ("loop+random", LoopRandomPredictor(analysis)),
        ("Ball-Larus heuristic", HeuristicPredictor(analysis)),
        ("perfect (per-dataset)", PerfectPredictor(analysis, profile)),
    ]
    print(f"\n{'predictor':24s} miss rate (C/D)")
    for name, predictor in predictors:
        result = evaluate_predictor(predictor, profile)
        print(f"{name:24s} {result.cd()}")

    # 4. where did the heuristic's predictions come from?
    heuristic = HeuristicPredictor(analysis)
    heuristic.predictions()
    from collections import Counter
    print("\nattribution (static branches):")
    for rule, count in Counter(heuristic.attribution.values()).most_common():
        print(f"  {rule:14s} {count}")


if __name__ == "__main__":
    main()
