"""Differential fuzzing over generated programs (hypothesis + corpus).

Every generated program must behave byte-identically across every
implementation axis the repo maintains: -O0 vs -O1 (optimizer), tier0
vs tier1 (execution engine), serial vs parallel (shard engine), and the
static-analysis gates (verifier, linter, SCEV trip consistency).  The
tier1 slice runs a fixed-seed prefix of the committed mini-corpus plus
a small hypothesis sweep; the full 64-program corpus and the optional
1000-program sweep are tier2.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bcc import compile_and_link
from repro.gen import (
    characterize, check_program, corpus_runner, generate_program,
    load_corpus, register_corpus,
)
from repro.sim import Machine
from repro.testing.strategies import blc_programs

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "corpus", "mini")

#: the fixed-seed tier1 slice (prefix of the committed seed-7 corpus)
SLICE = [generate_program(7, index) for index in range(3)]


def _outputs(executable, gp, engine=None):
    out = {}
    for ds in gp.datasets:
        machine = Machine(executable, inputs=list(ds.inputs),
                         max_instructions=ds.fuel, engine=engine)
        machine.run()
        out[ds.name] = machine.output
    return out


@pytest.mark.parametrize("gp", SLICE, ids=lambda gp: gp.name)
def test_o0_vs_o1_byte_identical(gp):
    o0 = compile_and_link(gp.source, filename=f"{gp.name}.blc",
                          optimize=False)
    o1 = compile_and_link(gp.source, filename=f"{gp.name}.blc",
                          optimize=True)
    assert _outputs(o0, gp) == _outputs(o1, gp)


@pytest.mark.parametrize("gp", SLICE, ids=lambda gp: gp.name)
def test_tier0_vs_tier1_byte_identical(gp):
    executable = compile_and_link(gp.source, filename=f"{gp.name}.blc")
    assert _outputs(executable, gp, engine="tier0") == \
        _outputs(executable, gp, engine="tier1")


def test_serial_vs_parallel_characterization_identical():
    with register_corpus(SLICE, replace=True):
        serial = characterize(SLICE, corpus_runner(SLICE, jobs=1))
        parallel = characterize(SLICE, corpus_runner(SLICE, jobs=2))
    assert serial.dumps() == parallel.dumps()


def test_fuzz_gates_on_slice():
    """Lint + verifier + fuel + -O0/-O1 differential + SCEV trips."""
    for gp in SLICE:
        assert check_program(gp) == []


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(gp=blc_programs(max_constructs=4))
def test_hypothesis_generated_programs_hold_invariants(gp):
    """Any drawn program: compiles clean both ways, runs within fuel,
    and the optimizer preserves observable behavior byte-for-byte."""
    o0 = compile_and_link(gp.source, filename=f"{gp.name}.blc",
                          optimize=False)
    o1 = compile_and_link(gp.source, filename=f"{gp.name}.blc",
                          optimize=True)
    ds = gp.datasets[0]
    m0 = Machine(o0, inputs=list(ds.inputs), max_instructions=ds.fuel)
    m1 = Machine(o1, inputs=list(ds.inputs), max_instructions=ds.fuel)
    m0.run()
    m1.run()
    assert m0.output == m1.output
    assert m0.output.strip()  # the driver always prints


@pytest.mark.tier2
def test_full_mini_corpus_fuzz_sweep():
    """All 64 committed programs through every gate (the nightly-style
    sweep; the tier1 slice above covers the prefix)."""
    programs = load_corpus(CORPUS_DIR)
    assert len(programs) == 64
    failures = []
    for gp in programs:
        failures.extend(check_program(gp))
    assert failures == [], "\n".join(f.format() for f in failures)


@pytest.mark.tier2
@pytest.mark.skipif(not os.environ.get("REPRO_CORPUS_SWEEP"),
                    reason="set REPRO_CORPUS_SWEEP=1 for the 1k sweep")
def test_thousand_program_sweep():
    """The nightly 1000-program sweep: fresh seeds, every gate except
    the (slow) SCEV recompile, which the 64-program sweep covers."""
    failures = []
    for index in range(1000):
        gp = generate_program(20260809, index)
        failures.extend(check_program(gp, scev=index % 50 == 0))
        if len(failures) > 10:
            break
    assert failures == [], "\n".join(f.format() for f in failures)
