"""Tier-0 vs Tier-1 execution engine differentials (PR 8).

The tiered engine contract: Tier-1 (superblock trace cache) must be
observationally identical to Tier-0 (pre-decoded interpreter) — same
exit status, output, architectural state, edge profiles, and branch
traces — while batching watchdog/sampling housekeeping at superblock
boundaries.  These tests pin that contract on hand-written programs
that force each superblock rendering mode (looped run-length, looped
with rejoin folds, straight-line), on side-exit-heavy branch patterns,
and on the full benchmark suite; plus the engine-selection seams, the
run-key engine fingerprint, shared block specs across machines, and
the deadline-overshoot / tick-accounting bounds of both tiers.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import telemetry
from repro.bcc import compile_and_link
from repro.errors import ReproError, SimulationTimeout
from repro.harness.cache import run_key
from repro.sim import FORCE_TIER0_ENV, Machine, resolve_engine_name
from repro.sim.profile import EdgeProfile
from repro.sim.trace import BranchTrace
from repro.sim.traces import HOT_THRESHOLD, MAX_BLOCK_LEN, _specs_for
from repro.testing.chaos import chaos_env

TIERS = ("tier0", "tier1")

#: a single hot back-edge, no internal control flow: the run-length mode
HOT_LOOP = """
int main() {
    int i, s = 0;
    for (i = 0; i < 500; i++) { s = s + i; }
    print_int(s);
    return 0;
}
"""

#: if/else diamond rejoining inside a hot loop: the fold-compressed mode
DIAMOND = """
int main() {
    int i, s = 0;
    for (i = 0; i < 400; i++) {
        if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
        s = s ^ i;
    }
    print_int(s);
    return 0;
}
"""

#: the inner branch flips direction mid-run, after the superblock has
#: been compiled assuming the majority arm: exercises side exits
SIDE_EXIT = """
int main() {
    int i, s = 0;
    for (i = 0; i < 300; i++) {
        if (i < 200) { s = s + 1; } else { s = s + i; }
    }
    print_int(s);
    return 0;
}
"""

#: a hot callee reached from a loop: call inlining / non-looped blocks
CALLS = """
int f(int x) { return x * 3 + 1; }
int main() {
    int i, s = 0;
    for (i = 0; i < 200; i++) { s = s + f(i); }
    print_int(s);
    return 0;
}
"""

SPIN = "int main() { while (1) { } return 0; }"

MODE_PROGRAMS = [("hot-loop", HOT_LOOP), ("diamond", DIAMOND),
                 ("side-exit", SIDE_EXIT), ("calls", CALLS)]


def run_tier(executable, tier, inputs=None, sink=None, **kw):
    """One instrumented run; returns (status, machine, profile, trace)."""
    profile, trace = EdgeProfile(), BranchTrace()
    machine = Machine(executable, inputs=list(inputs) if inputs else None,
                      observers=[profile, trace], engine=tier,
                      telemetry=sink, **kw)
    return machine.run(), machine, profile, trace


def assert_tiers_agree(executable, inputs=None, **kw):
    s0, m0, p0, t0 = run_tier(executable, "tier0", inputs, **kw)
    s1, m1, p1, t1 = run_tier(executable, "tier1", inputs, **kw)
    assert s1.exit_code == s0.exit_code
    assert s1.instr_count == s0.instr_count
    assert s1.dynamic_branches == s0.dynamic_branches
    assert s1.output == s0.output
    assert m1.regs == m0.regs
    assert m1.fregs == m0.fregs
    assert m1.memory._pages == m0.memory._pages
    assert list(p1.items()) == list(p0.items())
    assert t1.events == t0.events
    return s0


# -- behavioral identity ------------------------------------------------------


class TestTierDifferential:
    @pytest.mark.parametrize("name,source",
                             MODE_PROGRAMS, ids=[n for n, _ in MODE_PROGRAMS])
    def test_superblock_modes_agree(self, name, source):
        assert_tiers_agree(compile_and_link(source))

    def test_unoptimized_code_agrees(self):
        assert_tiers_agree(compile_and_link(DIAMOND, optimize=False))

    def test_inputs_consumed_identically(self):
        source = """
        int main() {
            int i, n = read_int(), s = 0;
            for (i = 0; i < n; i++) { s = s + read_int(); }
            print_int(s);
            return 0;
        }
        """
        exe = compile_and_link(source)
        assert_tiers_agree(exe, inputs=[60] + list(range(60)))

    @pytest.mark.parametrize("bench_name", ["queens", "fields", "gauss"])
    def test_mini_suite_agrees(self, bench_name):
        from repro.bench.suite import get
        bench = get(bench_name)
        assert_tiers_agree(bench.compile(),
                           inputs=bench.dataset("small").inputs)

    def test_per_event_observer_subclass_sees_expanded_events(self):
        """An Observer subclass overriding only on_branch (e.g. the
        dynamic predictors) must receive the exact per-event stream on
        both tiers — run markers expand in the base class's on_events.
        """
        from repro.core.dynamic import BimodalPredictor
        from repro.sim import Observer

        class PerEvent(Observer):
            def __init__(self):
                self.seen = []

            def on_branch(self, inst, taken, instr_count):
                self.seen.append((inst.address, taken, instr_count))

        exe = compile_and_link(DIAMOND)
        streams, rates = {}, {}
        for tier in TIERS:
            observer, bimodal = PerEvent(), BimodalPredictor()
            Machine(exe, observers=[observer, bimodal], engine=tier).run()
            streams[tier] = observer.seen
            rates[tier] = (bimodal.n_branches, bimodal.miss_rate)
        assert streams["tier1"] == streams["tier0"]
        assert rates["tier1"] == rates["tier0"]

    @pytest.mark.tier2
    def test_full_suite_agrees(self):
        """All suite benchmarks, reference datasets: the golden identity."""
        from repro.bench.suite import suite
        for bench in suite():
            status = assert_tiers_agree(bench.compile(),
                                        inputs=bench.default_dataset.inputs)
            assert status.instr_count > 0, bench.name


# -- tier-1 internals: counters, side exits, shared specs ---------------------


class TestTier1Internals:
    def test_hot_loop_compiles_and_hits_trace_cache(self):
        sink = telemetry.Telemetry()
        run_tier(compile_and_link(HOT_LOOP), "tier1", sink=sink)
        counters = sink.counters()
        assert counters["sim.tier1.superblocks_compiled"] >= 1
        assert counters["sim.tier1.trace_cache_hits"] > 0
        assert counters["sim.tier1.trace_cache_misses"] >= \
            counters["sim.tier1.superblocks_compiled"]

    def test_tier0_publishes_no_tier1_counters(self):
        sink = telemetry.Telemetry()
        run_tier(compile_and_link(HOT_LOOP), "tier0", sink=sink)
        assert not any(name.startswith("sim.tier1.")
                       for name in sink.counters())

    def test_flipping_branch_takes_side_exits(self):
        sink = telemetry.Telemetry()
        run_tier(compile_and_link(SIDE_EXIT), "tier1", sink=sink)
        counters = sink.counters()
        assert counters["sim.tier1.superblocks_compiled"] >= 1
        assert counters["sim.tier1.side_exits"] >= 1

    def test_residency_histogram_recorded(self):
        sink = telemetry.Telemetry()
        run_tier(compile_and_link(HOT_LOOP), "tier1", sink=sink)
        hist = sink.histograms()["sim.tier1.superblock_residency"]
        assert hist.count > 0
        quantiles = hist.percentiles()
        # residency counts instructions retired per superblock *entry*
        # (looped blocks run many iterations per entry), so the tail can
        # exceed the static block length — but never drop below one inst
        assert 0 < quantiles["p50"] <= quantiles["p95"]
        assert hist.min >= 1

    def test_block_specs_shared_across_machines(self):
        """A second Machine over the same Executable re-binds the shared
        spec instead of re-forming the superblock, and behaves identically.
        """
        exe = compile_and_link(HOT_LOOP)
        first, second = telemetry.Telemetry(), telemetry.Telemetry()
        s1, m1, *_ = run_tier(exe, "tier1", sink=first)
        specs = _specs_for(exe)
        assert specs, "hot loop never produced a shared block spec"
        formed = dict(specs)
        s2, m2, *_ = run_tier(exe, "tier1", sink=second)
        assert _specs_for(exe) == formed, "second machine re-formed specs"
        assert second.counters()["sim.tier1.superblocks_compiled"] >= 1
        assert s2.output == s1.output
        assert s2.instr_count == s1.instr_count
        assert m2.regs == m1.regs


# -- engine selection seams and fingerprints ----------------------------------


class TestEngineSeams:
    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv(FORCE_TIER0_ENV, raising=False)
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine_name(None) == "tier1"
        assert resolve_engine_name("tier0") == "tier0"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "tier0")
        assert resolve_engine_name(None) == "tier0"
        assert resolve_engine_name("tier1") == "tier1"  # explicit wins

    def test_force_tier0_chaos_seam_overrides_everything(self):
        exe = compile_and_link(HOT_LOOP)
        with chaos_env(force_tier0="1"):
            machine = Machine(exe, engine="tier1")
            assert machine.engine == "tier0"
            sink = telemetry.Telemetry()
            _, forced, *_ = run_tier(exe, "tier1", sink=sink)
            assert forced.engine == "tier0"
            assert not any(n.startswith("sim.tier1.")
                           for n in sink.counters())
        assert Machine(exe, engine="tier1").engine == "tier1"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Machine(compile_and_link(HOT_LOOP), engine="tier9")

    def test_run_key_carries_engine_fingerprint(self):
        base = dict(compile_digest="abc", dataset="ref", inputs=(1, 2),
                    fuel_budget=1000, max_memory_bytes=None,
                    retry_fuel_factor=2)
        tier0 = run_key(**base, engine="tier0")
        tier1 = run_key(**base, engine="tier1")
        assert tier0 != tier1, "tier artifacts would alias in the cache"
        assert run_key(**base) == tier1  # default fingerprint is tier1


# -- watchdog: overshoot bounds and tick accounting ---------------------------


class TestWatchdogAccounting:
    @pytest.mark.parametrize("tier", TIERS)
    def test_expired_deadline_overshoot_is_bounded(self, tier):
        """A deadline that is already past must fault within one tick
        interval (tier0) plus at most one superblock (tier1) — the
        documented overshoot bound of the batched watchdog.
        """
        machine = Machine(compile_and_link(SPIN), engine=tier,
                          wall_clock_deadline=0.0, watchdog_interval=64)
        with pytest.raises(SimulationTimeout) as excinfo:
            machine.run()
        bound = 64 + (MAX_BLOCK_LEN if tier == "tier1" else 0)
        assert excinfo.value.crash_report.instr_count <= bound

    @pytest.mark.parametrize("tier", TIERS)
    def test_hot_loop_still_hits_deadline(self, tier):
        """Compiled superblocks must not starve the watchdog: an infinite
        loop that spends all its time in the trace cache still times out.
        """
        machine = Machine(compile_and_link(SPIN), engine=tier,
                          wall_clock_deadline=0.05)
        with pytest.raises(SimulationTimeout):
            machine.run()

    @pytest.mark.parametrize("tier", TIERS)
    def test_tick_and_sample_accounting_is_exact(self, tier):
        """Batching housekeeping at superblock boundaries must not lose
        ticks: both tiers account exactly one tick per interval crossed,
        and every tick lands one hot-PC sample.
        """
        machine = Machine(compile_and_link(DIAMOND), engine=tier,
                          watchdog_interval=64, pc_sample_interval=64)
        status = machine.run()
        assert machine.watchdog_ticks == status.instr_count // 64
        assert sum(machine.hot_pc_samples.values()) == machine.watchdog_ticks

    def test_tier1_attributes_samples_to_superblock_heads(self):
        machine = Machine(compile_and_link(HOT_LOOP), engine="tier1",
                          pc_sample_interval=64)
        machine.run()
        assert machine.hot_pc_samples
        # the dominant sample site is the hot loop's superblock head
        total = sum(machine.hot_pc_samples.values())
        assert max(machine.hot_pc_samples.values()) > total // 2


# -- fault byte-identity ------------------------------------------------------


def crash_fields(executable, tier, inputs=None, **kw):
    """Run to the fault and return the crash report as a plain dict,
    minus the process-global flight recorder (time-dependent by design).
    """
    machine = Machine(executable, inputs=list(inputs) if inputs else None,
                      engine=tier, **kw)
    with pytest.raises(ReproError) as excinfo:
        machine.run()
    report = excinfo.value.crash_report
    assert report is not None
    fields = dataclasses.asdict(report)
    fields.pop("flight", None)
    return type(excinfo.value), fields


class TestFaultByteIdentity:
    def test_fuel_exhaustion_reports_identical(self):
        exe = compile_and_link(HOT_LOOP)
        assert crash_fields(exe, "tier0", max_instructions=1000) == \
            crash_fields(exe, "tier1", max_instructions=1000)

    def test_input_starvation_reports_identical(self):
        exe = compile_and_link("""
        int main() {
            int i, s = 0;
            for (i = 0; i < 100; i++) { s = s + read_int(); }
            print_int(s);
            return 0;
        }
        """)
        inputs = list(range(90))  # starves after the loop is hot
        assert crash_fields(exe, "tier0", inputs=inputs) == \
            crash_fields(exe, "tier1", inputs=inputs)

    def test_memory_budget_reports_identical(self):
        exe = compile_and_link("""
        int deep(int n) {
            int pad[200];
            pad[0] = n;
            if (n == 0) { return 0; }
            return pad[0] + deep(n - 1);
        }
        int main() { print_int(deep(100000)); return 0; }
        """)
        budget = 24 * 4096
        assert crash_fields(exe, "tier0", max_memory_bytes=budget) == \
            crash_fields(exe, "tier1", max_memory_bytes=budget)

    @pytest.mark.parametrize("fault", ["opcode", "branch-target"])
    def test_corrupted_artifact_reports_identical(self, fault, mini_runner):
        from repro.testing.chaos import corrupt_branch_targets, corrupt_opcode
        corrupt = {"opcode": corrupt_opcode,
                   "branch-target": corrupt_branch_targets}[fault]
        executable, _ = mini_runner.compiled("queens")
        bad = corrupt(executable)
        assert crash_fields(bad, "tier0") == crash_fields(bad, "tier1")
