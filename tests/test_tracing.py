"""Distributed tracing + flight recorder invariants (PR 7).

Property-based coverage of the three load-bearing mechanisms:

* W3C ``traceparent`` parse/mint round-trips (continuation keeps the
  trace, malformed headers degrade to a fresh root — never an error);
* the flight-recorder ring keeps exactly the last *capacity* events in
  sequence order through arbitrary wraparound;
* snapshot merge re-stitches worker telemetry into the parent sink with
  every span's ``trace_id`` tag intact — the property that makes one
  trace span the fork boundary.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro import telemetry as _telemetry
from repro.telemetry import tracing
from repro.telemetry.core import Telemetry
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.tracing import (
    TraceContext, parse_traceparent, timeline,
)

_hex = st.text(alphabet="0123456789abcdef", min_size=32, max_size=32)
_hex16 = st.text(alphabet="0123456789abcdef", min_size=16, max_size=16)


# -- traceparent ------------------------------------------------------------


class TestTraceparent:
    @given(trace_id=_hex, span_id=_hex16)
    @settings(max_examples=50)
    def test_round_trip_keeps_trace_parents_on_caller(self, trace_id,
                                                      span_id):
        header = f"00-{trace_id}-{span_id}-01"
        ctx = parse_traceparent(header)
        if trace_id == "0" * 32 or span_id == "0" * 16:
            assert ctx is None  # all-zero ids are invalid per the spec
            return
        assert ctx.trace_id == trace_id
        assert ctx.parent_id == span_id
        assert ctx.span_id != span_id and len(ctx.span_id) == 16

    def test_mint_emit_parse_round_trip(self):
        root = TraceContext.mint()
        cont = parse_traceparent(root.traceparent)
        assert cont.trace_id == root.trace_id
        assert cont.parent_id == root.span_id

    @given(st.text(alphabet=string.printable, max_size=64))
    @settings(max_examples=50)
    def test_arbitrary_garbage_never_raises(self, header):
        ctx = parse_traceparent(header)
        if ctx is not None:  # only a perfectly-shaped header parses
            assert len(ctx.trace_id) == 32

    def test_rejects(self):
        root = TraceContext.mint()
        bad = [None, "", "not-a-header",
               f"ff-{root.trace_id}-{root.span_id}-01",     # version ff
               f"00-{'0' * 32}-{root.span_id}-01",          # zero trace
               f"00-{root.trace_id}-{'0' * 16}-01",         # zero span
               f"00-{root.trace_id[:-1]}-{root.span_id}-01"]
        assert all(parse_traceparent(h) is None for h in bad)

    def test_child_shares_trace_links_parent(self):
        root = TraceContext.mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id


# -- flight recorder --------------------------------------------------------


class TestFlightRecorder:
    @given(capacity=st.integers(min_value=1, max_value=64),
           n=st.integers(min_value=0, max_value=300))
    @settings(max_examples=50)
    def test_ring_keeps_last_capacity_in_seq_order(self, capacity, n):
        ring = FlightRecorder(capacity=capacity)
        for i in range(n):
            ring.record("event", index=i)
        dump = ring.dump()
        assert len(dump) == min(n, capacity)
        seqs = [e["seq"] for e in dump]
        assert seqs == sorted(seqs)
        # exactly the most recent events survive wraparound
        assert [e["index"] for e in dump] == list(range(max(0, n - capacity),
                                                        n))

    def test_capacity_zero_disables(self):
        ring = FlightRecorder(capacity=0)
        ring.record("event", index=1)
        assert not ring.enabled and ring.dump() == []

    def test_trace_id_filled_from_active_context(self):
        ring = FlightRecorder(capacity=8)
        ctx = TraceContext.mint()
        with tracing.activate(ctx):
            ring.record("inside")
        ring.record("outside")
        dump = {e["kind"]: e for e in ring.dump()}
        assert dump["inside"]["trace_id"] == ctx.trace_id
        assert "trace_id" not in dump["outside"]


# -- cross-process re-stitching ---------------------------------------------


def _worker_sink(ctx: TraceContext, worker: int):
    """One simulated forked worker: records under its own private sink
    and an activated trace context, returns (snapshot, trace spans)."""
    sink = Telemetry(enabled=True)
    with _telemetry.use(sink):
        with tracing.activate(ctx, process=f"worker:{worker}") as spans:
            with tracing.span("worker.simulate", "worker", shard=worker):
                pass
            with sink.span(f"run:{worker}", category="harness"):
                pass
    return sink.snapshot(), spans


class TestMergeStitching:
    @given(n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_merge_preserves_each_workers_trace_id(self, n):
        parent = Telemetry(enabled=True)
        contexts = [TraceContext.mint() for _ in range(n)]
        all_spans = []
        for worker, ctx in enumerate(contexts):
            snapshot, spans = _worker_sink(ctx, worker)
            parent.merge_snapshot(snapshot)
            all_spans.extend(spans)
        # metric spans: the trace_id tag survived the merge verbatim
        merged = {s.args.get("trace_id") for s in parent.spans}
        assert merged == {ctx.trace_id for ctx in contexts}
        # trace spans: each context's timeline sees exactly its own span
        for ctx in contexts:
            body = timeline(ctx.trace_id, all_spans)
            assert len(body["spans"]) == 1
            assert body["spans"][0]["trace_id"] == ctx.trace_id
            assert body["tiers"] == ["worker"]

    def test_span_args_unchanged_without_active_context(self):
        # the trace_id tag must never leak into untraced batch runs
        sink = Telemetry(enabled=True)
        with sink.span("compile", benchmark="queens"):
            pass
        assert sink.spans[0].args == {"benchmark": "queens"}


# -- timeline accounting ----------------------------------------------------


class TestTimeline:
    def test_segments_account_queue_dispatch_exec_not_lease(self):
        ctx = TraceContext.mint()
        spans = [
            tracing.manual_span(ctx, "queue_wait", "queue", 0.0, 1.0),
            tracing.manual_span(ctx, "dispatch", "service", 1.0, 1.5),
            tracing.manual_span(ctx, "exec", "service", 1.5, 4.0),
            tracing.manual_span(ctx, "cache.lease_wait", "cache", 2.0, 3.0),
            tracing.manual_span(ctx, "retry_backoff", "service", 4.0, 4.25),
        ]
        body = timeline(ctx.trace_id, spans, total_s=4.25)
        seg = body["segments"]
        assert seg["queue_wait_s"] == 1.0
        assert seg["lease_wait_s"] == 1.0
        # lease wait happens *inside* exec: reported, never double-counted
        assert seg["accounted_s"] == 1.0 + 0.5 + 2.5 + 0.25
        assert seg["total_s"] == 4.25
        assert body["tiers"] == ["cache", "queue", "service"]

    def test_foreign_trace_spans_filtered(self):
        mine, theirs = TraceContext.mint(), TraceContext.mint()
        spans = [tracing.manual_span(mine, "exec", "service", 0.0, 1.0),
                 tracing.manual_span(theirs, "exec", "service", 0.0, 9.0)]
        body = timeline(mine.trace_id, spans)
        assert len(body["spans"]) == 1
        assert body["segments"]["exec_s"] == 1.0

    def test_nested_spans_parent_correctly(self):
        ctx = TraceContext.mint()
        with tracing.activate(ctx) as spans:
            with tracing.span("outer", "worker"):
                with tracing.span("inner", "worker"):
                    pass
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id == ctx.span_id
