"""Tests for the BLC lexer."""

import pytest

from repro.bcc.errors import CompileError
from repro.bcc.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_gives_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == TokenKind.EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("int foo while whilex _bar")
        assert [t.kind for t in toks[:-1]] == [
            TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.KEYWORD,
            TokenKind.IDENT, TokenKind.IDENT]

    def test_null_is_int_zero(self):
        tok = tokenize("NULL")[0]
        assert tok.kind == TokenKind.INT
        assert tok.value == 0

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_filename_recorded(self):
        tok = tokenize("x", filename="prog.blc")[0]
        assert tok.filename == "prog.blc"


class TestNumbers:
    @pytest.mark.parametrize("text,value", [
        ("0", 0), ("42", 42), ("0x10", 16), ("0XFF", 255),
    ])
    def test_int_literals(self, text, value):
        tok = tokenize(text)[0]
        assert tok.kind == TokenKind.INT
        assert tok.value == value

    @pytest.mark.parametrize("text,value", [
        ("1.5", 1.5), ("0.25", 0.25), (".5", 0.5), ("2e3", 2000.0),
        ("1.5e-2", 0.015), ("3E+2", 300.0),
    ])
    def test_double_literals(self, text, value):
        tok = tokenize(text)[0]
        assert tok.kind == TokenKind.DOUBLE
        assert tok.value == value

    def test_int_dot_member_not_double(self):
        # "a.b" must lex as ident, dot, ident
        assert kinds("a.b") == [TokenKind.IDENT, TokenKind.OP,
                                TokenKind.IDENT]


class TestCharsAndStrings:
    @pytest.mark.parametrize("text,value", [
        ("'a'", 97), ("'0'", 48), ("'\\n'", 10), ("'\\t'", 9),
        ("'\\0'", 0), ("'\\\\'", 92), ("'\\''", 39),
    ])
    def test_char_literals(self, text, value):
        tok = tokenize(text)[0]
        assert tok.kind == TokenKind.CHAR
        assert tok.value == value

    def test_string_literal(self):
        tok = tokenize('"hi\\n"')[0]
        assert tok.kind == TokenKind.STRING
        assert tok.value == "hi\n"

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(CompileError, match="newline"):
            tokenize('"ab\ncd"')

    def test_empty_char(self):
        with pytest.raises(CompileError, match="empty"):
            tokenize("''")

    def test_bad_escape(self):
        with pytest.raises(CompileError, match="escape"):
            tokenize("'\\q'")


class TestOperators:
    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a<b") == ["a", "<", "b"]
        assert texts("p->x") == ["p", "->", "x"]
        assert texts("a- -b") == ["a", "-", "-", "b"]
        assert texts("i++ +j") == ["i", "++", "+", "j"]

    def test_all_compound_assignments(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>="]:
            assert texts(f"a {op} b")[1] == op

    def test_unknown_character(self):
        with pytest.raises(CompileError, match="unexpected"):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize("a /* oops")

    def test_comment_position_tracking(self):
        toks = tokenize("/* a\nb */ x")
        assert toks[0].line == 2
