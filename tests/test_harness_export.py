"""Tests for the CSV/JSON export of tables and graphs (mini suite)."""

import csv
import json

import pytest

from conftest import MINI_SUITE
from repro.harness import SuiteRunner
from repro.harness.export import export_graphs, export_tables


@pytest.fixture(scope="module")
def export_dir(tmp_path_factory):
    runner = SuiteRunner(MINI_SUITE)
    for name in MINI_SUITE:
        runner._runs[(name, "ref")] = runner.run(name, "small")
        # graph13 needs every dataset; alias them all to the small run to
        # keep this unit test fast
        for ds in ("alt",):
            runner._runs[(name, ds)] = runner.run(name, "small")
    outdir = tmp_path_factory.mktemp("export")
    written = export_tables(runner, outdir)
    # restrict sequence graphs to the mini suite
    written += export_graphs(runner, outdir,
                             sequence_benchmarks=tuple(MINI_SUITE[:1]))
    return outdir, written


class TestExport:
    def test_all_files_written(self, export_dir):
        outdir, written = export_dir
        names = {p.name for p in written}
        assert {"table1.csv", "table2.csv", "table3.csv", "table4.json",
                "table5.csv", "table6.csv", "table7.json", "graph1.csv",
                "graphs2_3.csv", "graph12.csv", "graph13.csv"} <= names

    def test_table2_csv_parses(self, export_dir):
        outdir, _ = export_dir
        with (outdir / "table2.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(MINI_SUITE)
        for row in rows:
            assert 0.0 <= float(row["loop_pred_miss"]) <= 1.0

    def test_table4_json_parses(self, export_dir):
        outdir, _ = export_dir
        data = json.loads((outdir / "table4.json").read_text())
        assert data["n_trials"] > 0
        assert len(data["pairwise_order"]) == 7
        for entry in data["top_orders"]:
            assert len(entry["order"]) == 7

    def test_graph1_monotone(self, export_dir):
        outdir, _ = export_dir
        with (outdir / "graph1.csv").open() as handle:
            values = [float(r["avg_miss_rate"])
                      for r in csv.DictReader(handle)]
        assert len(values) == 5040
        assert values == sorted(values)

    def test_graph12_fractions(self, export_dir):
        outdir, _ = export_dir
        with (outdir / "graph12.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 12 * 101
        assert all(0.0 <= float(r["fraction"]) <= 1.0 for r in rows)

    def test_sequence_graph_exported(self, export_dir):
        outdir, _ = export_dir
        path = outdir / f"graph_sequences_{MINI_SUITE[0]}.csv"
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        predictors = {r["predictor"] for r in rows}
        assert predictors == {"Loop+Rand", "Heuristic", "Perfect"}
