"""Generator grammar: determinism, ground truth, knobs, and the
benchmark registry seam."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lint import lint_source
from repro.bench.suite import (
    Benchmark, Dataset, get, register, registered, registered_names,
    suite_names, unregister,
)
from repro.gen import (
    CorpusError, GenKnobs, generate_corpus, generate_program,
    manifest_dict, program_name,
)
from repro.gen.grammar import TEMPLATE_LABELS


# -- determinism -------------------------------------------------------------


def test_same_seed_same_program():
    a = generate_program(123, 4)
    b = generate_program(123, 4)
    assert a == b
    assert a.source == b.source
    assert a.datasets == b.datasets
    assert a.sha256() == b.sha256()


def test_different_seed_or_index_differs():
    base = generate_program(123, 4)
    assert generate_program(124, 4).source != base.source
    assert generate_program(123, 5).source != base.source


def test_determinism_is_hashseed_independent():
    """String seeding hashes with SHA-512, not PYTHONHASHSEED — two
    fresh interpreters must agree (pinned via a stable digest here)."""
    digests = {generate_program(7, i).sha256() for i in range(3)}
    again = {generate_program(7, i).sha256() for i in range(3)}
    assert digests == again


def test_manifest_dict_is_stable():
    programs = generate_corpus(99, 3)
    a = json.dumps(manifest_dict(programs, 99), sort_keys=True)
    b = json.dumps(manifest_dict(generate_corpus(99, 3), 99),
                   sort_keys=True)
    assert a == b


# -- ground truth ------------------------------------------------------------


def test_labels_cover_every_generated_procedure():
    gp = generate_program(42, 0)
    labeled = dict(gp.labels)
    for proc, label in gp.labels:
        assert label in TEMPLATE_LABELS
        assert proc.startswith("gx")
    assert gp.label_of("main") == "driver"
    assert gp.label_of("malloc") == "runtime"
    for proc in labeled:
        assert gp.label_of(proc) == labeled[proc]


def test_templates_knob_restricts_catalog():
    knobs = GenKnobs(templates=("loop.exact", "branch.bias"),
                     constructs=4)
    gp = generate_program(5, 0, knobs)
    assert set(gp.templates) <= {"loop.exact", "branch.bias"}
    labels = {label for _, label in gp.labels}
    assert labels <= {"loop.exact", "branch.bias"}


def test_unknown_template_key_rejected():
    with pytest.raises(ValueError, match="unknown template"):
        GenKnobs(templates=("loop.exact", "nope")).catalog()


def test_datasets_pair_fuel_with_inputs():
    gp = generate_program(17, 2)
    assert [ds.name for ds in gp.datasets] == ["ref", "alt"]
    for ds in gp.datasets:
        assert len(ds.inputs) == 3
        assert all(0 <= value < 97 for value in ds.inputs)
        assert ds.fuel > 250_000
    # fuel tracks the rep count the first input drives
    reps = [1 + (ds.inputs[0] % 24) % 4 for ds in gp.datasets]
    fuels = [ds.fuel for ds in gp.datasets]
    if reps[0] != reps[1]:
        assert (fuels[0] > fuels[1]) == (reps[0] > reps[1])
    else:
        assert fuels[0] == fuels[1]


def test_generated_programs_are_lint_clean():
    for index in range(4):
        gp = generate_program(31, index)
        assert lint_source(gp.source, f"{gp.name}.blc") == []


def test_corpus_count_validation():
    with pytest.raises(CorpusError):
        generate_corpus(1, 0)


def test_program_name_scheme():
    gp = generate_program(7, 12)
    assert gp.name == program_name(7, 12) == "gen_s7_0012"
    assert gp.name not in suite_names()


# -- benchmark registry seam -------------------------------------------------


def _toy_benchmark(name: str = "gen_toy_registry") -> Benchmark:
    return Benchmark(name=name, group="gen", description="toy",
                     paper_analogue="test",
                     datasets=(Dataset("ref", (1,)),),
                     source_text="int main() { return 0; }\n")


def test_register_and_get_roundtrip():
    toy = _toy_benchmark()
    register(toy)
    try:
        assert get(toy.name) is toy
        assert toy.name in registered_names()
        assert toy.source() == toy.source_text
    finally:
        unregister(toy.name)
    with pytest.raises(KeyError):
        get(toy.name)


def test_register_rejects_suite_names():
    with pytest.raises(ValueError, match="reserved"):
        register(_toy_benchmark("queens"))


def test_register_conflict_needs_replace():
    toy = _toy_benchmark()
    other = Benchmark(name=toy.name, group="gen", description="different",
                      paper_analogue="test",
                      datasets=(Dataset("ref", (2,)),),
                      source_text="int main() { return 1; }\n")
    register(toy)
    try:
        register(toy)  # identical re-registration is fine
        with pytest.raises(ValueError, match="already registered"):
            register(other)
        register(other, replace=True)
        assert get(toy.name) is other
    finally:
        unregister(toy.name)


def test_registered_context_manager_scopes_cleanly():
    toy = _toy_benchmark()
    with registered([toy]):
        assert get(toy.name) is toy
    assert toy.name not in registered_names()
    # exception inside the scope still unregisters
    with pytest.raises(RuntimeError):
        with registered([toy]):
            raise RuntimeError("boom")
    assert toy.name not in registered_names()


def test_unregister_unknown_is_noop():
    unregister("gen_never_registered")
