"""Tests for the static predictors and their evaluation."""

import pytest

from conftest import profile_of
from repro.bcc import compile_and_link
from repro.core import (
    BTFNTPredictor, HeuristicPredictor, LoopRandomPredictor,
    NotTakenPredictor, PerfectPredictor, Prediction, RandomPredictor,
    TakenPredictor, branch_random, classify_branches, evaluate_predictor,
)
from repro.core.evaluation import (
    big_branches, cd, coverage, evaluate_predictions, perfect_miss_rate,
)

SRC = """
int data[50];
int count_odd() {
    int i, n = 0;
    for (i = 0; i < 50; i++) {
        if (data[i] % 2 != 0) { n++; }
    }
    return n;
}
int main() {
    int i;
    for (i = 0; i < 50; i++) { data[i] = i * 3 + 1; }
    return count_odd();
}
"""


@pytest.fixture(scope="module")
def setup():
    exe = compile_and_link(SRC)
    analysis = classify_branches(exe)
    profile = profile_of(exe)
    return exe, analysis, profile


class TestBaselinePredictors:
    def test_taken_predicts_all_taken(self, setup):
        _, analysis, _ = setup
        preds = TakenPredictor(analysis).predictions()
        assert all(p is Prediction.TAKEN for p in preds.values())
        assert len(preds) == len(analysis.branches)

    def test_not_taken(self, setup):
        _, analysis, _ = setup
        preds = NotTakenPredictor(analysis).predictions()
        assert all(p is Prediction.NOT_TAKEN for p in preds.values())

    def test_taken_plus_not_taken_miss_rates_sum_to_one(self, setup):
        _, analysis, profile = setup
        t = evaluate_predictor(TakenPredictor(analysis), profile)
        nt = evaluate_predictor(NotTakenPredictor(analysis), profile)
        assert t.miss_rate + nt.miss_rate == pytest.approx(1.0)

    def test_random_deterministic(self, setup):
        _, analysis, _ = setup
        a = RandomPredictor(analysis).predictions()
        b = RandomPredictor(analysis).predictions()
        assert a == b

    def test_random_seed_changes_predictions(self, setup):
        _, analysis, _ = setup
        a = RandomPredictor(analysis, seed=0).predictions()
        b = RandomPredictor(analysis, seed=12345).predictions()
        # with enough branches some prediction should differ
        if len(a) >= 8:
            assert a != b

    def test_branch_random_balanced(self):
        results = [branch_random(4 * i).as_bool for i in range(2000)]
        frac = sum(results) / len(results)
        assert 0.4 < frac < 0.6

    def test_btfnt_matches_backwardness(self, setup):
        _, analysis, _ = setup
        preds = BTFNTPredictor(analysis).predictions()
        for addr, p in preds.items():
            assert p.as_bool == analysis.branches[addr].is_backward

    def test_predictor_accepts_raw_executable(self, setup):
        exe, _, _ = setup
        preds = TakenPredictor(exe).predictions()
        assert preds


class TestPerfectPredictor:
    def test_perfect_beats_or_ties_everything(self, setup):
        _, analysis, profile = setup
        perfect = evaluate_predictor(PerfectPredictor(analysis, profile),
                                     profile)
        for cls in (TakenPredictor, NotTakenPredictor, RandomPredictor,
                    BTFNTPredictor, LoopRandomPredictor, HeuristicPredictor):
            other = evaluate_predictor(cls(analysis), profile)
            assert perfect.misses <= other.misses

    def test_perfect_miss_equals_own_perfect_rate(self, setup):
        _, analysis, profile = setup
        result = evaluate_predictor(PerfectPredictor(analysis, profile),
                                    profile)
        assert result.miss_rate == pytest.approx(result.perfect_rate)

    def test_perfect_is_dataset_dependent(self):
        exe = compile_and_link("""
int main() {
    int i, n = read_int(), acc = 0;
    for (i = 0; i < 100; i++) {
        if (i < n) { acc++; } else { acc--; }
    }
    return acc < 0;
}
""")
        analysis = classify_branches(exe)
        p_low = profile_of(exe, inputs=[5])
        p_high = profile_of(exe, inputs=[95])
        low = PerfectPredictor(analysis, p_low).predictions()
        high = PerfectPredictor(analysis, p_high).predictions()
        assert low != high


class TestHeuristicPredictor:
    def test_loop_branches_use_loop_predictor(self, setup):
        _, analysis, _ = setup
        hp = HeuristicPredictor(analysis)
        preds = hp.predictions()
        for branch in analysis.loop_branches():
            assert preds[branch.address] is branch.loop_prediction
            assert hp.attribution[branch.address] == "LoopPredictor"

    def test_attribution_complete(self, setup):
        _, analysis, _ = setup
        hp = HeuristicPredictor(analysis)
        hp.predictions()
        assert set(hp.attribution) == set(analysis.branches)

    def test_attribution_values_valid(self, setup):
        _, analysis, _ = setup
        hp = HeuristicPredictor(analysis)
        hp.predictions()
        valid = set(hp.order) | {"LoopPredictor", "Default"}
        assert set(hp.attribution.values()) <= valid

    def test_order_respected(self, setup):
        """A branch covered by several heuristics must be attributed to the
        earliest one in the order."""
        _, analysis, _ = setup
        from repro.core.heuristics import applicable_heuristics
        hp = HeuristicPredictor(analysis)
        hp.predictions()
        for branch in analysis.non_loop_branches():
            pa = analysis.analysis_of(branch)
            table = applicable_heuristics(branch, pa)
            if table:
                first = next(h for h in hp.order if h in table)
                assert hp.attribution[branch.address] == first

    def test_unknown_heuristic_in_order_rejected(self, setup):
        _, analysis, _ = setup
        with pytest.raises(ValueError, match="unknown"):
            HeuristicPredictor(analysis, order=("Bogus",))

    def test_same_predictions_across_datasets(self):
        """Program-based prediction is dataset-independent by construction."""
        exe = compile_and_link(SRC)
        analysis = classify_branches(exe)
        a = HeuristicPredictor(analysis).predictions()
        b = HeuristicPredictor(analysis).predictions()
        assert a == b


class TestEvaluation:
    def test_miss_counting(self, setup):
        _, analysis, profile = setup
        preds = {addr: Prediction.TAKEN for addr in analysis.branches}
        result = evaluate_predictions(preds, profile)
        total_not_taken = sum(profile.not_taken_count(a)
                              for a in profile.executed_branches())
        assert result.misses == total_not_taken

    def test_subset_evaluation(self, setup):
        _, analysis, profile = setup
        addrs = profile.executed_branches()[:2]
        preds = {a: Prediction.TAKEN for a in addrs}
        result = evaluate_predictions(preds, profile, addrs)
        assert result.executed == sum(profile.execution_count(a)
                                      for a in addrs)

    def test_never_executed_branches_ignored(self, setup):
        _, analysis, profile = setup
        dead = [a for a in analysis.branches
                if profile.execution_count(a) == 0]
        preds = {a: Prediction.TAKEN for a in analysis.branches}
        with_dead = evaluate_predictions(preds, profile,
                                         list(analysis.branches))
        without = evaluate_predictions(preds, profile)
        assert with_dead.misses == without.misses
        assert with_dead.executed == without.executed

    def test_missing_prediction_raises(self, setup):
        _, _, profile = setup
        with pytest.raises(KeyError):
            evaluate_predictions({}, profile)

    def test_perfect_miss_rate_function(self, setup):
        _, analysis, profile = setup
        rate = perfect_miss_rate(profile)
        result = evaluate_predictor(PerfectPredictor(analysis, profile),
                                    profile)
        assert rate == pytest.approx(result.miss_rate)

    def test_coverage(self, setup):
        _, analysis, profile = setup
        universe = profile.executed_branches()
        assert coverage(profile, universe, universe) == 1.0
        assert coverage(profile, [], universe) == 0.0

    def test_cd_formatting(self):
        assert cd(0.26, 0.1) == "26/10"
        assert cd(0.0, 0.0) == "0/0"

    def test_big_branches(self, setup):
        _, analysis, profile = setup
        report = big_branches(profile, analysis)
        assert 0 <= report.fraction_of_dynamic <= 1.0
        assert report.count >= 0

    def test_eval_result_empty(self, setup):
        _, analysis, profile = setup
        result = evaluate_predictions({}, profile, [])
        assert result.miss_rate == 0.0
        assert result.perfect_rate == 0.0
