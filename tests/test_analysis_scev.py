"""Unit tests for scalar evolution and the interprocedural range context.

Closed-form trip counts (:func:`repro.analysis.scev.closed_trip_count` /
``interval_trip_count``) are checked against brute-force iteration of the
affine test sequence, including the 32-bit wrap guards; add-recurrence
recognition and exit-test classification run over real compiled IR; and
the interprocedural summary fixpoint (:mod:`repro.analysis.interproc`)
is pinned on the runtime-library facts the branch evidence relies on —
``rand_next``'s bounded return and the provably-empty ``malloc`` free
list of a program that never calls ``free``.
"""

from __future__ import annotations

import pytest

from repro.analysis import lattice
from repro.analysis.interproc import (
    interprocedural_ranges, seed_interprocedural_ranges,
)
from repro.analysis.lattice import INT32_MAX, INT32_MIN
from repro.analysis.scev import (
    SCEVInfo, analyze_scev, closed_trip_count, interval_trip_count,
)
from repro.bcc.driver import compile_to_ir
from repro.bcc.opt import IR_ANALYSES
from repro.harness.evidence import NO_FOLD_PASSES

_HOLDS = {
    "lt": lambda x, y: x < y, "le": lambda x, y: x <= y,
    "gt": lambda x, y: x > y, "ge": lambda x, y: x >= y,
    "eq": lambda x, y: x == y, "ne": lambda x, y: x != y,
}


def brute_trips(base: int, step: int, bound: int, pred: str,
                offset: int, limit: int = 10_000) -> int | None:
    """Reference count by iterating the sequence (None = no exit seen)."""
    for k in range(limit):
        x = base + (k + offset) * step
        if not INT32_MIN <= x <= INT32_MAX:
            return None  # wrapped: the closed form must have refused
        if not _HOLDS[pred](x, bound):
            return k
    return None


# -- closed_trip_count -------------------------------------------------------


@pytest.mark.parametrize("base,step,bound,pred,offset", [
    (0, 1, 10, "lt", 0),      # canonical for (i = 0; i < 10; i++)
    (0, 1, 10, "lt", 1),      # same loop, latch-rotated test
    (0, 1, 10, "le", 0),
    (3, 2, 20, "lt", 0),
    (10, -1, 0, "gt", 0),     # descending
    (10, -3, 0, "ge", 1),
    (0, 2, 10, "ne", 0),      # exact divisibility
    (7, 1, 7, "ne", 0),       # fails immediately
    (5, 1, 4, "lt", 0),       # zero-trip
    (5, 3, 5, "eq", 0),       # holds once, then steps off
])
def test_closed_trip_count_matches_brute_force(base, step, bound, pred,
                                               offset):
    expected = brute_trips(base, step, bound, pred, offset)
    assert closed_trip_count(base, step, bound, pred, offset) == expected


@pytest.mark.parametrize("base,step,bound,pred,offset", [
    (0, 0, 10, "lt", 0),             # never changes: continues forever
    (0, -1, 10, "lt", 0),            # moves away from the bound
    (0, 3, 10, "ne", 0),             # steps over: exits only via wrap
    (INT32_MAX, 1, INT32_MAX, "le", 1),   # first tested value wrapped
    (INT32_MAX - 1, 2, INT32_MAX, "le", 0),  # wraps mid-sequence
    (INT32_MIN + 1, -2, INT32_MIN, "ge", 0),
])
def test_closed_trip_count_refuses_unsound_cases(base, step, bound, pred,
                                                 offset):
    assert closed_trip_count(base, step, bound, pred, offset) is None


def test_closed_trip_count_refuses_wrapping_start():
    # base + offset*step already outside int32 before the first test
    assert closed_trip_count(INT32_MAX, 1, 0, "ge", 1) is None


# -- interval_trip_count -----------------------------------------------------


def test_interval_trip_count_const_box_is_exact():
    base, bound = lattice.const(0), lattice.const(10)
    assert interval_trip_count(base, 1, bound, "lt", 0) == (10, 10)


def test_interval_trip_count_corners_bound_the_count():
    base = lattice.Interval(0, 3)
    bound = lattice.Interval(8, 10)
    lo, hi = interval_trip_count(base, 1, bound, "lt", 0)
    # brute-force every corner of the box
    counts = [brute_trips(b, 1, n, "lt", 0)
              for b in range(0, 4) for n in range(8, 11)]
    assert lo == min(counts) and hi == max(counts)


def test_interval_trip_count_descending():
    base = lattice.Interval(5, 9)
    bound = lattice.Interval(0, 1)
    lo, hi = interval_trip_count(base, -1, bound, "gt", 0)
    counts = [brute_trips(b, -1, n, "gt", 0)
              for b in range(5, 10) for n in range(0, 2)]
    assert lo == min(counts) and hi == max(counts)


def test_interval_trip_count_zero_trip_box():
    # the first test fails across the whole box: max is exactly 0
    base = lattice.Interval(10, 12)
    bound = lattice.Interval(0, 10)
    assert interval_trip_count(base, 1, bound, "lt", 0) == (0, 0)


def test_interval_trip_count_equality_preds_abstain():
    base, bound = lattice.Interval(0, 1), lattice.Interval(5, 6)
    assert interval_trip_count(base, 1, bound, "ne", 0) == (0, None)


def test_interval_trip_count_overflow_unsafe_upper_bound():
    # the bound can reach INT32_MAX, so a run could wrap mid-loop and
    # outlive the corner estimate: no sound upper bound exists
    base = lattice.Interval(0, 10)
    bound = lattice.Interval(0, INT32_MAX)
    lo, hi = interval_trip_count(base, 1, bound, "lt", 0)
    assert lo == 0
    assert hi is None


# -- add-rec recognition over compiled IR ------------------------------------


_COUNTED = """
int main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 20; i = i + 1) {
        total = total + read_int();
    }
    print_int(total);
    return 0;
}
"""


def _scev_of(source: str, function: str = "main") -> SCEVInfo:
    program = compile_to_ir(source, passes=NO_FOLD_PASSES)
    func = next(f for f in program.functions if f.name == function)
    return analyze_scev(func)


def test_recognizes_the_counted_loop():
    info = _scev_of(_COUNTED)
    assert info.trips, "expected a classified exit test"
    trip = next(iter(info.trips.values()))
    assert trip.step == 1
    # rotated loop: the guard filters the first test, so the latch sees
    # i = 1..20 and continues 19 times per entry
    assert trip.kind == "latch"
    assert trip.exact and trip.min_trips == 19
    assert trip.single_exit
    # the induction variable was recognized as {0, +, 1}
    recs = info.add_recs[trip.head]
    assert recs[trip.iv].step == 1


def test_break_makes_the_loop_multi_exit():
    source = """
    int main() {
        int i;
        for (i = 0; i < 20; i = i + 1) {
            if (read_int() == 7) { break; }
        }
        print_int(i);
        return 0;
    }
    """
    info = _scev_of(source)
    assert info.trips
    trip = next(t for t in info.trips.values() if t.exact)
    assert trip.min_trips == 19
    assert not trip.single_exit


def test_conditional_increment_is_not_an_add_rec():
    source = """
    int main() {
        int i;
        i = 0;
        while (i < 20) {
            if (read_int()) { i = i + 1; }
        }
        print_int(i);
        return 0;
    }
    """
    info = _scev_of(source)
    # i's increment does not dominate the latch: no trip count claimed
    assert all(t.iv is None or t.max_trips is None or t.min_trips == 0
               for t in info.trips.values()) or not info.trips


# -- the interprocedural context ---------------------------------------------


def _program(source: str):
    return compile_to_ir(source, passes=NO_FOLD_PASSES)


def test_rand_next_return_summary_is_bounded():
    program = _program("""
    int main() {
        rand_seed(42);
        print_int(rand_next(10));
        return 0;
    }
    """)
    context = interprocedural_ranges(program)
    ret = context.returns["rand_next"]
    assert 0 <= ret.lo and ret.hi <= 32767


def test_free_list_stays_empty_without_free():
    program = _program("""
    int main() {
        char *p;
        p = malloc(40);
        p[0] = 7;
        print_int(p[0]);
        return 0;
    }
    """)
    context = interprocedural_ranges(program)
    # `free` is never called, so its store to the free list is dead code
    # under the call-graph-rooted fixpoint: the list provably stays NULL
    assert context.globals["G__rt_free_list"] == lattice.const(0)


def test_unreached_functions_get_conservative_entries():
    program = _program("""
    int helper(int n) { return n + 1; }
    int main() { print_int(3); return 0; }
    """)
    context = interprocedural_ranges(program)
    assert context.entries["helper"] == {}
    assert "helper" not in context.returns


def test_call_site_arguments_constrain_parameters():
    program = _program("""
    int twice(int n) { return n + n; }
    int main() {
        print_int(twice(3));
        print_int(twice(10));
        return 0;
    }
    """)
    context = interprocedural_ranges(program)
    twice = next(f for f in program.functions if f.name == "twice")
    env = context.entries["twice"]
    (_, vreg, _), = [p for p in twice.params]
    assert vreg in env
    assert env[vreg].lo >= 3 and env[vreg].hi <= 10
    ret = context.returns["twice"]
    assert ret.lo >= 6 and ret.hi <= 20


def test_seeding_annotates_functions_and_sharpens_ranges():
    program = _program("""
    int main() {
        int len;
        int i;
        int total;
        len = 3 + rand_next(8);
        total = 0;
        for (i = 0; i < len; i = i + 1) { total = total + 1; }
        print_int(total);
        return 0;
    }
    """)
    seed_interprocedural_ranges(program)
    main = next(f for f in program.functions if f.name == "main")
    assert hasattr(main, "range_entry_facts")
    info: SCEVInfo = IR_ANALYSES.manager(main).get("scev")
    # rand_next(8) returns [0, 7], so len is [3, 10] and the rotated
    # latch continues len - 1 in [2, 9] times — a provable majority,
    # which only the interprocedural return summary can see
    trip = next((t for t in info.trips.values() if t.min_trips >= 2),
                None)
    assert trip is not None, [
        (t.min_trips, t.max_trips) for t in info.trips.values()]
    assert trip.max_trips == 9
