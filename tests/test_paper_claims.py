"""Integration tests asserting the paper's qualitative claims hold on our
reproduction (small datasets for speed; the full-suite numbers live in the
benchmark harness and EXPERIMENTS.md)."""

import pytest

from repro.bench import get
from repro.core import (
    BTFNTPredictor, HeuristicPredictor, LoopRandomPredictor,
    PerfectPredictor, RandomPredictor, TakenPredictor, classify_branches,
    evaluate_predictor, sequence_experiment,
)
from repro.harness import SuiteRunner

BENCHES = ["queens", "fields", "gauss", "scc", "mesh"]


@pytest.fixture(scope="module")
def runner():
    r = SuiteRunner(BENCHES)
    for name in BENCHES:
        r._runs[(name, "ref")] = r.run(name, "small")
    return r


def all_eval(run, predictor_cls, **kw):
    predictor = predictor_cls(run.analysis, **kw)
    return evaluate_predictor(predictor, run.profile)


class TestSection3Claims:
    def test_loop_predictor_accurate(self, runner):
        """'The loop predictor does very well': low miss on loop branches."""
        for run in runner.all_runs():
            lr = LoopRandomPredictor(run.analysis)
            result = evaluate_predictor(lr, run.profile, run.loop_addresses)
            assert result.miss_rate < 0.30, run.name

    def test_loop_predictor_beats_backward_taken(self, runner):
        """Natural-loop-based loop prediction >= BTFNT on loop branches,
        because non-backward loop branches exist."""
        total_loop, total_btfnt = 0, 0
        for run in runner.all_runs():
            loop = evaluate_predictor(LoopRandomPredictor(run.analysis),
                                      run.profile, run.loop_addresses)
            btfnt = evaluate_predictor(BTFNTPredictor(run.analysis),
                                       run.profile, run.loop_addresses)
            total_loop += loop.misses
            total_btfnt += btfnt.misses
        assert total_loop <= total_btfnt

    def test_non_backward_loop_branches_exist(self, runner):
        """'Many non-backwards branches can also control the iteration of
        loops.'"""
        found = 0
        for run in runner.all_runs():
            for b in run.analysis.loop_branches():
                if not b.is_backward:
                    found += 1
        assert found > 0

    def test_perfect_non_loop_miss_is_low(self, runner):
        """'Most non-loop branches take one direction with high
        probability': perfect static prediction on non-loop branches is far
        from 50%."""
        for run in runner.all_runs():
            perfect = PerfectPredictor(run.analysis, run.profile)
            result = evaluate_predictor(perfect, run.profile,
                                        run.non_loop_addresses)
            assert result.miss_rate < 0.35, run.name

    def test_naive_strategies_are_mediocre(self, runner):
        """Tgt/Rnd on non-loop branches: 'middling results' — far worse
        than perfect."""
        for cls in (TakenPredictor, RandomPredictor):
            worse = 0
            for run in runner.all_runs():
                naive = evaluate_predictor(cls(run.analysis), run.profile,
                                           run.non_loop_addresses)
                perfect = evaluate_predictor(
                    PerfectPredictor(run.analysis, run.profile), run.profile,
                    run.non_loop_addresses)
                if naive.miss_rate > perfect.miss_rate + 0.10:
                    worse += 1
            assert worse >= len(BENCHES) - 1


class TestSection5Claims:
    def test_combined_heuristic_beats_naive(self, runner):
        """The combined heuristic beats always-taken and random on non-loop
        branches in aggregate."""
        h_miss, t_miss, r_miss, total = 0, 0, 0, 0
        for run in runner.all_runs():
            nl = run.executed_non_loop
            h = evaluate_predictor(HeuristicPredictor(run.analysis),
                                   run.profile, nl)
            t = evaluate_predictor(TakenPredictor(run.analysis),
                                   run.profile, nl)
            r = evaluate_predictor(RandomPredictor(run.analysis),
                                   run.profile, nl)
            h_miss += h.misses
            t_miss += t.misses
            r_miss += r.misses
            total += h.executed
        assert h_miss < t_miss
        assert h_miss < r_miss

    def test_heuristic_between_random_and_perfect(self, runner):
        for run in runner.all_runs():
            h = all_eval(run, HeuristicPredictor)
            p = all_eval(run, PerfectPredictor, profile=run.profile)
            assert p.misses <= h.misses

    def test_heuristic_coverage_substantial(self, runner):
        """'effective in terms of coverage': most dynamic non-loop branches
        are covered by a non-default heuristic."""
        covered, total = 0, 0
        for run in runner.all_runs():
            hp = HeuristicPredictor(run.analysis)
            hp.predictions()
            for addr in run.executed_non_loop:
                count = run.profile.execution_count(addr)
                total += count
                if hp.attribution[addr] != "Default":
                    covered += count
        assert covered / total > 0.5


class TestMeshGuardStoreStory:
    """The paper's tomcatv case: the max-update branch is mispredicted by
    Guard but predicted perfectly by Store."""

    @pytest.fixture(scope="class")
    def mesh_branch(self):
        runner = SuiteRunner(["mesh"])
        run = runner.run("mesh", "small")
        # the hottest non-loop branch in scan_residual is the max update
        scan = [b for b in run.analysis.non_loop_branches()
                if b.procedure.name == "scan_residual"]
        branch = max(scan, key=lambda b: run.profile.execution_count(b.address))
        return run, branch

    def test_guard_gets_it_wrong(self, mesh_branch):
        from repro.core.heuristics import guard_heuristic, store_heuristic
        run, branch = mesh_branch
        pa = run.analysis.analysis_of(branch)
        guard = guard_heuristic(branch, pa)
        store = store_heuristic(branch, pa)
        assert guard is not None and store is not None
        assert guard is not store  # they disagree

        def misses(prediction):
            if prediction.as_bool:
                return run.profile.not_taken_count(branch.address)
            return run.profile.taken_count(branch.address)

        # Store predicts (nearly) perfectly; Guard is (nearly) always wrong
        count = run.profile.execution_count(branch.address)
        assert misses(store) / count < 0.1
        assert misses(guard) / count > 0.9


class TestSection6Claims:
    @pytest.fixture(scope="class")
    def analyzers(self):
        runner = SuiteRunner(["scc"])
        run = runner.run("scc", "small")
        return sequence_experiment(
            run.executable, run.profile,
            inputs=list(run.dataset.inputs), analysis=run.analysis)

    def test_predictor_ordering(self, analyzers):
        """Perfect <= Heuristic <= Loop+Rand in miss rate."""
        assert analyzers["Perfect"].miss_rate <= \
            analyzers["Heuristic"].miss_rate + 1e-9
        assert analyzers["Heuristic"].miss_rate <= \
            analyzers["Loop+Rand"].miss_rate + 1e-9

    def test_better_prediction_longer_sequences(self, analyzers):
        assert analyzers["Perfect"].ipbc_average >= \
            analyzers["Heuristic"].ipbc_average
        assert analyzers["Perfect"].dividing_length >= \
            analyzers["Heuristic"].dividing_length

    def test_all_instructions_accounted(self, analyzers):
        for analyzer in analyzers.values():
            assert sum(analyzer.seq_instr_sums) == \
                analyzer.total_instructions

    def test_same_execution_same_branch_count(self, analyzers):
        counts = {a.n_branches for a in analyzers.values()}
        assert len(counts) == 1


class TestSection7Claims:
    def test_heuristic_predictions_dataset_independent(self):
        """The heuristic predictor makes the same predictions no matter
        which dataset runs; only the perfect predictor changes."""
        runner = SuiteRunner(["fields"])
        run_a = runner.run("fields", "small")
        run_b = runner.run("fields", "alt")
        hp = HeuristicPredictor(run_a.analysis)
        preds_a = hp.predictions()
        hp_b = HeuristicPredictor(run_b.analysis)
        preds_b = hp_b.predictions()
        assert preds_a == preds_b

    def test_miss_rates_stable_across_datasets(self):
        """'For many of the benchmarks the miss rates do not vary too
        widely' across datasets."""
        runner = SuiteRunner(["queens"])
        rates = []
        for ds in ("ref", "small", "alt"):
            run = runner.run("queens", ds)
            result = evaluate_predictor(HeuristicPredictor(run.analysis),
                                        run.profile)
            rates.append(result.miss_rate)
        assert max(rates) - min(rates) < 0.15
