"""HTTP front-end tests: routing, status codes, typed error bodies.

Runs the real asyncio server on an ephemeral port with the worker
behavior injected (same module-level exec functions as the engine
tests), and talks to it with the service's own Content-Length-aware
client.  The wire contract under test:

* ``200`` terminal records / health / stats / metrics;
* ``202`` for jobs still in flight;
* ``400`` with a typed error body for malformed requests;
* ``404`` for unknown job ids;
* ``503`` for load-shed (rejected) jobs.
"""

from __future__ import annotations

import asyncio

from repro import telemetry
from repro.service.__main__ import _http
from repro.telemetry.core import Telemetry
from repro.service.engine import JobEngine, ServiceConfig
from repro.service.http import ServiceHTTP
from repro.testing.chaos import chaos_env
from test_service_engine import _exec_ok

_CONFIG = ServiceConfig(workers=1, health_interval_s=0)


def _run(test_coro_fn, config: ServiceConfig = _CONFIG, exec_fn=_exec_ok):
    """Serve on an ephemeral port, run the body, always tear down."""
    async def _inner():
        engine = JobEngine(config, exec_fn=exec_fn)
        await engine.start()
        http = ServiceHTTP(engine)
        await http.start()
        try:
            async def call(method, path, body=None):
                return await _http(http.host, http.port, method, path, body)
            return await test_coro_fn(call)
        finally:
            await http.stop()
            await engine.stop()
    return asyncio.run(_inner())


def test_healthz():
    async def body(call):
        status, payload = await call("GET", "/healthz")
        assert (status, payload) == (200, {"ok": True})
    _run(body)


def test_stats_reports_engine_snapshot():
    async def body(call):
        status, payload = await call("GET", "/stats")
        assert status == 200
        assert payload["jobs"]["submitted"] == 0
        assert payload["breaker"]["state"] == "closed"
        assert payload["workers"] == 1
    _run(body)


def test_submit_wait_roundtrip_returns_terminal_record():
    async def body(call):
        status, record = await call("POST", "/jobs", {
            "kind": "compile", "benchmark": "queens", "wait": True,
            "wait_timeout_s": 30})
        assert status == 200
        assert record["state"] == "done"
        assert record["result"] == {"benchmark": "queens",
                                    "kind": "compile"}
        # the record stays retrievable by id afterwards
        status, fetched = await call("GET", f"/jobs/{record['id']}")
        assert status == 200 and fetched == record
    _run(body)


def test_submit_without_wait_returns_202_then_completes():
    async def body(call):
        status, record = await call("POST", "/jobs", {
            "kind": "compile", "benchmark": "queens"})
        assert status == 202
        assert record["state"] == "queued"
        for _ in range(200):
            status, record = await call("GET", f"/jobs/{record['id']}")
            if record["state"] == "done":
                break
            await asyncio.sleep(0.05)
        assert (status, record["state"]) == (200, "done")
    _run(body)


def test_malformed_json_body_is_400():
    async def body(call):
        status, payload = await call("POST", "/jobs", None)  # empty body
        assert status == 400
        assert payload["error"]
    _run(body)


def test_invalid_request_fields_are_typed_400s():
    async def body(call):
        for bad in ({"kind": "destroy", "benchmark": "queens"},
                    {"kind": "compile"},
                    {"kind": "compile", "benchmark": "queens",
                     "fuel_budget": -5}):
            status, payload = await call("POST", "/jobs", bad)
            assert status == 400
            assert payload["error"]["code"] == "repro-error"
            assert payload["error"]["message"]
    _run(body)


def test_unknown_job_id_is_404():
    async def body(call):
        status, payload = await call("GET", "/jobs/job-999")
        assert status == 404
        assert payload["error"]
    _run(body)


def test_unknown_route_is_404():
    async def body(call):
        status, _ = await call("GET", "/nope")
        assert status == 404
    _run(body)


def test_shed_jobs_come_back_503_with_typed_body():
    async def body(call):
        status, record = await call("POST", "/jobs", {
            "kind": "compile", "benchmark": "queens", "wait": True})
        assert status == 503
        assert record["state"] == "rejected"
        assert record["error"]["code"] == "job-rejected-error"
    with chaos_env(breaker_trip=1):
        _run(body, ServiceConfig(workers=1, health_interval_s=0,
                                 breaker_cooldown_s=3600))


def test_metrics_scrapes_prometheus_text():
    async def body(call):
        await call("POST", "/jobs", {"kind": "compile",
                                     "benchmark": "queens", "wait": True,
                                     "wait_timeout_s": 30})
        status, text = await call("GET", "/metrics")
        assert status == 200
        assert isinstance(text, str)
        assert "repro_service_jobs_submitted_total" in text
    with telemetry.use(Telemetry()):  # the daemon installs an enabled sink
        _run(body)
