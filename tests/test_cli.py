"""Tests for the command-line entry points (in-process, via main(argv))."""

import pytest

from repro.bcc.__main__ import main as bcc_main

PROGRAM = """
int main() {
    int n = read_int();
    print_int(n * 2);
    print_char('\\n');
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.blc"
    path.write_text(PROGRAM)
    return str(path)


class TestBccCli:
    def test_compile_only(self, source_file, capsys):
        assert bcc_main([source_file]) == 0
        err = capsys.readouterr().err
        assert "procedures" in err

    def test_run_with_inputs(self, source_file, capsys):
        assert bcc_main([source_file, "--run", "--inputs", "21"]) == 0
        out = capsys.readouterr().out
        assert out == "42\n"

    def test_emit_asm(self, source_file, capsys):
        assert bcc_main([source_file, "--emit-asm"]) == 0
        out = capsys.readouterr().out
        assert ".ent main" in out
        assert "jal read_int" in out

    def test_dump_ir(self, source_file, capsys):
        assert bcc_main([source_file, "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "func main" in out

    def test_predict_report(self, source_file, capsys):
        assert bcc_main([source_file, "--predict", "--inputs", "5"]) == 0
        captured = capsys.readouterr()
        assert "ball-larus" in captured.out
        assert "perfect" in captured.out

    def test_no_opt_still_correct(self, source_file, capsys):
        assert bcc_main([source_file, "--run", "--no-opt",
                         "--inputs", "21"]) == 0
        assert capsys.readouterr().out == "42\n"

    def test_no_rotate_loops(self, tmp_path, capsys):
        path = tmp_path / "loop.blc"
        path.write_text("int main() { int i; int s = 0; "
                        "for (i = 0; i < 5; i++) { s += i; } "
                        "print_int(s); return 0; }")
        assert bcc_main([str(path), "--run", "--no-rotate-loops"]) == 0
        assert capsys.readouterr().out == "10"

    def test_missing_file(self, capsys):
        assert bcc_main(["/nonexistent/x.blc"]) == 2
        assert "error" in capsys.readouterr().err

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.blc"
        path.write_text("int main() { return undeclared_thing; }")
        assert bcc_main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "undeclared" in err

    def test_float_inputs(self, tmp_path, capsys):
        path = tmp_path / "d.blc"
        path.write_text("int main() { print_double(read_double() + 0.5); "
                        "return 0; }")
        assert bcc_main([str(path), "--run", "--inputs", "1.25"]) == 0
        assert capsys.readouterr().out == "1.75"

    def test_run_fault_is_one_structured_line(self, source_file, capsys):
        # no inputs: the read_int starves; the CLI must exit 1 with a
        # single structured error line, never a traceback
        assert bcc_main([source_file, "--run"]) == 1
        err = capsys.readouterr().err
        assert "error[input-exhausted]" in err
        assert "Traceback" not in err

    def test_verbose_crash_prints_report(self, source_file, capsys):
        assert bcc_main([source_file, "--run", "--verbose-crash"]) == 1
        err = capsys.readouterr().err
        assert "crash at pc=" in err
        assert "call stack" in err

    def test_deadline_watchdog(self, tmp_path, capsys):
        path = tmp_path / "spin.blc"
        path.write_text("int main() { while (1) { } return 0; }")
        assert bcc_main([str(path), "--run", "--deadline", "0.1",
                         "--max-instructions", "1000000000"]) == 1
        err = capsys.readouterr().err
        assert "error[simulation-timeout]" in err
        assert "watchdog" in err


class TestHarnessCli:
    def test_model_only(self, capsys):
        from repro.harness.__main__ import main as harness_main
        assert harness_main(["--tables", "", "--graphs", "12"]) == 0
        out = capsys.readouterr().out
        assert "Graph 12" in out

    def test_benchmark_subset_table(self, capsys):
        from repro.harness.__main__ import main as harness_main
        assert harness_main(["--benchmarks", "queens,fields",
                             "--tables", "2", "--graphs", ""]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "queens" in out and "fields" in out

    def test_degraded_deadline_renders_failed_cells(self, capsys):
        from repro.harness.__main__ import main as harness_main
        # an impossible watchdog deadline fails every run, but in degraded
        # mode the report still comes out with FAILED cells and exit 0
        assert harness_main(["--benchmarks", "queens", "--tables", "2",
                             "--graphs", "", "--degraded",
                             "--deadline", "1e-9"]) == 0
        captured = capsys.readouterr()
        assert "FAILED:timeout" in captured.out
        assert "FAILED:timeout" in captured.err  # footer summary

    def test_strict_deadline_exits_with_structured_error(self, capsys):
        from repro.harness.__main__ import main as harness_main
        assert harness_main(["--benchmarks", "queens", "--tables", "2",
                             "--graphs", "", "--deadline", "1e-9"]) == 1
        err = capsys.readouterr().err
        assert "error[simulation-timeout]" in err
        assert "benchmark=queens" in err
        assert "Traceback" not in err
