"""Determinism suite for the parallel engine and the artifact cache.

The whole point of ``SuiteRunner(parallelism=N, cache_dir=...)`` is that
it is *invisible* in the output: every table and graph must be
byte-identical across

* a serial run (``parallelism=1``, no cache),
* a parallel run (``parallelism=2``, cold cache),
* a cache-warm run (``parallelism=2``, second runner on the same cache),

including degraded-mode FAILED cells under injected chaos faults.  The
tier-1 tests here cover the 3-benchmark MINI_SUITE; the tier-2 tests
(run with ``pytest -m tier2``) repeat the comparison over the full
22-benchmark suite, all seven tables and both graph families.
"""

from __future__ import annotations

import pytest

from repro.errors import WorkerCrashError, WorkerError
from repro.harness import (
    SEQUENCE_BENCHMARKS, RunStatus, SuiteRunner,
    graph1, graph13, graphs2_3, graphs4_11,
    table1, table2, table3, table4, table5, table6, table7,
)
from repro.harness.parallel import CHAOS_WORKER_CRASH_ENV
from repro.testing.chaos import sabotage

from conftest import MINI_SUITE


def mini_report(runner: SuiteRunner) -> str:
    """A representative slice of the report: three tables + Graph 1."""
    return "\n".join([
        table1(runner).render(),
        table2(runner).render(),
        table5(runner).render(),
        graph1(runner).describe(),
    ])


def full_report(runner: SuiteRunner) -> str:
    """Every table and graph family the CLI can emit."""
    parts = [t(runner).render() for t in
             (table1, table2, table3, table4, table5, table6, table7)]
    parts.append(graph1(runner).describe())
    parts.append(graphs2_3(runner).describe())
    parts.extend(sg.describe() for sg in
                 graphs4_11(runner, benchmarks=SEQUENCE_BENCHMARKS))
    parts.append(graph13(runner).describe())
    return "\n".join(parts)


# -- tier 1: mini-suite determinism -------------------------------------------


class TestMiniSuiteDeterminism:

    @pytest.fixture(scope="class")
    def serial_report(self):
        return mini_report(SuiteRunner(MINI_SUITE))

    def test_parallel_is_byte_identical(self, serial_report):
        runner = SuiteRunner(MINI_SUITE, parallelism=2)
        assert mini_report(runner) == serial_report

    def test_cold_then_warm_cache_is_byte_identical(self, serial_report,
                                                    tmp_path):
        cache_dir = tmp_path / "cache"
        cold = SuiteRunner(MINI_SUITE, parallelism=2, cache_dir=cache_dir)
        assert mini_report(cold) == serial_report
        assert cold.cache.stores > 0, "cold run must populate the cache"

        warm = SuiteRunner(MINI_SUITE, parallelism=2, cache_dir=cache_dir)
        assert mini_report(warm) == serial_report
        assert warm.cache.hits > 0, "warm run must hit the cache"
        assert warm.cache.misses == 0, (
            "every artifact of an identical rerun must be served from "
            f"cache (stats: {warm.cache.stats()})")

    def test_serial_warm_cache_matches_parallel_warm(self, serial_report,
                                                     tmp_path):
        cache_dir = tmp_path / "cache"
        mini_report(SuiteRunner(MINI_SUITE, parallelism=2,
                                cache_dir=cache_dir))
        warm_serial = SuiteRunner(MINI_SUITE, cache_dir=cache_dir)
        assert mini_report(warm_serial) == serial_report
        assert warm_serial.cache.hits > 0

    def test_all_outcomes_order_and_instr_counts_match(self):
        serial = SuiteRunner(MINI_SUITE).all_outcomes("ref")
        parallel = SuiteRunner(MINI_SUITE, parallelism=2).all_outcomes("ref")
        assert [(o.benchmark, o.dataset) for o in parallel] \
            == [(o.benchmark, o.dataset) for o in serial]
        for a, b in zip(parallel, serial):
            assert a.ok and b.ok
            assert a.run.instr_count == b.run.instr_count
            assert a.run.output == b.run.output
            assert list(a.run.profile.items()) == list(b.run.profile.items())


# -- tier 1: degraded-mode chaos determinism ----------------------------------


class TestDegradedChaosDeterminism:

    #: faults whose FAILED cells must render identically serial vs parallel
    CHAOS_FAULTS = ("compile", "opcode", "fuel", "inputs", "skip")

    @pytest.mark.parametrize("fault", CHAOS_FAULTS)
    def test_failed_cells_identical_serial_vs_parallel(self, fault):
        reports = []
        for parallelism in (1, 2):
            runner = SuiteRunner(MINI_SUITE, strict=False,
                                 parallelism=parallelism)
            sabotage(runner, "fields", fault)
            reports.append(mini_report(runner))
        assert reports[0] == reports[1]
        assert "FAILED" in reports[0] or fault == "skip"

    def test_poisoned_artifact_never_touches_the_cache(self, tmp_path):
        """A sabotaged executable must not be stored under (or served
        from) the honest source-derived key."""
        cache_dir = tmp_path / "cache"
        poisoned = SuiteRunner(MINI_SUITE, strict=False, parallelism=2,
                               cache_dir=cache_dir)
        sabotage(poisoned, "queens", "opcode")
        poisoned_report = mini_report(poisoned)
        assert "FAILED" in poisoned_report

        healthy = SuiteRunner(MINI_SUITE, strict=False, parallelism=2,
                              cache_dir=cache_dir)
        healthy_report = mini_report(healthy)
        assert "FAILED" not in healthy_report
        assert healthy_report == mini_report(SuiteRunner(MINI_SUITE,
                                                         strict=False))


# -- tier 1: worker-crash taxonomy --------------------------------------------


class TestWorkerCrash:

    def test_degraded_renders_worker_failed_cell(self, monkeypatch):
        monkeypatch.setenv(CHAOS_WORKER_CRASH_ENV, "fields")
        runner = SuiteRunner(MINI_SUITE, strict=False, parallelism=2)
        outcomes = runner.all_outcomes("ref")
        by_name = {o.benchmark: o for o in outcomes}
        assert by_name["fields"].status is RunStatus.WORKER_FAILED
        assert isinstance(by_name["fields"].error, WorkerCrashError)
        assert by_name["fields"].error.phase == "parallel"
        assert "FAILED:worker-failed" in by_name["fields"].failure_label()
        # the other shards are unaffected
        assert by_name["queens"].ok and by_name["gauss"].ok

    def test_strict_raises_typed_worker_error(self, monkeypatch):
        monkeypatch.setenv(CHAOS_WORKER_CRASH_ENV, "queens")
        runner = SuiteRunner(MINI_SUITE, strict=True, parallelism=2)
        with pytest.raises(WorkerError):
            runner.all_outcomes("ref")

    def test_worker_crash_is_never_negative_cached_on_disk(self, tmp_path,
                                                           monkeypatch):
        """A crashed worker is a machine fault, not a property of the
        inputs: a later run with the same cache must re-execute and
        succeed."""
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(CHAOS_WORKER_CRASH_ENV, "fields")
        crashed = SuiteRunner(MINI_SUITE, strict=False, parallelism=2,
                              cache_dir=cache_dir)
        outcomes = {o.benchmark: o for o in crashed.all_outcomes("ref")}
        assert outcomes["fields"].status is RunStatus.WORKER_FAILED

        monkeypatch.delenv(CHAOS_WORKER_CRASH_ENV)
        recovered = SuiteRunner(MINI_SUITE, strict=False, parallelism=2,
                                cache_dir=cache_dir)
        outcomes = {o.benchmark: o for o in recovered.all_outcomes("ref")}
        assert outcomes["fields"].ok


# -- tier 2: full-suite determinism -------------------------------------------


@pytest.mark.tier2
class TestFullSuiteDeterminism:

    @pytest.fixture(scope="class")
    def serial_full_report(self):
        return full_report(SuiteRunner())

    def test_parallel4_is_byte_identical(self, serial_full_report):
        assert full_report(SuiteRunner(parallelism=4)) == serial_full_report

    def test_cache_warm_is_byte_identical(self, serial_full_report,
                                          tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("full-cache")
        cold = SuiteRunner(parallelism=4, cache_dir=cache_dir)
        assert full_report(cold) == serial_full_report
        warm = SuiteRunner(parallelism=4, cache_dir=cache_dir)
        assert full_report(warm) == serial_full_report
        assert warm.cache.misses == 0
        assert warm.cache.hits > 0

    def test_degraded_chaos_full_suite(self):
        reports = []
        for parallelism in (1, 4):
            runner = SuiteRunner(strict=False, parallelism=parallelism)
            sabotage(runner, "fields", "fuel")
            sabotage(runner, "hanoi", "compile")
            reports.append(full_report(runner))
        assert reports[0] == reports[1]
        assert "FAILED" in reports[0]
