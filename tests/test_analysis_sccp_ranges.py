"""SCCP and interval range analysis over real compiled IR.

These are the *targeted* tests behind the suite-level no-op pin in
``test_golden_differential.py``: the benchmark suite happens to contain
no cross-block integer constant reaching a conditional branch, so the
``sccp-fold`` pass's actual capability — folding branches whose operands
are only constant *across* blocks, where ``local-propagate`` cannot see
them — is exercised here on purpose-built programs, together with the
range analysis facts (loop-counter bounds via widening + narrowing and
branch refinement through the materialized ``slt`` flag) that feed the
branch evidence.
"""

from __future__ import annotations

import pytest

from repro.analysis.ranges import evaluate_cbr_ranges, ranges
from repro.analysis.sccp import evaluate_cbr, sccp, sccp_fold
from repro.analysis.dataflow import UNREACHABLE, Unreachable
from repro.bcc.driver import compile_to_asm, compile_to_ir
from repro.bcc.ir import CBr, Imm, Jump

from conftest import run_output

O1_NO_FOLD = "local-propagate,simplify-cfg,dce,copy-coalesce"

#: ``x`` is constant 1 at the second ``if``, but only *across* blocks —
#: the test sits in the merge block after ``if (y > 0)``, so no single
#: block ever contains both the definition and the branch.
CROSS_BLOCK = """
int main() {
    int x;
    int y;
    x = 1;
    y = read_int();
    if (y > 0) { print_int(y); }
    if (x) { print_int(10); } else { print_int(20); }
    return 0;
}
"""


def _main_of(program):
    return next(f for f in program.functions if f.name == "main")


def _cbrs(func):
    return [(block, block.terminator) for block in func.blocks
            if block.instructions and isinstance(block.terminator, CBr)]


# -- SCCP -------------------------------------------------------------------


def test_sccp_decides_a_cross_block_constant_branch():
    program = compile_to_ir(CROSS_BLOCK, optimize=False)
    main = _main_of(program)
    result = sccp(main)
    decisions = []
    for block, term in _cbrs(main):
        state = result.block_out[block.label]
        if isinstance(state, Unreachable):
            continue
        decisions.append(evaluate_cbr(state, term))
    # exactly one branch (the `if (x)`) is decided, and it is taken
    assert decisions.count(True) == 1
    assert decisions.count(None) == len(decisions) - 1


def test_sccp_fold_rewrites_the_decided_branch():
    program = compile_to_ir(CROSS_BLOCK, optimize=False)
    main = _main_of(program)
    before = len(_cbrs(main))
    assert sccp_fold(main, sccp(main)) is True
    after = len(_cbrs(main))
    assert after == before - 1
    # the replacement is a plain jump to the chosen side
    jumps = [b.terminator for b in main.blocks
             if b.instructions and isinstance(b.terminator, Jump)]
    assert jumps, "folded branch should have become a Jump"


def test_sccp_fold_pass_changes_codegen_only_via_cross_block_facts():
    """On the cross-block program the default -O1 pipeline (with
    ``sccp-fold``) emits different code than the pipeline without it —
    the pass does real work exactly where ``local-propagate`` cannot."""
    with_fold = compile_to_asm(CROSS_BLOCK, optimize=True)
    without = compile_to_asm(CROSS_BLOCK, optimize=True, passes=O1_NO_FOLD)
    assert with_fold != without


def test_sccp_fold_preserves_program_behavior():
    for inputs in ([5], [0], [-3]):
        folded = run_output(CROSS_BLOCK, inputs=list(inputs))
        plain_exe_output = run_output(CROSS_BLOCK, inputs=list(inputs),
                                      optimize=False)
        assert folded == plain_exe_output


def test_sccp_equality_edge_refinement_binds_the_register():
    source = """
    int main() {
        int y;
        y = read_int();
        if (y == 7) { print_int(y + 1); }
        return 0;
    }
    """
    program = compile_to_ir(source, optimize=False)
    main = _main_of(program)
    result = sccp(main)
    eq_branches = [(b, t) for b, t in _cbrs(main) if t.op == "eq"]
    assert eq_branches, "expected an eq branch against the constant"
    block, term = eq_branches[0]
    then_in = result.block_in[term.true_label]
    assert not isinstance(then_in, Unreachable)
    # along the true edge of `y == 7`, y *is* 7
    assert then_in.get(term.a) == 7


def test_sccp_prunes_the_statically_dead_edge():
    source = """
    int main() {
        int x;
        x = 1;
        if (x) { print_int(10); } else { print_int(20); }
        return 0;
    }
    """
    program = compile_to_ir(source, optimize=False)
    main = _main_of(program)
    result = sccp(main)
    block, term = next((b, t) for b, t in _cbrs(main))
    # one successor is proven unreachable, the other stays live
    live = result.reachable(term.true_label)
    dead = result.reachable(term.false_label)
    assert live != dead
    assert isinstance(
        result.block_in[term.false_label if live else term.true_label],
        Unreachable)


def test_sccp_never_treats_an_undefined_value_as_constant():
    """A use-before-init local must not manufacture a fold."""
    source = """
    int main() {
        int x;
        if (x) { print_int(1); } else { print_int(2); }
        x = 0;
        return x;
    }
    """
    program = compile_to_ir(source, optimize=False)
    main = _main_of(program)
    result = sccp(main)
    for block, term in _cbrs(main):
        state = result.block_out[block.label]
        if isinstance(state, Unreachable):
            continue
        assert evaluate_cbr(state, term) is None


# -- ranges -----------------------------------------------------------------

LOOP = """
int main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 20; i = i + 1) {
        if (i == 100) { total = total + 1000; }
        total = total + read_int();
    }
    print_int(total);
    return 0;
}
"""


def _range_decisions(func):
    result = ranges(func)
    decided = []
    for block, term in _cbrs(func):
        state = result.block_out[block.label]
        if isinstance(state, Unreachable):
            continue
        outcome = evaluate_cbr_ranges(state, term)
        if outcome is not None:
            decided.append((block, term, outcome))
    return result, decided


def test_ranges_decides_the_impossible_loop_counter_branch():
    """``i == 100`` inside ``for (i = 0; i < 20; ...)`` is never true.

    This needs the whole machinery at once: widening (the counter's
    ascending chain), narrowing (to pull the widened bound back down),
    and flag see-through (the loop branch tests the ``slt`` flag, not
    ``i`` — refinement must reach through to the counter).
    """
    program = compile_to_ir(LOOP, optimize=False)
    main = _main_of(program)
    result, decided = _range_decisions(main)
    # two facts: the loop entry guard (0 < 20, always taken) and the
    # impossible equality (never taken)
    outcomes = {term.op: outcome for _, term, outcome in decided}
    assert outcomes.pop("eq") is False
    assert all(v is True for v in outcomes.values())
    assert len(decided) == 2


def test_ranges_bounds_the_loop_counter():
    program = compile_to_ir(LOOP, optimize=False)
    main = _main_of(program)
    result, decided = _range_decisions(main)
    block, term, _ = next(d for d in decided if d[1].op == "eq")
    env = result.block_out[block.label]
    # the tested register (the counter) carries the narrowed *upper*
    # bound — that alone decides `i == 100`.  (The lower bound stays
    # widened: narrowing re-applies only the `i < 20` back-edge
    # refinement, which constrains the top, not the bottom.)
    assert env[term.a].hi <= 19


def test_sccp_alone_cannot_decide_the_loop_branch():
    """The ``i == 100`` fact is beyond constant propagation (the counter
    is never a single constant at the compare) — pins that the ``range``
    evidence source adds real power over ``sccp``."""
    program = compile_to_ir(LOOP, optimize=False)
    main = _main_of(program)
    result = sccp(main)
    eq = [(b, t) for b, t in _cbrs(main) if t.op == "eq"]
    assert len(eq) == 1
    block, term = eq[0]
    state = result.block_out[block.label]
    assert not isinstance(state, Unreachable)
    assert evaluate_cbr(state, term) is None


def test_flag_see_through_refines_nested_guards():
    """``n < 10`` taken implies ``n > 50`` is false — the outer branch
    tests a materialized ``slt`` flag, so deciding the inner branch
    requires decoding the compare behind the flag."""
    source = """
    int main() {
        int n;
        n = read_int();
        if (n < 10) {
            if (n > 50) { print_int(1); }
            print_int(n);
        }
        return 0;
    }
    """
    program = compile_to_ir(source, optimize=False)
    main = _main_of(program)
    _, decided = _range_decisions(main)
    assert len(decided) == 1
    _, _, outcome = decided[0]
    assert outcome is False


def test_ranges_stays_silent_on_genuinely_unknown_branches():
    source = """
    int main() {
        int n;
        n = read_int();
        if (n > 0) { print_int(n); } else { print_int(0 - n); }
        return 0;
    }
    """
    program = compile_to_ir(source, optimize=False)
    main = _main_of(program)
    _, decided = _range_decisions(main)
    assert decided == []


def test_ranges_is_wraparound_sound():
    """``read_int() + 1 > read_int()`` is NOT always true on a wrapping
    machine (INT32_MAX + 1 wraps negative) — the analysis must refuse."""
    source = """
    int main() {
        int a;
        a = read_int();
        if (a + 1 > a) { print_int(1); } else { print_int(2); }
        return 0;
    }
    """
    program = compile_to_ir(source, optimize=False)
    main = _main_of(program)
    _, decided = _range_decisions(main)
    assert decided == []


# -- analyses through the manager ------------------------------------------


def test_analyses_are_registered_and_cached():
    from repro.bcc.opt import IR_ANALYSES

    program = compile_to_ir(LOOP, optimize=False)
    main = _main_of(program)
    am = IR_ANALYSES.manager(main)
    assert am.get("sccp") is am.get("sccp")
    assert am.get("ranges") is am.get("ranges")
    rd = am.get("reaching-defs")
    assert rd is am.get("reaching-defs")


def test_reaching_definitions_params_and_kills():
    from repro.analysis.reaching import ENTRY_SITE, reaching_definitions

    source = """
    int helper(int n) {
        if (n > 0) { n = n - 1; }
        return n;
    }
    int main() { print_int(helper(read_int())); return 0; }
    """
    program = compile_to_ir(source, optimize=False)
    helper = next(f for f in program.functions if f.name == "helper")
    rd = reaching_definitions(helper)
    param_vreg = helper.params[0][1]
    entry_label = helper.blocks[0].label
    definers = rd.definers(entry_label, param_vreg)
    assert any(site[1] == ENTRY_SITE for site in definers)
    # at the join after the if, both the param and the reassignment reach
    merged = [label for label in (b.label for b in helper.blocks)
              if len(rd.definers(label, param_vreg)) >= 2]
    assert merged, "expected a block reached by two definitions of n"
