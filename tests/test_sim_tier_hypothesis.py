"""Property-based Tier-0/Tier-1 differential on random programs (PR 8).

Reuses the random-program generator from the compiler differential
(:mod:`test_differential_compiler`) but wraps every generated body in an
outer repetition loop hot enough to cross the trace cache's compile
threshold, so the superblock machinery — formation, fold compression,
side exits, event replay — is exercised on program shapes nobody
hand-picked.  Both tiers must agree on *everything* observable:
architectural state, memory image, output, edge profiles, branch
traces, and the independently-computed reference result.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bcc import compile_and_link
from repro.sim import Machine
from repro.sim.profile import EdgeProfile
from repro.sim.trace import BranchTrace
from repro.sim.traces import HOT_THRESHOLD

from test_differential_compiler import _VARS, statements

#: outer trip count: comfortably past the compile threshold so random
#: loop bodies become superblocks, not just interpreter fodder
REPS = HOT_THRESHOLD + 16


@st.composite
def hot_programs(draw):
    """Random straight-line/branchy/loopy bodies repeated REPS times.

    Returns (source, expected final variable values) — the expectation
    comes from the same independent reference closures the compiler
    differential trusts, applied REPS times.
    """
    inits = {var: draw(st.integers(-100, 100)) for var in _VARS}
    stmts = draw(st.lists(statements(), min_size=1, max_size=4))
    decls = " ".join(f"int {v} = {inits[v]};" for v in _VARS)
    counters = " ".join(f"int it{i};" for i in range(4))
    body = "\n        ".join(t for t, _ in stmts)
    prints = " ".join(f"print_int({v}); print_char(' ');" for v in _VARS)
    source = f"""
int main() {{
    {decls}
    {counters}
    int rep;
    for (rep = 0; rep < {REPS}; rep++) {{
        {body}
    }}
    {prints}
    return 0;
}}
"""
    state = dict(inits)
    for _ in range(REPS):
        for _, fn in stmts:
            fn(state)
    expected = [state[v] for v in _VARS]
    return source, expected


def _instrumented_run(executable, tier):
    profile, trace = EdgeProfile(), BranchTrace()
    machine = Machine(executable, observers=[profile, trace], engine=tier,
                      max_instructions=20_000_000)
    status = machine.run()
    return status, machine, profile, trace


class TestTierProperty:
    @settings(max_examples=40, deadline=None)
    @given(hot_programs())
    def test_tiers_agree_on_random_hot_programs(self, program):
        source, expected = program
        executable = compile_and_link(source)
        s0, m0, p0, t0 = _instrumented_run(executable, "tier0")
        s1, m1, p1, t1 = _instrumented_run(executable, "tier1")
        assert s1.exit_code == s0.exit_code, source
        assert s1.instr_count == s0.instr_count, source
        assert s1.dynamic_branches == s0.dynamic_branches, source
        assert s1.output == s0.output, source
        assert m1.regs == m0.regs, source
        assert m1.fregs == m0.fregs, source
        assert m1.memory._pages == m0.memory._pages, source
        assert list(p1.items()) == list(p0.items()), source
        assert t1.events == t0.events, source
        # ... and both match the independent reference semantics
        assert [int(x) for x in s1.output.split()] == expected, source

    @settings(max_examples=15, deadline=None)
    @given(hot_programs())
    def test_tier1_fuel_faults_identically(self, program):
        """Cutting the fuel budget mid-superblock must fault at exactly
        the same instruction on both tiers (the trace cache refuses to
        enter a block it cannot finish, then single-steps to the limit).
        """
        import dataclasses

        import pytest

        from repro.errors import SimulationLimitExceeded

        source, _ = program
        executable = compile_and_link(source)
        full = Machine(executable, max_instructions=20_000_000).run()
        budget = full.instr_count // 2
        if budget < 10:
            return  # degenerate program: nothing to cut
        reports = {}
        for tier in ("tier0", "tier1"):
            machine = Machine(executable, engine=tier,
                              max_instructions=budget)
            with pytest.raises(SimulationLimitExceeded) as excinfo:
                machine.run()
            fields = dataclasses.asdict(excinfo.value.crash_report)
            fields.pop("flight", None)
            reports[tier] = fields
        assert reports["tier0"] == reports["tier1"], source
