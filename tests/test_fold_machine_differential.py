"""Differential property test: constant folding == machine execution.

``repro.bcc.opt._fold_binop`` (used by ``local-propagate``, SCCP, and —
through :mod:`repro.analysis.lattice` — the interval transfer functions)
claims to evaluate integer BinOps with *exact* MIPS semantics.  This test
checks that claim against the simulator itself: for every BLC-reachable
integer operator, a tiny unoptimized program ``print_int(read_int() OP
read_int())`` is compiled once, then hypothesis-drawn operand pairs are
fed through both the fold and the machine — the printed value must equal
the folded constant bit-for-bit, including division truncation toward
zero, negative remainders, two's-complement wrap-around, and the
hardware's shift-amount masking (``sllv``/``srav`` use the low 5 bits).

``sru`` and ``sltu`` have no BLC surface syntax, so they are checked
against oracles transcribed from ``repro.sim.machine``'s ``srlv`` /
``sltu`` arms (the machine uses ``_u32`` views for both).

Division/remainder by zero: the fold returns ``None`` (no fold) and the
machine raises — both sides must refuse.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bcc.driver import compile_and_link
from repro.bcc.opt import _fold_binop
from repro.errors import ReproError
from repro.sim import Machine

INT32_MIN, INT32_MAX = -(1 << 31), (1 << 31) - 1

#: IR op -> BLC operator reaching it (see ``irgen`` op table)
_BLC_OPS = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "rem": "%",
    "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>",
}

_executables: dict[str, object] = {}


def _binop_executable(op: str):
    """One compiled ``print_int(read_int() OP read_int())`` per operator.

    Compiled with ``optimize=False``: the operands come from syscalls so
    nothing could fold anyway, but -O0 makes the point explicit — the
    machine, not the compiler, evaluates the operator.
    """
    exe = _executables.get(op)
    if exe is None:
        source = f"""
        int main() {{
            int a;
            int b;
            a = read_int();
            b = read_int();
            print_int(a {_BLC_OPS[op]} b);
            return 0;
        }}
        """
        exe = compile_and_link(source, optimize=False)
        _executables[op] = exe
    return exe


def _machine_eval(op: str, a: int, b: int) -> int | None:
    """Run ``a OP b`` on the simulator; ``None`` if the machine faulted."""
    machine = Machine(_binop_executable(op), inputs=[a, b],
                      max_instructions=100_000)
    try:
        status = machine.run()
    except ReproError:
        return None
    return int(status.output.strip())


operands = st.integers(INT32_MIN, INT32_MAX)
# weight interesting boundary values in alongside the uniform draw
boundary = st.sampled_from([0, 1, -1, 2, -2, 31, 32, 33, INT32_MIN,
                            INT32_MAX, INT32_MIN + 1, INT32_MAX - 1])
values = st.one_of(operands, boundary)


@pytest.mark.parametrize("op", sorted(_BLC_OPS))
@given(a=values, b=values)
@settings(max_examples=40, deadline=None)
def test_fold_matches_machine(op, a, b):
    folded = _fold_binop(op, a, b)
    executed = _machine_eval(op, a, b)
    if op in ("div", "rem") and b == 0:
        assert folded is None, f"{op} by zero must not fold"
        assert executed is None, f"{op} by zero must fault on the machine"
        return
    assert folded is not None, f"{op}({a}, {b}) unexpectedly refused to fold"
    assert executed is not None, f"machine faulted on {op}({a}, {b})"
    assert folded == executed, (
        f"{op}({a}, {b}): compiler folds to {folded}, "
        f"machine computes {executed}")
    assert INT32_MIN <= folded <= INT32_MAX


def _u32(v: int) -> int:
    return v & 0xFFFF_FFFF


def _s32(v: int) -> int:
    v &= 0xFFFF_FFFF
    return v - (1 << 32) if v & (1 << 31) else v


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_fold_sru_matches_srlv_semantics(a, b):
    """``sru`` == the simulator's ``srlv``: logical shift of the u32 view
    by the low five bits of the amount."""
    assert _fold_binop("sru", a, b) == _s32(_u32(a) >> (_u32(b) & 31))


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_fold_sltu_matches_machine_semantics(a, b):
    """``sltu`` == the simulator's unsigned compare of the u32 views."""
    assert _fold_binop("sltu", a, b) == (1 if _u32(a) < _u32(b) else 0)


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_fold_slt_is_signed(a, b):
    assert _fold_binop("slt", a, b) == (1 if a < b else 0)
