"""Tests for register naming and parsing."""

import pytest

from repro.isa.registers import (
    FP_ARG_REGS, GP, NUM_INT_REGS, RA, REG_NAMES, SP, T_REGS, ZERO,
    fp_reg_name, is_fp_register_name, parse_fp_register, parse_register,
    reg_name,
)


class TestRegNames:
    def test_zero_is_register_0(self):
        assert reg_name(ZERO) == "$zero"

    def test_sp_gp_ra(self):
        assert reg_name(SP) == "$sp"
        assert reg_name(GP) == "$gp"
        assert reg_name(RA) == "$ra"

    def test_all_names_unique(self):
        assert len(set(REG_NAMES)) == NUM_INT_REGS

    def test_t_regs_are_t_named(self):
        for t in T_REGS:
            assert reg_name(t).startswith("$t")

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            reg_name(32)
        with pytest.raises(ValueError):
            reg_name(-1)


class TestParseRegister:
    @pytest.mark.parametrize("text,expected", [
        ("$zero", 0), ("$t0", 8), ("$s7", 23), ("$ra", 31),
        ("$8", 8), ("t0", 8), ("sp", 29), ("$v0", 2), ("$a3", 7),
    ])
    def test_accepted_spellings(self, text, expected):
        assert parse_register(text) == expected

    @pytest.mark.parametrize("bad", ["$t10", "$f0", "bogus", "", "$32"])
    def test_rejected_spellings(self, bad):
        with pytest.raises(ValueError):
            parse_register(bad)

    def test_roundtrip_all(self):
        for num in range(NUM_INT_REGS):
            assert parse_register(reg_name(num)) == num


class TestFpRegisters:
    def test_fp_names(self):
        assert fp_reg_name(0) == "$f0"
        assert fp_reg_name(31) == "$f31"

    def test_fp_name_out_of_range(self):
        with pytest.raises(ValueError):
            fp_reg_name(32)

    @pytest.mark.parametrize("text,expected", [
        ("$f0", 0), ("$f12", 12), ("f30", 30),
    ])
    def test_parse_fp(self, text, expected):
        assert parse_fp_register(text) == expected

    @pytest.mark.parametrize("bad", ["$t0", "$f32", "f", "$fx"])
    def test_parse_fp_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fp_register(bad)

    def test_is_fp_register_name(self):
        assert is_fp_register_name("$f4")
        assert is_fp_register_name("f12")
        assert not is_fp_register_name("$t4")
        assert not is_fp_register_name("$f")

    def test_fp_arg_regs_follow_o32(self):
        assert FP_ARG_REGS == (12, 14)
