"""Laziness regression tests for the CFG analyses (satellite of the pass
framework refactor).

The classifier used to compute dominator and postdominator trees eagerly
for *every* procedure.  Now they are registered, lazily computed analyses
on a per-procedure :class:`~repro.passes.manager.AnalysisManager`:

* branch-free procedures never pay for a dominator or postdominator tree;
* the postdominator tree is only built the first time a property-based
  heuristic asks for it, then memoized;
* ``analysis.<name>.compute`` / ``.reuse`` telemetry counters make all of
  this observable rather than assumed.
"""

import pytest

from repro import telemetry
from repro.bcc.driver import compile_and_link
from repro.cfg import analysis as cfg_analysis
from repro.cfg.builder import build_cfg
from repro.core.classify import ProcedureAnalysis, classify_branches
from repro.core.heuristics import guard_heuristic
from repro.telemetry import Telemetry

# main has branches; the helpers are straight-line (branch-free)
SOURCE = """
int lin1(int x) { return x * 3 + 1; }
int lin2(int x) { return x - 7; }
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 5; i = i + 1) {
    if (s > 10) { s = lin1(s); } else { s = lin2(s) + i; }
  }
  print_int(s);
  return 0;
}
"""


@pytest.fixture(scope="module")
def executable():
    return compile_and_link(SOURCE)


@pytest.fixture
def sink():
    s = Telemetry()
    with telemetry.use(s):
        yield s


def _counting(monkeypatch, name):
    """Monkeypatch ``repro.cfg.analysis.<name>`` to record the procedures
    it is invoked for."""
    seen = []
    original = getattr(cfg_analysis, name)

    def wrapper(cfg, *args, **kwargs):
        seen.append(cfg.procedure.name)
        return original(cfg, *args, **kwargs)

    monkeypatch.setattr(cfg_analysis, name, wrapper)
    return seen


class TestBranchFreeProceduresPayNothing:
    def test_no_dominators_for_branch_free_procedures(self, executable,
                                                      monkeypatch):
        dom_calls = _counting(monkeypatch, "compute_dominators")
        classify_branches(executable)
        assert "lin1" not in dom_calls
        assert "lin2" not in dom_calls
        # ... but branchy procedures did need loop facts (which pull dom)
        assert "main" in dom_calls

    def test_no_postdominators_during_classification(self, executable,
                                                     monkeypatch):
        post_calls = _counting(monkeypatch, "compute_postdominators")
        classify_branches(executable)
        # classification needs natural loops (dom), never the postdom tree
        assert post_calls == []

    def test_no_loop_analysis_for_branch_free_procedures(self, executable,
                                                         monkeypatch):
        loop_calls = _counting(monkeypatch, "analyze_loops")
        classify_branches(executable)
        assert "lin1" not in loop_calls
        assert "lin2" not in loop_calls


class TestPostdomLazyUntilHeuristicQuery:
    def test_postdom_computed_on_first_heuristic_use(self, executable,
                                                     monkeypatch):
        post_calls = _counting(monkeypatch, "compute_postdominators")
        analysis = classify_branches(executable)
        assert post_calls == []
        branch = analysis.non_loop_branches()[0]
        pa = analysis.analysis_of(branch)
        guard_heuristic(branch, pa)      # property heuristic pulls postdom
        assert post_calls == [branch.procedure.name]

    def test_postdom_memoized_across_heuristics(self, executable,
                                                monkeypatch, sink):
        post_calls = _counting(monkeypatch, "compute_postdominators")
        analysis = classify_branches(executable)
        for branch in analysis.non_loop_branches():
            pa = analysis.analysis_of(branch)
            guard_heuristic(branch, pa)
            guard_heuristic(branch, pa)
        # one computation per procedure that was actually queried
        assert len(post_calls) == len(set(post_calls))
        counters = sink.counters()
        assert counters["analysis.postdomtree.compute"] == len(post_calls)
        assert counters["analysis.postdomtree.reuse"] >= len(post_calls)

    def test_dom_shared_between_loops_and_heuristics(self, executable,
                                                     monkeypatch):
        """natural-loops pulls domtree through the same cache the Guard
        heuristic later reads — one dominator computation per procedure."""
        dom_calls = _counting(monkeypatch, "compute_dominators")
        analysis = classify_branches(executable)
        for branch in analysis.branches.values():
            pa = analysis.analysis_of(branch)
            pa.dom          # explicit query on top of classification
        assert len(dom_calls) == len(set(dom_calls))


class TestProcedureAnalysisBackCompat:
    def test_eager_seed_shape_still_works(self, executable):
        """The historical eager constructor (precomputed results passed
        in) seeds the manager's cache — no recomputation."""
        from repro.cfg.dominators import (
            compute_dominators, compute_postdominators,
        )
        from repro.cfg.loops import analyze_loops
        proc = next(p for p in executable.procedures if p.name == "main")
        cfg = build_cfg(proc)
        dom = compute_dominators(cfg)
        postdom = compute_postdominators(cfg)
        loops = analyze_loops(cfg, dom)
        pa = ProcedureAnalysis(cfg, dom=dom, postdom=postdom, loops=loops)
        assert pa.dom is dom
        assert pa.postdom is postdom
        assert pa.loops is loops

    def test_lazy_properties_compute_on_demand(self, executable, sink):
        proc = next(p for p in executable.procedures if p.name == "main")
        pa = ProcedureAnalysis(build_cfg(proc))
        assert not pa.am.is_cached("domtree")
        pa.loops                         # pulls domtree beneath it
        assert pa.am.is_cached("domtree")
        assert pa.am.is_cached("natural-loops")
        assert not pa.am.is_cached("postdomtree")
        counters = sink.counters()
        assert counters["analysis.domtree.compute"] == 1
        assert counters["analysis.natural-loops.compute"] == 1
        assert "analysis.postdomtree.compute" not in counters

    def test_registry_names(self):
        assert set(cfg_analysis.CFG_ANALYSES.names()) == {
            "domtree", "postdomtree", "natural-loops"}
