"""Tests for the experiment harness over a small benchmark subset."""

import pytest

from conftest import MINI_SUITE
from repro.harness import (
    SuiteRunner, TextTable, cd_cell, graph1, graph12, graph13, graphs2_3,
    graphs4_11, mean_std, pct, table1, table2, table3, table4, table5,
    table6, table7,
)
from repro.harness.tables import heuristic_table, order_data_for


class TestReportHelpers:
    def test_pct(self):
        assert pct(0.256) == "26"
        assert pct(0.0) == "0"

    def test_cd_cell(self):
        assert cd_cell(0.26, 0.10) == "26/10"

    def test_mean_std(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx((2 / 3) ** 0.5)
        assert mean_std([]) == (0.0, 0.0)

    def test_text_table(self):
        t = TextTable(["A", "B"], title="T")
        t.add_row("x", 1)
        t.add_separator()
        t.add_row("yy", 22)
        rendered = t.render()
        assert "T" in rendered
        assert rendered.count("---") >= 2
        with pytest.raises(ValueError):
            t.add_row("only one")


class TestRunner:
    def test_memoizes_runs(self, mini_runner):
        a = mini_runner.run("queens", "small")
        b = mini_runner.run("queens", "small")
        assert a is b

    def test_memoizes_compiles(self, mini_runner):
        x1, _ = mini_runner.compiled("queens")
        x2, _ = mini_runner.compiled("queens")
        assert x1 is x2

    def test_run_fields(self, queens_run):
        assert queens_run.dynamic_total > 0
        assert queens_run.loop_addresses
        assert queens_run.non_loop_addresses
        assert 0.0 <= queens_run.non_loop_fraction <= 1.0
        assert set(queens_run.executed_non_loop) <= \
            set(queens_run.non_loop_addresses)

    def test_all_runs_order(self, mini_runner):
        runs = mini_runner.all_runs("small")
        assert [r.name for r in runs] == MINI_SUITE


@pytest.fixture(scope="module")
def small_runner():
    """A runner whose default 'ref' accesses are replaced by tiny datasets:
    use the 'small' dataset name explicitly through run()."""
    runner = SuiteRunner(MINI_SUITE)
    # pre-warm with small datasets and alias them as ref to keep table
    # generators (which use the default dataset) fast
    for name in MINI_SUITE:
        run = runner.run(name, "small")
        runner._runs[(name, "ref")] = run
    return runner


class TestTables:
    def test_table1(self, small_runner):
        t = table1(small_runner)
        assert len(t.rows) == len(MINI_SUITE)
        assert all(r.code_size_kb > 0 for r in t.rows)
        rendered = t.render()
        for name in MINI_SUITE:
            assert name in rendered

    def test_table2(self, small_runner):
        t = table2(small_runner)
        assert len(t.rows) == len(MINI_SUITE)
        for r in t.rows:
            assert 0 <= r.loop_pred_miss <= 1
            assert r.loop_perfect <= r.loop_pred_miss + 1e-9
            assert 0 <= r.non_loop_fraction <= 1
            assert r.big_count >= 0
        assert "MEAN" in t.render()

    def test_table3(self, small_runner):
        t = table3(small_runner)
        for row in t.rows:
            assert set(row.cells) == {"Opcode", "Loop", "Call", "Return",
                                      "Guard", "Store", "Point"}
            for cell in row.cells.values():
                assert 0 <= cell.coverage <= 1
                assert cell.perfect <= cell.miss + 1e-9
        t.render()

    def test_table4_small_subsets(self, small_runner):
        t = table4(small_runner, exclude=(), k=1)
        assert t.n_trials == len(MINI_SUITE)
        assert t.top_orders
        assert sorted(t.pairwise) == sorted(
            ["Opcode", "Loop", "Call", "Return", "Guard", "Store", "Point"])
        t.render()

    def test_table5(self, small_runner):
        t = table5(small_runner)
        for row in t.rows:
            # coverages of the order slots + Default partition the dynamic
            # non-loop count
            total = sum(c.coverage for c in row.cells.values())
            assert total == pytest.approx(1.0, abs=1e-6)
        t.render()

    def test_table6(self, small_runner):
        t = table6(small_runner)
        for row in t.rows:
            assert 0 <= row.heuristic_coverage <= 1
            assert row.all_perfect <= row.all_miss + 1e-9
            assert row.all_perfect <= row.loop_rand_miss + 1e-9
        t.render()

    def test_table7(self, small_runner):
        t = table7(small_runner)
        assert set(t.all_stats) == set(t.most_stats)
        for key, (mean, std) in t.all_stats.items():
            assert 0 <= mean <= 1
        t.render()

    def test_heuristic_table_cached(self, queens_run):
        a = heuristic_table(queens_run)
        b = heuristic_table(queens_run)
        assert a is b

    def test_order_data_cached(self, queens_run):
        assert order_data_for(queens_run) is order_data_for(queens_run)


class TestGraphs:
    def test_graph1(self, small_runner):
        g = graph1(small_runner, exclude=())
        assert len(g.curve) == 5040
        assert g.spread >= 0
        assert "orders" in g.describe()

    def test_graphs2_3(self, small_runner):
        g = graphs2_3(small_runner, exclude=(), k=1)
        assert g.result.n_trials == len(MINI_SUITE)
        assert g.cumulative_share[-1] <= 1.0 + 1e-9
        g.describe()

    def test_graphs4_11(self, small_runner):
        (sg,) = graphs4_11(small_runner, benchmarks=("queens",))
        curves = sg.instruction_curves()
        assert set(curves) == {"Loop+Rand", "Heuristic", "Perfect"}
        # perfect predictor must not mispredict more than the others
        perfect = sg.analyzers["Perfect"]
        for name, analyzer in sg.analyzers.items():
            assert perfect.n_mispredicts <= analyzer.n_mispredicts
        sg.describe()

    def test_graph12(self):
        family = graph12(max_length=50)
        assert all(len(curve) == 50 for curve in family.values())

    def test_graph13(self, small_runner):
        g = graph13(small_runner, benchmarks=["queens"])
        assert len(g.points) == 3  # three datasets
        for p in g.points:
            assert p.perfect_miss <= p.heuristic_miss + 1e-9
        assert "queens" in g.describe()
