"""Tests for the two-pass assembler."""

import pytest

from repro.isa import (
    DATA_BASE, GP_VALUE, TEXT_BASE, WORD_SIZE, AssemblerError, assemble,
)


def wrap(body: str, name: str = "main") -> str:
    return f".text\n.ent {name}\n{name}:\n{body}\n.end {name}\n"


class TestBasics:
    def test_single_instruction(self):
        exe = assemble(wrap("nop"))
        assert len(exe.instructions) == 1
        assert exe.instructions[0].op.name == "nop"
        assert exe.instructions[0].address == TEXT_BASE

    def test_sequential_addresses(self):
        exe = assemble(wrap("nop\nnop\nnop"))
        addrs = [i.address for i in exe.instructions]
        assert addrs == [TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]

    def test_procedures_delimited(self):
        src = wrap("nop", "f") + wrap("nop\nnop", "g")
        exe = assemble(src)
        assert exe.procedure_names() == ["f", "g"]
        assert len(exe.procedure("g")) == 2

    def test_entry_prefers_start_symbol(self):
        src = wrap("nop", "main") + wrap("jal main", "__start")
        exe = assemble(src)
        assert exe.entry == exe.symbols["__start"]

    def test_entry_falls_back_to_main(self):
        exe = assemble(wrap("nop"))
        assert exe.entry == exe.symbols["main"]

    def test_comments_ignored(self):
        exe = assemble(wrap("nop  # comment\n# whole line\nnop"))
        assert len(exe.instructions) == 2

    def test_branch_target_resolved(self):
        exe = assemble(wrap("L1: beq $t0, $zero, L1"))
        inst = exe.instructions[0]
        assert inst.target_address == TEXT_BASE

    def test_forward_reference(self):
        exe = assemble(wrap("j L2\nnop\nL2: nop"))
        assert exe.instructions[0].target_address == TEXT_BASE + 8

    def test_operand_order_beq(self):
        exe = assemble(wrap("L: beq $t0, $t1, L"))
        inst = exe.instructions[0]
        assert inst.rs == 8 and inst.rt == 9


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble(wrap("frobnicate $t0"))

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble(wrap("j nowhere"))

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble(wrap("L: nop\nL: nop"))

    def test_instruction_outside_procedure(self):
        with pytest.raises(AssemblerError, match="outside any"):
            assemble(".text\nnop\n")

    def test_missing_end(self):
        with pytest.raises(AssemblerError, match="missing .end"):
            assemble(".text\n.ent f\nf: nop\n")

    def test_mismatched_end(self):
        with pytest.raises(AssemblerError, match="does not match"):
            assemble(".text\n.ent f\nf: nop\n.end g\n")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble(wrap("add $t0, $t1, $zz"))

    def test_missing_operand(self):
        with pytest.raises(AssemblerError, match="missing operand"):
            assemble(wrap("add $t0, $t1"))

    def test_displacement_out_of_range(self):
        with pytest.raises(AssemblerError, match="16-bit"):
            assemble(wrap("lw $t0, 40000($sp)"))

    def test_error_reports_line(self):
        with pytest.raises(AssemblerError, match="line 4"):
            assemble(".text\n.ent f\nf: nop\nbogus $t0\n.end f\n")


class TestPseudoInstructions:
    def test_move(self):
        exe = assemble(wrap("move $t0, $t1"))
        inst = exe.instructions[0]
        assert inst.op.name == "addu" and inst.rt == 0

    def test_li_small(self):
        exe = assemble(wrap("li $t0, 42"))
        assert len(exe.instructions) == 1
        assert exe.instructions[0].op.name == "addiu"

    def test_li_negative_small(self):
        exe = assemble(wrap("li $t0, -5"))
        assert len(exe.instructions) == 1

    def test_li_large_expands(self):
        exe = assemble(wrap("li $t0, 0x12345678"))
        names = [i.op.name for i in exe.instructions]
        assert names == ["lui", "ori"]
        assert exe.instructions[0].imm == 0x1234
        assert exe.instructions[1].imm == 0x5678

    def test_la_expands(self):
        src = ".data\nx: .word 7\n" + wrap("la $t0, x")
        exe = assemble(src)
        names = [i.op.name for i in exe.instructions]
        assert names == ["lui", "ori"]

    def test_b_becomes_j(self):
        exe = assemble(wrap("L: b L"))
        assert exe.instructions[0].op.name == "j"

    def test_not_and_neg(self):
        exe = assemble(wrap("not $t0, $t1\nneg $t2, $t3"))
        assert exe.instructions[0].op.name == "nor"
        assert exe.instructions[1].op.name == "sub"

    def test_ld_sd_aliases(self):
        exe = assemble(wrap("l.d $f4, 0($sp)\ns.d $f4, 8($sp)"))
        assert exe.instructions[0].op.name == "ldc1"
        assert exe.instructions[1].op.name == "sdc1"

    def test_jalr_one_operand_defaults_ra(self):
        exe = assemble(wrap("jalr $t0"))
        assert exe.instructions[0].rd == 31

    def test_char_immediate(self):
        exe = assemble(wrap("li $t0, 'A'"))
        assert exe.instructions[0].imm == 65

    def test_escaped_char_immediate(self):
        exe = assemble(wrap("li $t0, '\\n'"))
        assert exe.instructions[0].imm == 10


class TestDataSegment:
    def test_word_values(self):
        exe = assemble(".data\nx: .word 1, 2, -3\n" + wrap("nop"))
        assert exe.data[:4] == (1).to_bytes(4, "little")
        assert exe.data[8:12] == (-3 & 0xFFFFFFFF).to_bytes(4, "little")

    def test_word_label_patching(self):
        src = ".data\np: .word s\ns: .asciiz \"hi\"\n" + wrap("nop")
        exe = assemble(src)
        stored = int.from_bytes(exe.data[:4], "little")
        assert stored == exe.symbols["s"]
        assert exe.symbols["s"] == DATA_BASE + 4

    def test_asciiz_nul_terminated_and_escapes(self):
        src = '.data\ns: .asciiz "a\\tb\\n"\n' + wrap("nop")
        exe = assemble(src)
        assert exe.data[:5] == b"a\tb\n\x00"

    def test_space_zero_filled(self):
        exe = assemble(".data\nb: .space 16\nc: .word 5\n" + wrap("nop"))
        assert exe.data[:16] == bytes(16)
        assert exe.symbols["c"] == DATA_BASE + 16

    def test_double_aligned_to_8(self):
        exe = assemble(".data\nx: .word 1\nd: .double 1.5\n" + wrap("nop"))
        assert exe.symbols["d"] % 8 == 0
        import struct
        off = exe.symbols["d"] - DATA_BASE
        assert struct.unpack_from("<d", exe.data, off)[0] == 1.5

    def test_align_directive(self):
        exe = assemble(".data\nx: .byte 1\n.align 3\ny: .word 2\n"
                       + wrap("nop"))
        assert exe.symbols["y"] % 8 == 0

    def test_gp_relative_symbol(self):
        src = ".data\nv: .word 9\n" + wrap("lw $t0, v($gp)")
        exe = assemble(src)
        inst = exe.instructions[0]
        assert inst.imm == DATA_BASE - GP_VALUE  # v at data base

    def test_gp_relative_symbol_plus_offset(self):
        src = ".data\narr: .word 1, 2, 3\n" + wrap("lw $t0, arr+8($gp)")
        exe = assemble(src)
        assert exe.instructions[0].imm == DATA_BASE - GP_VALUE + 8

    def test_symbolic_displacement_needs_gp_or_zero(self):
        src = ".data\nv: .word 9\n" + wrap("lw $t0, v($t1)")
        with pytest.raises(AssemblerError, match="gp"):
            assemble(src)

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError, match="data segment"):
            assemble(".data\nadd $t0, $t1, $t2\n")


class TestExecutableQueries:
    def test_instruction_at(self):
        exe = assemble(wrap("nop\nadd $t0, $t1, $t2"))
        assert exe.instruction_at(TEXT_BASE + 4).op.name == "add"

    def test_instruction_at_bad_address(self):
        exe = assemble(wrap("nop"))
        with pytest.raises(IndexError):
            exe.instruction_at(TEXT_BASE + 400)
        with pytest.raises(IndexError):
            exe.instruction_at(TEXT_BASE + 2)

    def test_procedure_containing(self):
        src = wrap("nop\nnop", "f") + wrap("nop", "g")
        exe = assemble(src)
        assert exe.procedure_containing(TEXT_BASE).name == "f"
        assert exe.procedure_containing(TEXT_BASE + 2 * WORD_SIZE).name == "g"

    def test_procedure_containing_miss(self):
        exe = assemble(wrap("nop"))
        with pytest.raises(IndexError):
            exe.procedure_containing(TEXT_BASE + 100)

    def test_code_size(self):
        exe = assemble(".data\nb: .space 1024\n" + wrap("nop\nnop"))
        assert exe.text_size == 8
        assert exe.code_size_kb == pytest.approx((8 + 1024) / 1024)

    def test_conditional_branch_iterator(self):
        exe = assemble(wrap("L: beq $t0, $zero, L\nnop\nbne $t1, $t2, L"))
        branches = list(exe.conditional_branches())
        assert len(branches) == 2

    def test_listing_contains_procedures(self):
        exe = assemble(wrap("nop", "f"))
        assert "f:" in exe.listing()
