"""Engine-level fault-tolerance tests: dedupe, crash containment,
quarantine, deadlines, backpressure, and the circuit breaker.

The engine runs on a real event loop with real forked worker processes
(``asyncio.run`` inside sync tests — no plugin needed); the worker
*behavior* is injected through module-level exec functions so each test
drives exactly one failure mode without touching the benchmark
pipeline.  The invariant under test everywhere: **every accepted job
terminates in a typed state** — nothing lost, nothing hung, no bare
exceptions.
"""

from __future__ import annotations

import asyncio
import os
from time import sleep

from repro.harness.resilience import RunStatus
from repro.harness.parallel import ShardResult
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.engine import JobEngine, ServiceConfig
from repro.service.jobs import JobKind, JobRequest, JobState
from repro.testing.chaos import chaos_env


# -- injected worker behaviors (module-level: they must pickle) ---------------

def _exec_ok(order) -> ShardResult:
    return ShardResult(benchmark=order.shard.benchmark,
                       dataset=order.shard.dataset, status=RunStatus.OK)


def _exec_crash(order) -> ShardResult:
    os._exit(11)  # simulated segfault: kills this worker process


def _exec_slow(order) -> ShardResult:
    sleep(30.0)
    return _exec_ok(order)


def _exec_briefly_slow(order) -> ShardResult:
    sleep(0.4)
    return _exec_ok(order)


def _exec_undecodable(order):
    return "not a ShardResult"


def _request(benchmark: str = "queens") -> JobRequest:
    # compile orders skip dataset resolution: fastest round-trip
    return JobRequest(kind=JobKind.COMPILE, benchmark=benchmark)


def _run(test_coro_fn, config: ServiceConfig, exec_fn):
    """Start an engine, run the test body against it, always stop it."""
    async def _inner():
        engine = JobEngine(config, exec_fn=exec_fn)
        await engine.start()
        try:
            return await test_coro_fn(engine)
        finally:
            await engine.stop()
    return asyncio.run(_inner())


# -- healthy path -------------------------------------------------------------

def test_submit_and_wait_returns_done_payload():
    async def body(engine):
        record = await engine.submit_and_wait(_request(), timeout_s=30)
        assert record.state is JobState.DONE
        assert record.result == {"benchmark": "queens", "kind": "compile"}
        assert record.attempts == 1 and record.crashes == 0
        stats = engine.stats()
        assert stats["jobs"]["submitted"] == 1
        assert stats["jobs"]["done"] == 1
        assert stats["inflight"] == 0
    _run(body, ServiceConfig(workers=1, health_interval_s=0), _exec_ok)


def test_unknown_benchmark_fails_typed_at_submit():
    async def body(engine):
        record = engine.submit(_request("no-such-benchmark"))
        assert record.finished and record.state is JobState.FAILED
        assert record.error["code"] == "repro-error"
        assert "unknown benchmark" in record.error["message"]
    _run(body, ServiceConfig(workers=1, health_interval_s=0), _exec_ok)


# -- in-flight dedupe ---------------------------------------------------------

def test_identical_inflight_requests_share_one_execution():
    async def body(engine):
        first = engine.submit(_request())
        second = engine.submit(_request())   # same key, first still queued
        third = engine.submit(_request("fields"))  # different key: no dedupe
        assert second.deduped_into == first.id
        assert third.deduped_into is None
        records = await asyncio.gather(
            engine.wait(first.id, 30), engine.wait(second.id, 30),
            engine.wait(third.id, 30))
        assert [r.state for r in records] == [JobState.DONE] * 3
        assert records[1].result == records[0].result
        stats = engine.stats()
        assert stats["jobs"]["deduped"] == 1
        assert stats["jobs"]["done"] == 3
    _run(body, ServiceConfig(workers=1, health_interval_s=0),
         _exec_briefly_slow)


def test_dedupe_does_not_chain_to_finished_jobs():
    async def body(engine):
        first = await engine.submit_and_wait(_request(), timeout_s=30)
        assert first.state is JobState.DONE
        again = engine.submit(_request())    # primary finished: fresh run
        assert again.deduped_into is None
        record = await engine.wait(again.id, 30)
        assert record.state is JobState.DONE
    _run(body, ServiceConfig(workers=1, health_interval_s=0), _exec_ok)


# -- crash containment / quarantine -------------------------------------------

def test_worker_crash_is_retried_then_quarantined():
    async def body(engine):
        record = await engine.submit_and_wait(_request(), timeout_s=60)
        # attempt 1 crashes a worker, redispatch crashes a second:
        # threshold 2 reached -> poison-job quarantine, typed
        assert record.state is JobState.QUARANTINED
        assert record.error["code"] == "job-quarantined-error"
        assert record.crashes == 2 and record.attempts == 2
        assert engine.supervisor.respawns >= 2, \
            "each crash must respawn the slot"
        # the key is now refused at submit time, no worker touched
        repeat = engine.submit(_request())
        assert repeat.finished
        assert repeat.state is JobState.QUARANTINED
        assert engine.stats()["quarantined_keys"] == 1
    _run(body, ServiceConfig(workers=1, health_interval_s=0,
                             crash_retries=1, quarantine_threshold=2),
         _exec_crash)


def test_worker_crash_fails_typed_when_out_of_retries():
    async def body(engine):
        record = await engine.submit_and_wait(_request(), timeout_s=60)
        assert record.state is JobState.FAILED
        assert record.error["code"] == "worker-crash-error"
        assert record.error["benchmark"] == "queens"
    _run(body, ServiceConfig(workers=1, health_interval_s=0,
                             crash_retries=0, quarantine_threshold=99),
         _exec_crash)


def test_respawned_slot_keeps_serving_after_a_crash():
    async def body(engine):
        bad = await engine.submit_and_wait(_request(), timeout_s=60)
        assert bad.state is JobState.FAILED
        # a different key still gets a (fresh) worker and its own typed
        # terminal state — one poison key never wedges the engine
        other = await engine.submit_and_wait(_request("fields"),
                                             timeout_s=60)
        assert other.state is JobState.FAILED
        assert other.error["benchmark"] == "fields"
        assert engine.supervisor.respawns >= 2
    _run(body, ServiceConfig(workers=1, health_interval_s=0,
                             crash_retries=0, quarantine_threshold=99),
         _exec_crash)


# -- deadlines / undecodable results ------------------------------------------

def test_deadline_kills_wedged_worker_and_fails_typed():
    async def body(engine):
        record = await engine.submit_and_wait(_request(), timeout_s=60)
        assert record.state is JobState.FAILED
        assert record.error["code"] == "job-deadline-error"
        assert engine.supervisor.respawns >= 1, \
            "a wedged worker must be killed and replaced"
    _run(body, ServiceConfig(workers=1, health_interval_s=0,
                             deadline_s=0.5), _exec_slow)


def test_undecodable_worker_result_fails_typed():
    async def body(engine):
        record = await engine.submit_and_wait(_request(), timeout_s=60)
        assert record.state is JobState.FAILED
        assert record.error["code"] == "worker-result-error"
    _run(body, ServiceConfig(workers=1, health_interval_s=0),
         _exec_undecodable)


# -- backpressure -------------------------------------------------------------

def test_queue_overflow_sheds_typed_rejections():
    async def body(engine):
        # submit() never yields to the loop, so the dispatcher cannot
        # drain between these calls: 1 fills the queue, 2 overflows
        first = engine.submit(_request("queens"))
        second = engine.submit(_request("fields"))
        assert not first.finished
        assert second.state is JobState.REJECTED
        assert second.error["code"] == "job-rejected-error"
        assert "queue full" in second.error["message"]
        done = await engine.wait(first.id, 30)
        assert done.state is JobState.DONE
    _run(body, ServiceConfig(workers=1, health_interval_s=0,
                             queue_limit=1), _exec_ok)


# -- circuit breaker ----------------------------------------------------------

def test_breaker_opens_after_engine_failures_and_sheds_load():
    async def body(engine):
        first = await engine.submit_and_wait(_request(), timeout_s=60)
        assert first.state is JobState.FAILED   # one crash: breaker trips
        assert engine.breaker.state is BreakerState.OPEN
        shed = engine.submit(_request("fields"))
        assert shed.state is JobState.REJECTED
        assert shed.error["code"] == "job-rejected-error"
        assert "breaker" in shed.error["message"]
        assert engine.stats()["breaker"]["state"] == "open"
    _run(body, ServiceConfig(workers=1, health_interval_s=0,
                             crash_retries=0, quarantine_threshold=99,
                             breaker_failure_threshold=1,
                             breaker_cooldown_s=3600), _exec_crash)


def test_breaker_chaos_seam_forces_open_at_construction():
    async def body(engine):
        assert engine.breaker.state is BreakerState.OPEN
        record = engine.submit(_request())
        assert record.state is JobState.REJECTED
    with chaos_env(breaker_trip=1):
        _run(body, ServiceConfig(workers=1, health_interval_s=0,
                                 breaker_cooldown_s=3600), _exec_ok)


def test_breaker_recovers_through_half_open_probe():
    clock = [0.0]
    breaker = CircuitBreaker(failure_threshold=2, window_s=30.0,
                             cooldown_s=5.0, half_open_probes=1,
                             clock=lambda: clock[0])
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(), "open: everything shed"
    clock[0] += 5.0
    assert breaker.allow(), "cooldown over: one probe admitted"
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow(), "probe budget is bounded"
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_breaker_reopens_on_failed_probe():
    clock = [0.0]
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                             clock=lambda: clock[0])
    breaker.record_failure()
    clock[0] += 5.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2


def test_breaker_window_forgets_stale_failures():
    clock = [0.0]
    breaker = CircuitBreaker(failure_threshold=3, window_s=10.0,
                             clock=lambda: clock[0])
    breaker.record_failure()
    breaker.record_failure()
    clock[0] += 11.0  # both failures age out of the window
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.snapshot()["recent_failures"] == 1
