"""The IR verifier over the whole benchmark suite, plus negative tests.

Positive direction: every suite benchmark (runtime linked in) verifies
with **zero errors** at ``-O0`` and under ``--verify-each`` at ``-O1`` —
i.e. IR generation emits well-formed IR and every optimizer pass
preserves well-formedness, checked after each pass execution that changed
a function.

Negative direction: deliberately corrupted IR must be *rejected* with a
structured :class:`~repro.analysis.verify.IRVerifyError` carrying typed
diagnostics (rule code, function, block) — the verifier is only worth its
runtime if it actually fails on broken input.
"""

from __future__ import annotations

import pytest

from repro.analysis.verify import (
    IRVerifyError, assert_valid, verify_function, verify_program,
)
from repro.bcc.driver import compile_to_ir
from repro.bcc.ir import CBr, Copy, Jump, LoadConst, Ret
from repro.bench.suite import suite

BENCH_NAMES = [b.name for b in suite()]


def _ir(name: str, optimize: bool):
    b = next(b for b in suite() if b.name == name)
    # verify_each=True additionally runs the verifier after IR generation
    # and after every pass execution that changed a function
    return compile_to_ir(b.source(), filename=f"{name}.blc",
                         optimize=optimize, verify_each=True)


@pytest.mark.parametrize("bench_name", BENCH_NAMES)
def test_suite_verifies_at_o0(bench_name):
    program = _ir(bench_name, optimize=False)
    report = verify_program(program)
    assert report.ok, "\n".join(d.format() for d in report.errors)


@pytest.mark.parametrize("bench_name", BENCH_NAMES)
def test_suite_verifies_at_o1_with_verify_each(bench_name):
    # verify-each inside compile_to_ir already checked after every pass;
    # re-verify the final program for the report-shape assertions
    program = _ir(bench_name, optimize=True)
    report = verify_program(program)
    assert report.ok, "\n".join(d.format() for d in report.errors)
    # the unreachable accounting exists for every function
    assert set(report.unreachable) >= {f.name for f in program.functions}


# -- negative tests: the verifier must reject corrupted IR -------------------

_SRC = """
int helper(int n) {
    if (n > 3) { return n - 1; }
    return n + 1;
}
int main() {
    int x;
    x = 2 + 3;          /* guarantees local-propagate changes main */
    print_int(helper(x + read_int()));
    return 0;
}
"""


def _fresh_main():
    program = compile_to_ir(_SRC, optimize=False)
    return program, next(f for f in program.functions if f.name == "main")


def _diag_codes(exc: IRVerifyError) -> set[str]:
    return {d.code for d in exc.diagnostics}


def test_rejects_branch_to_missing_label():
    program, main = _fresh_main()
    block = main.blocks[0]
    block.instructions[-1] = Jump("L_no_such_block")
    with pytest.raises(IRVerifyError) as info:
        assert_valid(program, where="corrupted fixture")
    assert "V006" in _diag_codes(info.value)
    diag = next(d for d in info.value.diagnostics if d.code == "V006")
    assert diag.function == "main"
    assert diag.block == block.label
    assert info.value.phase == "verify"
    # structured one-liner, not a bare traceback string
    assert "error[" in info.value.oneline()


def test_rejects_missing_terminator():
    _, main = _fresh_main()
    block = main.blocks[0]
    dst = next(iter(main.vreg_class))
    block.instructions[-1] = LoadConst(dst, 7)
    with pytest.raises(IRVerifyError) as info:
        verify_function(main).raise_if_errors("fixture")
    assert "V004" in _diag_codes(info.value)


def test_rejects_mid_block_terminator():
    _, main = _fresh_main()
    block = main.blocks[0]
    block.instructions.insert(0, Ret(None))
    with pytest.raises(IRVerifyError) as info:
        assert_valid(main)
    assert "V005" in _diag_codes(info.value)


def test_rejects_unregistered_vreg():
    _, main = _fresh_main()
    block = main.blocks[0]
    bogus = max(main.vreg_class) + 1000
    block.instructions.insert(0, Copy(bogus, bogus))
    with pytest.raises(IRVerifyError) as info:
        assert_valid(main)
    assert "V007" in _diag_codes(info.value)


def test_rejects_nonzero_cbr_immediate():
    from repro.bcc.ir import Imm

    program, _ = _fresh_main()
    helper = next(f for f in program.functions if f.name == "helper")
    for block in helper.blocks:
        term = block.terminator
        if isinstance(term, CBr):
            term.b = Imm(7)  # CBr only admits Imm(0) (compare-to-zero)
            break
    else:
        pytest.fail("helper has no conditional branch")
    with pytest.raises(IRVerifyError) as info:
        assert_valid(helper)
    assert "V010" in _diag_codes(info.value)


def test_verify_each_pins_a_corrupting_pass():
    """A pass that emits malformed IR is caught *at that pass*."""
    from repro.bcc.opt import optimize_function

    _, main = _fresh_main()

    def corrupt(pass_, func, changed):
        # simulate a buggy pass: break the function after local-propagate
        func.blocks[0].instructions[-1] = Jump("L_gone")

    with pytest.raises(IRVerifyError) as info:
        optimize_function(main, passes="local-propagate",
                          after_pass=corrupt, verify_each=True)
    assert "V006" in _diag_codes(info.value)


def test_rejects_aliased_instruction_object():
    """The same IRInst object in two positions is V015: a cloning pass
    (loop rotation tail-duplicates whole blocks) must copy, or a later
    in-place mutation would silently edit both occurrences."""
    _, main = _fresh_main()
    block = main.blocks[0]
    block.instructions.insert(0, block.instructions[0])
    with pytest.raises(IRVerifyError) as info:
        assert_valid(main)
    assert "V015" in _diag_codes(info.value)
    diag = next(d for d in info.value.diagnostics if d.code == "V015")
    assert diag.function == "main"
    assert diag.block == block.label


def test_rejects_irreducible_loop():
    """A retreating edge whose target does not dominate its source is
    V016 — the shape a buggy loop-shape pass leaves behind when it
    rewires a latch or guard into a second loop entry."""
    program, _ = _fresh_main()
    helper = next(f for f in program.functions if f.name == "helper")
    # helper's if/else: make the two arms jump into each other, giving a
    # two-entry cycle (both arms are reached straight from the entry
    # compare, so neither dominates the other)
    entry = next(b for b in helper.blocks
                 if isinstance(b.terminator, CBr))
    term = entry.terminator
    arm_a = next(b for b in helper.blocks if b.label == term.true_label)
    arm_b = next(b for b in helper.blocks if b.label == term.false_label)
    arm_a.instructions[-1] = Jump(arm_b.label)
    arm_b.instructions[-1] = Jump(arm_a.label)
    with pytest.raises(IRVerifyError) as info:
        assert_valid(helper)
    assert "V016" in _diag_codes(info.value)


def test_rejects_non_imm_branch_operand():
    """A branch operand that is neither a vreg nor an ``Imm`` is V008."""

    class Bogus:
        value = 7

    program, _ = _fresh_main()
    helper = next(f for f in program.functions if f.name == "helper")
    term = next(b.terminator for b in helper.blocks
                if isinstance(b.terminator, CBr))
    term.b = Bogus()
    with pytest.raises(IRVerifyError) as info:
        assert_valid(helper)
    assert "V008" in _diag_codes(info.value)
