"""Concurrency-safety tests for the shared artifact store.

Three layers (docs/robustness.md "The shared store"):

* **lease protocol** — single-writer TTL leases: at most one valid
  holder per key at any instant, expired leases are stolen (crash
  recovery without cleanup), release/renew are owner-checked so a
  stale holder can never clobber its successor.  The hypothesis state
  machine drives arbitrary acquire/expire/steal orderings against a
  model with an injected clock.
* **cache integration** — ``put`` skips (never tears) under
  contention, ``get_or_wait`` waits out a racing writer and picks up
  the published entry, the startup sweep reclaims orphaned temp files
  and stale leases without touching fresh ones.
* **multi-process byte-identity** — N real processes hammering one
  store for the same key produce results byte-identical to a serial
  run, one entry on disk, and no temp-file litter.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import multiprocessing
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.suite import get
from repro.errors import CacheLockError
from repro.harness.cache import ArtifactCache, run_key
from repro.harness.locking import LeaseManager
from repro.harness.parallel import ShardJob, run_shard
from repro.testing.chaos import chaos_env

KEY = "ab" + "c" * 62
OTHER = "cd" + "e" * 62


class FakeClock:
    """Deterministic, manually-advanced time source."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def leases(tmp_path, clock):
    return LeaseManager(tmp_path, ttl_s=10.0, clock=clock)


# -- lease protocol -----------------------------------------------------------

def test_acquire_holder_release_roundtrip(leases, clock):
    lease = leases.try_acquire(KEY)
    assert lease is not None
    holder = leases.holder(KEY)
    assert holder is not None and holder.owner == lease.token
    assert holder.expires_at == clock.now + 10.0
    lease.release()
    assert leases.holder(KEY) is None


def test_second_acquire_fails_while_held(leases):
    first = leases.try_acquire(KEY)
    assert first is not None
    assert leases.try_acquire(KEY) is None
    # an unrelated key is unaffected
    assert leases.try_acquire(OTHER) is not None


def test_expired_lease_is_stolen(leases, clock):
    first = leases.try_acquire(KEY)
    clock.now += 10.0  # TTL exactly reached: expired
    second = leases.try_acquire(KEY)
    assert second is not None
    # the previous holder has lost every capability:
    assert not first.renew(), "a stolen lease must not renew"
    first.release()  # no-op — must not clobber the new owner
    assert leases.holder(KEY).owner == second.token


def test_renew_extends_expiry(leases, clock):
    lease = leases.try_acquire(KEY)
    clock.now += 6.0
    assert lease.renew()
    assert leases.holder(KEY).expires_at == clock.now + 10.0
    clock.now += 6.0  # 12s after acquire: only alive thanks to the renew
    assert leases.holder(KEY) is not None


def test_waiting_acquire_times_out_typed(tmp_path):
    mgr = LeaseManager(tmp_path, ttl_s=60.0)
    held = mgr.try_acquire(KEY)
    assert held is not None
    start = time.monotonic()
    with pytest.raises(CacheLockError):
        mgr.acquire(KEY, timeout_s=0.2, poll_s=0.02)
    assert time.monotonic() - start < 5.0, "timeout must not hang"


def test_waiting_acquire_succeeds_after_release(tmp_path):
    mgr = LeaseManager(tmp_path, ttl_s=60.0)
    held = mgr.try_acquire(KEY)
    threading.Timer(0.1, held.release).start()
    lease = mgr.acquire(KEY, timeout_s=5.0, poll_s=0.01)
    assert lease.token != held.token
    lease.release()


def test_chaos_ttl_env_overrides_every_ttl(tmp_path, clock):
    mgr = LeaseManager(tmp_path, ttl_s=60.0, clock=clock)
    with chaos_env(lease_ttl=0.5):
        assert mgr.ttl_s == 0.5
        lease = mgr.try_acquire(KEY)
        clock.now += 1.0
        assert mgr.holder(KEY) is None, "chaos TTL must expire the lease"
        assert mgr.try_acquire(KEY) is not None
    assert mgr.ttl_s == 60.0


_OPS = st.lists(
    st.one_of(
        st.just(("acquire",)),
        st.just(("release",)),
        st.just(("renew",)),
        st.tuples(st.just("advance"),
                  st.sampled_from([1.0, 5.0, 9.0, 10.0, 25.0]))),
    max_size=40)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_single_writer_invariant_under_arbitrary_orderings(
        tmp_path_factory, ops):
    """Model-based check of acquire/expire/steal ordering.

    The model tracks the one true on-disk owner ``(token, expires_at)``;
    after every operation the implementation must agree with it: an
    acquire succeeds iff no unexpired owner exists, renew/release only
    work for the current owner, and a steal invalidates the victim.
    """
    clock = FakeClock()
    mgr = LeaseManager(tmp_path_factory.mktemp("locks"), ttl_s=10.0,
                       clock=clock)
    current = None            # model: (token, expires_at) or None
    latest = None             # most recently acquired Lease object
    for op in ops:
        if op[0] == "advance":
            clock.now += op[1]
        elif op[0] == "acquire":
            lease = mgr.try_acquire(KEY)
            if current is None or current[1] <= clock.now:
                assert lease is not None, "free/expired key must acquire"
                current = (lease.token, lease.expires_at)
                latest = lease
            else:
                assert lease is None, "valid lease must block acquire"
        elif op[0] == "release" and latest is not None:
            owned = current is not None and current[0] == latest.token
            latest.release()
            if owned:
                current = None
        elif op[0] == "renew" and latest is not None:
            owned = (current is not None and current[0] == latest.token
                     and not latest.released)
            assert latest.renew() == owned
            if owned:
                current = (latest.token, clock.now + 10.0)
        # implementation and model agree on the visible holder
        holder = mgr.holder(KEY)
        if current is None or current[1] <= clock.now:
            assert holder is None
        else:
            assert holder is not None and holder.owner == current[0]


def test_sweep_removes_only_long_expired_leases(tmp_path, clock):
    mgr = LeaseManager(tmp_path, ttl_s=10.0, clock=clock)
    active = mgr.try_acquire(KEY)
    expired = mgr.try_acquire(OTHER)
    assert active is not None and expired is not None
    clock.now += 400.0  # OTHER's lease expired 390s ago... but so is KEY's
    active.renew()      # KEY's holder is alive and renewing
    assert mgr.sweep(max_age_s=300.0) == 1
    assert not mgr.lease_path(OTHER).exists()
    assert mgr.lease_path(KEY).exists()


# -- cache integration --------------------------------------------------------

@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "store")


def _rkey(n: int = 1) -> str:
    return run_key("c" * 64, "ref", (n,), 100, None, 1)


def test_put_skips_while_writer_lease_held(cache):
    key = _rkey()
    lease = cache.writer_lease(key, timeout_s=1.0)
    assert cache.put(key, "run", {"ok": True}) is False
    assert cache.stats()["store_skipped"] == 1
    assert cache.get(key, "run") is None, "no torn/partial entry"
    lease.release()
    assert cache.put(key, "run", {"ok": True}) is True
    assert cache.get(key, "run") == {"ok": True}


def test_get_or_wait_times_out_while_lease_held(cache):
    key = _rkey()
    lease = cache.writer_lease(key, timeout_s=1.0)
    try:
        assert cache.get_or_wait(key, "run", timeout_s=0.2,
                                 poll_s=0.02) is None
    finally:
        lease.release()


def test_get_or_wait_picks_up_racing_writers_entry(cache):
    """A reader blocked on the writer lease sees the entry the moment
    the writer publishes it — the real put ordering (publish while
    holding, then release), slowed down via the lock-hold chaos seam."""
    key = _rkey()
    payload = {"ok": True, "profile": [1, 2, 3]}
    with chaos_env(lock_hold=0.3):
        writer = threading.Thread(
            target=lambda: cache.put(key, "run", payload))
        writer.start()
        time.sleep(0.05)  # let the writer take its lease
        entry = cache.get_or_wait(key, "run", timeout_s=5.0, poll_s=0.01)
        writer.join()
    assert entry == payload


def test_get_or_wait_shares_negative_entries(cache):
    key = _rkey()
    cache.put(key, "run", {"ok": False, "error": "typed failure"})
    assert cache.get_or_wait(key, "run", timeout_s=0.5) == {
        "ok": False, "error": "typed failure"}


def test_startup_sweep_reclaims_stale_debris_only(tmp_path):
    first = ArtifactCache(tmp_path / "store")
    first.put(_rkey(), "run", {"ok": True})
    shard = first.path_for(_rkey()).parent
    old_tmp = shard / "orphan-old.tmp"
    old_tmp.write_bytes(b"half-written entry")
    stale = time.time() - 3600
    os.utime(old_tmp, (stale, stale))
    fresh_tmp = shard / "orphan-fresh.tmp"
    fresh_tmp.write_bytes(b"live writer's file")

    second = ArtifactCache(tmp_path / "store")  # startup sweep runs here
    assert not old_tmp.exists(), "hour-old orphan must be reclaimed"
    assert fresh_tmp.exists(), "a live writer's temp file must survive"
    assert second.stats()["tmp_swept"] == 1
    assert second.get(_rkey(), "run") == {"ok": True}, \
        "sweep must never touch real entries"


def test_manual_sweep_reports_counts(cache):
    cache.put(_rkey(), "run", {"ok": True})
    shard = cache.path_for(_rkey()).parent
    old_tmp = shard / "dead.tmp"
    old_tmp.write_bytes(b"x")
    stale = time.time() - 3600
    os.utime(old_tmp, (stale, stale))
    assert cache.sweep() == {"tmp": 1, "leases": 0}
    assert cache.stats()["tmp_swept"] == 1


# -- multi-process contention (byte-identity with serial) ---------------------

def _shard_digest(result) -> tuple:
    """Order-independent content digest of one shard result."""
    profile = result.profile
    edges = tuple(sorted(
        (addr, profile.taken_count(addr), profile.not_taken_count(addr))
        for addr in profile.executed_branches()))
    return (result.status.value, result.instr_count, result.output, edges)


def _hammer(order) -> tuple:
    """Worker: run one shard against the SHARED store (module-level so it
    pickles into the pool)."""
    root, benchmark, dataset, inputs, fuel = order
    job = ShardJob(benchmark=benchmark, dataset=dataset, inputs=inputs,
                   fuel_budget=fuel, retry_fuel_factor=4, cache_dir=root,
                   lease_wait_s=5.0)
    return _shard_digest(run_shard(job))


def test_multiprocess_hammering_matches_serial_byte_for_byte(tmp_path):
    """N processes racing on ONE key leave the store with one coherent
    entry and every process holding the serial run's exact result."""
    benchmark, dataset, fuel = "queens", "small", 100_000_000
    inputs = tuple(get(benchmark).dataset(dataset).inputs)

    serial_job = ShardJob(benchmark=benchmark, dataset=dataset,
                          inputs=inputs, fuel_budget=fuel,
                          retry_fuel_factor=4,
                          cache_dir=str(tmp_path / "serial-store"))
    serial = _shard_digest(run_shard(serial_job))

    shared = tmp_path / "shared-store"
    order = (str(shared), benchmark, dataset, inputs, fuel)
    context = multiprocessing.get_context("fork")
    with chaos_env(lock_hold=0.05):  # stretch the lease-held window
        with ProcessPoolExecutor(max_workers=4,
                                 mp_context=context) as pool:
            digests = list(pool.map(_hammer, [order] * 4))

    assert all(digest == serial for digest in digests), \
        "every contending process must hold the serial result"
    store = ArtifactCache(shared)
    assert len(store) == 2, "exactly one compile + one run entry"
    assert not list(store.objects_dir.glob("*/*.tmp")), \
        "contention must leave no temp-file litter"
