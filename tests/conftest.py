"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bcc import compile_and_link
from repro.bcc.opt import set_verify_each
from repro.harness import SuiteRunner
from repro.sim import EdgeProfile, Machine

#: the registered test tiers (see pytest.ini and docs/performance.md)
TIERS = ("tier1", "tier2")


def pytest_collection_modifyitems(config, items):
    """Enforce the tier taxonomy at collection time.

    * every test belongs to exactly ONE tier — a test marked both
      ``tier1`` and ``tier2`` is a taxonomy bug and fails collection;
    * unmarked tests are auto-assigned ``tier1``, so the historical
      suite keeps running under the default ``-m "not tier2"`` selection
      without a thousand-test marking churn.
    """
    errors = []
    for item in items:
        present = [t for t in TIERS if item.get_closest_marker(t)]
        if len(present) > 1:
            errors.append(f"{item.nodeid}: marked {' and '.join(present)} "
                          f"— a test belongs to exactly one tier")
        elif not present:
            item.add_marker(pytest.mark.tier1)
    if errors:
        raise pytest.UsageError("\n".join(errors))


@pytest.fixture(autouse=True, scope="session")
def _always_verify_ir():
    """Every compilation in the test suite runs the IR verifier.

    The process-wide verify-each default (see
    :func:`repro.bcc.opt.set_verify_each`) checks the IR after generation
    and after every optimizer pass that changed a function, so any test
    that compiles anything doubles as a verifier regression — a pass that
    emits malformed IR fails loudly at the pass that broke it, not at
    some downstream codegen assertion.
    """
    old = set_verify_each(True)
    yield
    set_verify_each(old)


def compile_run(source: str, inputs: list | None = None,
                max_instructions: int = 20_000_000,
                optimize: bool = True):
    """Compile BLC source, run it, and return the ExitStatus."""
    executable = compile_and_link(source, optimize=optimize)
    machine = Machine(executable, inputs=inputs,
                      max_instructions=max_instructions)
    return machine.run()


def run_output(source: str, inputs: list | None = None, **kw) -> str:
    """Compile and run, returning just the program output."""
    return compile_run(source, inputs, **kw).output


def profile_of(executable, inputs=None, max_instructions=20_000_000):
    """Run an executable collecting its edge profile."""
    profile = EdgeProfile()
    Machine(executable, inputs=inputs, observers=[profile],
            max_instructions=max_instructions).run()
    return profile


#: A small, fast subset of the suite used by harness-level tests.
MINI_SUITE = ["queens", "fields", "gauss"]


@pytest.fixture(scope="session")
def mini_runner() -> SuiteRunner:
    """Session-scoped runner over a 3-benchmark subset (cheap)."""
    return SuiteRunner(MINI_SUITE)


@pytest.fixture(scope="session")
def queens_run(mini_runner):
    return mini_runner.run("queens", "small")


@pytest.fixture(scope="session")
def gauss_run(mini_runner):
    return mini_runner.run("gauss", "small")
