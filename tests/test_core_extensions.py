"""Tests for the extension modules: profile-guided prediction, dynamic
predictors, and the extended Guard heuristic."""

import pytest

from conftest import profile_of
from repro.bcc import compile_and_link
from repro.core import (
    BimodalPredictor, HeuristicPredictor, LastDirectionPredictor,
    PerfectPredictor, Prediction, ProfileGuidedPredictor, StaticAsDynamic,
    classify_branches, cross_dataset_experiment, evaluate_predictor,
    extended_guard_heuristic,
)
from repro.core.heuristics import guard_heuristic
from repro.isa import assemble
from repro.isa.instructions import Instruction, OPCODES_BY_NAME
from repro.sim import Machine

THRESHOLD_SRC = """
int main() {
    int i, acc = 0, n = read_int();
    for (i = 0; i < 200; i++) {
        if (i % 100 < n) { acc += 2; } else { acc -= 1; }
        if (acc < 0) { acc = 0; }
    }
    return acc > 100;
}
"""


@pytest.fixture(scope="module")
def threshold():
    exe = compile_and_link(THRESHOLD_SRC)
    analysis = classify_branches(exe)
    profiles = {
        "low": profile_of(exe, inputs=[10]),
        "high": profile_of(exe, inputs=[90]),
        "mid": profile_of(exe, inputs=[50]),
    }
    return exe, analysis, profiles


class TestProfileGuided:
    def test_training_profile_is_perfect_on_itself(self, threshold):
        _, analysis, profiles = threshold
        p = profiles["low"]
        guided = ProfileGuidedPredictor(analysis, p)
        perfect = PerfectPredictor(analysis, p)
        assert evaluate_predictor(guided, p).misses == \
            evaluate_predictor(perfect, p).misses

    def test_cross_dataset_degrades_gracefully(self, threshold):
        _, analysis, profiles = threshold
        guided = ProfileGuidedPredictor(analysis, profiles["low"])
        for name in ("high", "mid"):
            test_profile = profiles[name]
            result = evaluate_predictor(guided, test_profile)
            floor = evaluate_predictor(
                PerfectPredictor(analysis, test_profile), test_profile)
            assert result.misses >= floor.misses

    def test_untrained_branch_falls_back_to_random(self, threshold):
        _, analysis, _ = threshold
        from repro.sim import EdgeProfile
        from repro.core.predictors import branch_random
        empty = EdgeProfile()
        guided = ProfileGuidedPredictor(analysis, empty)
        for addr, prediction in guided.predictions().items():
            assert prediction is branch_random(addr)

    def test_cross_dataset_experiment(self, threshold):
        _, analysis, profiles = threshold
        results = cross_dataset_experiment(analysis, profiles, train="low")
        assert {r.test_dataset for r in results} == {"high", "mid"}
        for r in results:
            assert r.train_dataset == "low"
            assert r.self_profile.misses <= r.profile_guided.misses
            assert r.self_profile.misses <= r.program_based.misses
            assert r.program_to_profile_ratio >= 0

    def test_fisher_freudenberger_stability(self):
        """Branches keep their biased direction across datasets, so
        cross-trained profiles stay close to self-trained ones."""
        from repro.bench import get
        b = get("fields")
        exe = b.compile()
        analysis = classify_branches(exe)
        profiles = {
            ds.name: profile_of(exe, inputs=list(ds.inputs),
                                max_instructions=25_000_000)
            for ds in b.datasets
        }
        results = cross_dataset_experiment(analysis, profiles, train="ref")
        for r in results:
            excess = r.profile_guided.miss_rate - r.self_profile.miss_rate
            assert excess < 0.10  # cross-training costs only a few points


class TestDynamicPredictors:
    def branch(self, addr=0x400000):
        return Instruction(op=OPCODES_BY_NAME["beq"], rs=8, rt=0,
                           address=addr)

    def feed(self, predictor, outcomes, addr=0x400000):
        for i, taken in enumerate(outcomes):
            predictor.on_branch(self.branch(addr), taken, i)
        return predictor

    def test_last_direction_tracks(self):
        p = self.feed(LastDirectionPredictor(), [True, True, True, False,
                                                 False])
        # cold miss (predicts NT, sees T), then T,T correct, then flip miss,
        # then F correct
        assert p.n_branches == 5
        assert p.n_mispredicts == 2

    def test_bimodal_hysteresis(self):
        """2-bit counters shrug off a single anomaly: T T T F T costs only
        the cold start and the single F."""
        p = self.feed(BimodalPredictor(), [True, True, True, False, True])
        assert p.n_mispredicts == 2  # cold (weakly-NT) + the lone False

    def test_bimodal_beats_last_direction_on_alternating_anomalies(self):
        outcomes = [True, True, True, False] * 25
        one_bit = self.feed(LastDirectionPredictor(), outcomes)
        two_bit = self.feed(BimodalPredictor(), outcomes)
        assert two_bit.n_mispredicts < one_bit.n_mispredicts

    def test_bimodal_finite_table_aliasing(self):
        p = BimodalPredictor(table_bits=1)  # 2 entries: heavy aliasing
        # two branches that map to the same entry with opposite behaviour
        for i in range(50):
            p.on_branch(self.branch(0x400000), True, i)
            p.on_branch(self.branch(0x400008), False, i)
        aliased_rate = p.miss_rate
        q = BimodalPredictor()  # infinite table
        for i in range(50):
            q.on_branch(self.branch(0x400000), True, i)
            q.on_branch(self.branch(0x400008), False, i)
        assert q.miss_rate < aliased_rate

    def test_table_bits_validation(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_bits=0)

    def test_dynamic_vs_static_on_real_program(self):
        """Dynamic 2-bit prediction rivals the perfect static predictor
        (McFarling & Hennessy's observation), and both beat the
        program-based heuristic."""
        exe = compile_and_link(THRESHOLD_SRC)
        analysis = classify_branches(exe)
        profile = profile_of(exe, inputs=[50])
        heuristic = StaticAsDynamic(
            HeuristicPredictor(analysis).prediction_map())
        bimodal = BimodalPredictor()
        machine = Machine(exe, inputs=[50],
                          observers=[heuristic, bimodal])
        machine.run()
        assert heuristic.n_branches == bimodal.n_branches
        # the dynamic predictor adapts: at least as good as static heuristics
        assert bimodal.miss_rate <= heuristic.miss_rate + 0.02

    def test_static_as_dynamic_matches_offline_eval(self):
        exe = compile_and_link(THRESHOLD_SRC)
        analysis = classify_branches(exe)
        hp = HeuristicPredictor(analysis)
        wrapped = StaticAsDynamic(hp.prediction_map())
        machine = Machine(exe, inputs=[30], observers=[wrapped])
        machine.run()
        profile = profile_of(exe, inputs=[30])
        offline = evaluate_predictor(hp, profile)
        assert wrapped.n_mispredicts == offline.misses


class TestExtendedGuard:
    def analyze(self, body):
        src = f".text\n.ent f\nf:\n{body}\n.end f\n"
        analysis = classify_branches(assemble(src))
        branch = min(analysis.branches.values(), key=lambda b: b.address)
        return branch, analysis.analysis_of(branch)

    TWO_BLOCKS_AWAY = """
    beq $t0, $zero, Lskip
    addiu $t5, $t5, 1
    bne $t5, $t6, Lother
    addiu $t1, $t0, 1      # $t0 used two blocks into the taken side
Lother:
    nop
Lskip:
    jr $ra
"""

    def test_finds_use_beyond_immediate_successor(self):
        branch, pa = self.analyze(self.TWO_BLOCKS_AWAY)
        assert guard_heuristic(branch, pa) is None
        assert extended_guard_heuristic(branch, pa) is Prediction.NOT_TAKEN

    def test_depth_limit(self):
        branch, pa = self.analyze(self.TWO_BLOCKS_AWAY)
        assert extended_guard_heuristic(branch, pa, depth=1) is None

    def test_agrees_with_guard_on_immediate_uses(self):
        branch, pa = self.analyze("""
    beq $t0, $zero, Lskip
    addiu $t1, $t0, 1
Lskip:
    jr $ra
""")
        assert guard_heuristic(branch, pa) is \
            extended_guard_heuristic(branch, pa) is Prediction.NOT_TAKEN

    def test_does_not_cross_into_shared_blocks(self):
        """A use in a block NOT dominated by the successor (reachable from
        both sides) must not count."""
        branch, pa = self.analyze("""
    beq $t0, $zero, Lb
    addiu $t5, $t5, 1
    j Ljoin
Lb:
    addiu $t6, $t6, 1
Ljoin:
    addiu $t1, $t0, 1      # join uses $t0 but postdominates the branch
    jr $ra
""")
        assert extended_guard_heuristic(branch, pa) is None

    def test_kill_stops_path(self):
        branch, pa = self.analyze("""
    beq $t0, $zero, Lskip
    addiu $t0, $zero, 9    # redefine before any use
    bne $t5, $t6, Lother
    addiu $t1, $t0, 1
Lother:
    nop
Lskip:
    jr $ra
""")
        assert extended_guard_heuristic(branch, pa) is None

    def test_coverage_superset_on_compiled_code(self):
        """On real compiled code, extended Guard applies wherever plain
        Guard does (never strictly less coverage)."""
        from repro.bench import get
        exe = get("scc").compile()
        analysis = classify_branches(exe)
        for b in analysis.non_loop_branches():
            pa = analysis.analysis_of(b)
            plain = guard_heuristic(b, pa)
            extended = extended_guard_heuristic(b, pa)
            if plain is not None:
                assert extended is not None


class TestVotingPredictor:
    def test_covers_all_branches(self, threshold):
        from repro.core import VotingPredictor
        _, analysis, _ = threshold
        vp = VotingPredictor(analysis)
        preds = vp.predictions()
        assert set(preds) == set(analysis.branches)
        assert set(vp.attribution.values()) <= {"LoopPredictor", "Vote",
                                                "Default"}

    def test_loop_branches_use_loop_predictor(self, threshold):
        from repro.core import VotingPredictor
        _, analysis, _ = threshold
        preds = VotingPredictor(analysis).predictions()
        for branch in analysis.loop_branches():
            assert preds[branch.address] is branch.loop_prediction

    def test_weights_can_flip_a_vote(self):
        """A branch where Guard and Store disagree (the mesh max-update
        pattern) flips with the weighting."""
        from repro.core import VotingPredictor
        from repro.isa import assemble
        src = """
.text
.ent f
f:
    beq $t0, $zero, Lskip
    addiu $t1, $t0, 1
    sw $t1, 0($sp)
Lskip:
    jr $ra
.end f
"""
        analysis = classify_branches(assemble(src))
        heavy_guard = VotingPredictor(
            analysis, weights={"Guard": 2.0, "Store": 1.0})
        heavy_store = VotingPredictor(
            analysis, weights={"Guard": 1.0, "Store": 2.0})
        (addr,) = analysis.branches
        assert heavy_guard.predictions()[addr] is Prediction.NOT_TAKEN
        assert heavy_store.predictions()[addr] is Prediction.TAKEN

    def test_unknown_weight_rejected(self, threshold):
        from repro.core import VotingPredictor
        _, analysis, _ = threshold
        with pytest.raises(ValueError, match="unknown"):
            VotingPredictor(analysis, weights={"Bogus": 1.0})

    def test_comparable_to_priority_combination(self):
        """Uniform-weight voting lands in the same quality band as the
        paper's priority order on a real benchmark (neither collapses)."""
        from repro.bench import get
        from repro.core import VotingPredictor
        b = get("scc")
        exe = b.compile()
        analysis = classify_branches(exe)
        profile = profile_of(exe, inputs=list(b.dataset("small").inputs),
                             max_instructions=25_000_000)
        vote = evaluate_predictor(VotingPredictor(analysis), profile)
        priority = evaluate_predictor(HeuristicPredictor(analysis), profile)
        assert abs(vote.miss_rate - priority.miss_rate) < 0.15
