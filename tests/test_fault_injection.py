"""Fault-injection tests for the resilient experiment pipeline.

Every injected fault — corrupted artifacts, starved inputs, exhausted
fuel/memory budgets, runaway executions — must surface as a typed
:class:`~repro.errors.ReproError` (simulator-phase faults additionally
carrying a populated :class:`~repro.errors.CrashReport`), never as a bare
``KeyError``/``IndexError`` or an unbounded hang.  In degraded mode the
seven-table report must survive any single benchmark dying, with FAILED
cells only on the sabotaged rows and healthy rows identical to a strict
run.
"""

from __future__ import annotations

import time

import pytest

from repro.bcc import compile_and_link
from repro.errors import (
    CrashReport, InputExhausted, MemoryError_, ReproError, SimulationError,
    SimulationLimitExceeded, SimulationTimeout,
)
from repro.harness import (
    RunOutcome, RunStatus, SuiteRunner,
    table1, table2, table3, table4, table5, table6, table7,
)
from repro.isa import TEXT_BASE, assemble
from repro.sim import Machine
from repro.sim.memory import Memory
from repro.testing.chaos import (
    FAULTS, clone_executable, corrupt_branch_targets, corrupt_opcode,
    sabotage,
)

SMALL = ["queens", "fields", "gauss"]

#: chaos fault -> RunStatus bucket the degraded runner must report
EXPECTED_STATUS = {
    "compile": RunStatus.COMPILE_FAILED,
    "opcode": RunStatus.SIM_FAILED,
    "branch-target": RunStatus.SIM_FAILED,
    "inputs": RunStatus.SIM_FAILED,
    "fuel": RunStatus.TIMEOUT,
    "memory": RunStatus.SIM_FAILED,
    "skip": RunStatus.SKIPPED,
}

#: faults raised from inside the dispatch loop must carry a crash report
CRASHING_FAULTS = ("opcode", "branch-target", "inputs", "fuel", "memory")


def asm_machine(body: str, **kw) -> Machine:
    src = f".text\n.ent main\nmain:\n{body}\n.end main\n"
    return Machine(assemble(src), **kw)


# -- chaos faults through the degraded runner ---------------------------------


class TestChaosFaults:
    @pytest.mark.parametrize("fault", FAULTS)
    def test_degraded_outcome_is_classified(self, fault):
        runner = SuiteRunner(["queens", "fields"], strict=False)
        sabotage(runner, "queens", fault)
        outcome = runner.outcome("queens")
        assert outcome.failed
        assert outcome.status is EXPECTED_STATUS[fault]
        if fault != "skip":
            assert isinstance(outcome.error, ReproError)
            assert outcome.error.benchmark == "queens"
        if fault in CRASHING_FAULTS:
            report = outcome.error.crash_report
            assert isinstance(report, CrashReport)
            assert report.pc >= 0
            assert len(report.registers) == 32
        # the healthy benchmark is untouched
        assert runner.outcome("fields").ok

    @pytest.mark.parametrize("fault", FAULTS)
    def test_strict_mode_raises_typed_error(self, fault):
        runner = SuiteRunner(["queens"], strict=True)
        sabotage(runner, "queens", fault)
        with pytest.raises(ReproError):
            runner.run("queens")

    def test_unknown_fault_rejected(self):
        runner = SuiteRunner(["queens"], strict=False)
        with pytest.raises(ValueError, match="unknown chaos fault"):
            sabotage(runner, "queens", "gremlins")

    def test_unknown_benchmark_is_typed_not_keyerror(self):
        runner = SuiteRunner(["nosuch"], strict=False)
        outcome = runner.outcome("nosuch")
        assert outcome.failed
        assert isinstance(outcome.error, ReproError)

    def test_corruption_does_not_alias_pristine_artifact(self, mini_runner):
        executable, _ = mini_runner.compiled("queens")
        n_before = len(executable.instructions)
        ops_before = [i.op.name for i in executable.instructions[:8]]
        corrupted = corrupt_opcode(executable)
        assert corrupted is not executable
        assert corrupted.instructions is not executable.instructions
        assert [i.op.name for i in executable.instructions[:8]] == ops_before
        assert len(executable.instructions) == n_before

    def test_clone_preserves_behavior(self, mini_runner):
        run = mini_runner.run("queens", "small")
        clone = clone_executable(run.executable)
        status = Machine(clone, inputs=list(run.dataset.inputs)).run()
        assert status.output == run.output


# -- typed error paths + crash reports on the bare Machine --------------------


class TestMachineFaultPaths:
    def test_undefined_opcode_is_typed_with_report(self, mini_runner):
        executable, _ = mini_runner.compiled("queens")
        corrupted = corrupt_opcode(executable)
        machine = Machine(corrupted, inputs=[4])
        with pytest.raises(SimulationError) as exc_info:
            machine.run()
        err = exc_info.value
        assert "opcode" in str(err)
        assert err.crash_report is not None
        assert err.crash_report.instruction  # rendered text

    def test_corrupt_branch_targets_fault_not_indexerror(self, mini_runner):
        executable, _ = mini_runner.compiled("queens")
        corrupted = corrupt_branch_targets(executable)
        with pytest.raises(SimulationError) as exc_info:
            Machine(corrupted, inputs=[4]).run()
        assert exc_info.value.crash_report is not None

    def test_bad_entry_pc_out_of_range(self):
        machine = asm_machine("nop\nli $v0, 10\nsyscall")
        with pytest.raises(SimulationError, match="pc out of range"):
            machine.run(entry=TEXT_BASE + 4 * 100_000)
        # the report still renders even though pc is outside the text segment
        # (the error carries it)

    def test_unknown_syscall_is_typed(self):
        machine = asm_machine("li $v0, 99\nsyscall")
        with pytest.raises(SimulationError, match="unknown syscall 99") \
                as exc_info:
            machine.run()
        assert exc_info.value.pc == TEXT_BASE + 4  # the syscall instruction
        assert exc_info.value.crash_report is not None

    def test_input_exhausted_names_syscall_and_pc(self):
        machine = asm_machine("li $v0, 5\nsyscall")
        with pytest.raises(InputExhausted) as exc_info:
            machine.run()
        message = str(exc_info.value)
        assert "read_int" in message and "syscall 5" in message
        assert "consuming 0 input values" in message
        assert f"0x{TEXT_BASE + 4:x}" in message

    def test_input_exhausted_counts_consumed(self):
        machine = asm_machine(
            "li $v0, 5\nsyscall\nli $v0, 5\nsyscall\nli $v0, 5\nsyscall",
            inputs=[1, 2])
        with pytest.raises(InputExhausted, match="consuming 2 input values"):
            machine.run()
        assert not machine.inputs  # drained

    def test_crash_report_call_stack_and_history(self):
        # f() loops four times then reads from an empty input deque
        body = ("jal f\nli $v0, 10\nsyscall\n"
                ".end main\n.ent f\nf:\n"
                "li $t1, 4\n"
                "L: addiu $t1, $t1, -1\nbgtz $t1, L\n"
                "li $v0, 5\nsyscall\njr $ra")
        src = f".text\n.ent main\nmain:\n{body}\n.end f\n"
        machine = Machine(assemble(src))
        with pytest.raises(InputExhausted) as exc_info:
            machine.run()
        report = exc_info.value.crash_report
        assert report is not None
        assert [frame.callee for frame in report.call_stack] == ["f"]
        assert len(report.branch_history) == 4
        taken = [t for _, t in report.branch_history]
        assert taken == [True, True, True, False]
        rendered = report.format()
        assert "call stack" in rendered and "f (" in rendered

    def test_fuel_exhaustion_reports_budget_and_pc(self):
        machine = asm_machine("L: j L", max_instructions=100)
        with pytest.raises(SimulationLimitExceeded,
                           match="fuel budget of 100"):
            machine.run()

    def test_internal_faults_are_wrapped(self):
        # an instruction with missing operand fields triggers a Python-level
        # TypeError inside the dispatch loop; it must surface as a typed
        # SimulationError with crash report, never a bare builtin exception
        import dataclasses
        from repro.isa.instructions import OPCODES_BY_NAME
        exe = assemble(".text\n.ent main\nmain:\nnop\n"
                       "li $v0, 10\nsyscall\n.end main\n")
        exe.instructions[0] = dataclasses.replace(
            exe.instructions[0], op=OPCODES_BY_NAME["add"])  # rd/rs/rt None
        with pytest.raises(SimulationError,
                           match="internal simulator fault") as exc_info:
            Machine(exe).run()
        assert exc_info.value.crash_report is not None
        assert isinstance(exc_info.value.__cause__, TypeError)

    def test_exit_status_machine_backref_optional(self):
        machine = asm_machine("li $v0, 10\nsyscall")
        status = machine.run()
        assert status.machine is machine
        from repro.sim.machine import ExitStatus
        bare = ExitStatus(0, 1, 0, "")
        assert bare.machine is None


class TestWatchdog:
    def test_wall_clock_deadline_bounds_infinite_loop(self):
        machine = asm_machine("L: j L", max_instructions=10**12,
                              wall_clock_deadline=0.2)
        start = time.monotonic()
        with pytest.raises(SimulationTimeout) as exc_info:
            machine.run()
        elapsed = time.monotonic() - start
        assert elapsed < 10.0  # generous bound; typical is ~0.2s
        assert "watchdog" in str(exc_info.value)
        assert exc_info.value.crash_report is not None

    def test_timeout_is_a_limit_but_not_retried(self):
        # SimulationTimeout subclasses SimulationLimitExceeded for
        # classification, but the degraded runner must NOT retry it with
        # more fuel (wall-clock overruns are not transient)
        assert issubclass(SimulationTimeout, SimulationLimitExceeded)
        runner = SuiteRunner(["queens"], strict=False,
                             wall_clock_deadline=1e-9)
        outcome = runner.outcome("queens")
        assert outcome.status is RunStatus.TIMEOUT
        assert not outcome.retried

    def test_no_deadline_means_no_watchdog_overhead_path(self):
        machine = asm_machine("li $v0, 10\nsyscall")
        assert machine.wall_clock_deadline is None
        assert machine.run().exit_code == 0


class TestMemoryFaults:
    def test_page_budget_typed(self):
        memory = Memory(max_pages=1)
        memory.store_word(0x1000_0000, 7)   # first page: fine
        with pytest.raises(MemoryError_, match="budget is 1 pages"):
            memory.store_word(0x2000_0000, 7)
        assert memory.pages_allocated == 1
        assert isinstance(MemoryError_("x"), ReproError)

    @pytest.mark.parametrize("op,addr", [
        ("load_word", 0x1000_0002), ("store_word", 0x1000_0001),
        ("load_double", 0x1000_0004), ("store_double", 0x1000_0004),
    ])
    def test_misaligned_access_typed(self, op, addr):
        memory = Memory()
        args = (addr,) if op.startswith("load") else (addr, 0)
        with pytest.raises(MemoryError_, match="misaligned"):
            getattr(memory, op)(*args)

    def test_machine_memory_cap_faults_with_report(self):
        # one page of budget; the second distinct page faults
        machine = asm_machine(
            "sw $0, 0($0)\nlui $t0, 0x1000\nsw $0, 0($t0)\n"
            "li $v0, 10\nsyscall",
            max_memory_bytes=4096)
        with pytest.raises(MemoryError_) as exc_info:
            machine.run()
        assert exc_info.value.crash_report is not None
        assert exc_info.value.pc == TEXT_BASE + 4 * 2  # the second sw


# -- partial-state isolation and caching --------------------------------------


class TestProfileIsolation:
    def test_failed_attempt_never_pollutes_retry_profile(self):
        strict = SuiteRunner(["queens"])
        clean = strict.run("queens")
        # fuel for about half the run: first attempt dies, the x4 retry
        # succeeds; the published profile must match a clean run exactly
        budget = max(1000, clean.instr_count // 2)
        degraded = SuiteRunner(["queens"], strict=False, retry_fuel_factor=4)
        degraded.limit_fuel("queens", budget)
        outcome = degraded.outcome("queens")
        assert outcome.ok and outcome.retried
        retried = outcome.require()
        assert retried.instr_count == clean.instr_count
        assert retried.profile.total_dynamic_branches \
            == clean.profile.total_dynamic_branches
        for addr in clean.loop_addresses + clean.non_loop_addresses:
            assert retried.profile.execution_count(addr) \
                == clean.profile.execution_count(addr)
            assert retried.profile.taken_count(addr) \
                == clean.profile.taken_count(addr)

    def test_failed_outcome_carries_no_run(self):
        runner = SuiteRunner(["queens"], strict=False, retry_fuel_factor=1)
        runner.limit_fuel("queens", 100)
        outcome = runner.outcome("queens")
        assert outcome.failed and outcome.run is None
        with pytest.raises(SimulationLimitExceeded):
            outcome.require()

    def test_negative_cache_returns_same_outcome(self):
        runner = SuiteRunner(["queens"], strict=False, retry_fuel_factor=1)
        runner.limit_fuel("queens", 100)
        first = runner.outcome("queens")
        second = runner.outcome("queens")
        assert first is second  # no re-execution, no fresh failure

    def test_compile_failure_negative_cached(self):
        runner = SuiteRunner(["queens"], strict=False)
        boom = ReproError("chaos: injected compile failure",
                          benchmark="queens", phase="compile")
        runner.poison_compile("queens", boom)
        with pytest.raises(ReproError):
            runner.compiled("queens")
        outcome = runner.outcome("queens")
        assert outcome.status is RunStatus.COMPILE_FAILED
        assert outcome.error is boom

    def test_memoized_success_not_invalidated_by_later_poison(self):
        runner = SuiteRunner(["queens"], strict=False)
        healthy = runner.outcome("queens")
        assert healthy.ok
        runner.poison_compile("queens", ReproError("late", phase="compile"))
        # run-level memoization still serves the healthy result
        assert runner.outcome("queens").ok


# -- the acceptance criterion: seven tables survive a sabotaged benchmark -----


class TestDegradedReport:
    @pytest.fixture(scope="class")
    def sabotaged(self):
        runner = SuiteRunner(SMALL, strict=False)
        sabotage(runner, "gauss", "opcode")
        return runner

    @pytest.fixture(scope="class")
    def strict_healthy(self):
        return SuiteRunner(["queens", "fields"], strict=True)

    def test_all_seven_tables_render(self, sabotaged):
        for gen in (table2, table3, table4, table5, table6, table7):
            text = gen(sabotaged).render()
            assert "FAILED" in text
            assert "gauss" in text
        # table1 is compile-only; a runtime fault still lists normally
        assert "gauss" in table1(sabotaged).render()

    def test_failed_rows_only_for_sabotaged(self, sabotaged):
        t2 = table2(sabotaged)
        assert [oc.benchmark for oc in t2.failed] == ["gauss"]
        assert sorted(r.name for r in t2.rows) == ["fields", "queens"]

    def test_healthy_rows_match_strict_run(self, sabotaged, strict_healthy):
        degraded_rows = {r.name: r for r in table2(sabotaged).rows}
        for row in table2(strict_healthy).rows:
            assert degraded_rows[row.name] == row

    def test_compile_fault_shows_in_table1(self):
        runner = SuiteRunner(["queens", "fields"], strict=False)
        sabotage(runner, "fields", "compile")
        text = table1(runner).render()
        assert "FAILED:compile-failed" in text
        assert "queens" in text

    def test_outcome_describe_lines(self, sabotaged):
        lines = [oc.describe() for oc in sabotaged.all_outcomes()]
        assert any("gauss/ref: FAILED:sim-failed" in line for line in lines)
        assert any(line.endswith(": ok") for line in lines)
