"""End-to-end tests for the telemetry CLIs:

* ``python -m repro.harness --telemetry DIR`` writes a loadable report
  bundle with the required span hierarchy;
* ``python -m repro.telemetry record/summarize/diff`` round-trips and
  gates regressions with the documented exit codes;
* the shared ``--log-level``/``--quiet`` flags control diagnostics.
"""

import json

import pytest

from repro.bcc.__main__ import main as bcc_main
from repro.harness.__main__ import main as harness_main
from repro.telemetry.__main__ import (
    EXIT_MALFORMED, EXIT_OK, EXIT_REGRESSION, main as telemetry_main,
)


@pytest.fixture
def report_dir(tmp_path):
    outdir = tmp_path / "tele"
    code = harness_main(["--benchmarks", "queens", "--tables", "1,2",
                         "--graphs", "", "--telemetry", str(outdir)])
    assert code == 0
    return outdir


class TestHarnessTelemetryFlag:
    def test_bundle_files_written(self, report_dir):
        for name in ("trace.json", "events.jsonl", "metrics.prom",
                     "summary.txt", "manifest.json", "telemetry.json"):
            assert (report_dir / name).exists(), name

    def test_chrome_trace_valid_and_deep(self, report_dir):
        trace = json.loads((report_dir / "trace.json").read_text())
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert events
        # suite(report) -> benchmark(run/compile) -> phase -> sub-phase
        assert max(e["args"]["depth"] for e in events) >= 4
        names = {e["name"] for e in events}
        assert "report" in names and "bcc.parse" in names

    def test_manifest_provenance(self, report_dir):
        manifest = json.loads((report_dir / "manifest.json").read_text())
        assert manifest["python"]
        assert manifest["config"]["benchmarks"] == ["queens"]
        assert len(manifest["config_hash"]) == 16

    def test_prometheus_has_sim_metrics(self, report_dir):
        text = (report_dir / "metrics.prom").read_text()
        assert "repro_sim_instructions_total" in text

    def test_jsonl_parses(self, report_dir):
        for line in (report_dir / "events.jsonl").read_text().splitlines():
            json.loads(line)

    def test_no_flag_no_output(self, tmp_path, capsys):
        assert harness_main(["--benchmarks", "queens", "--tables", "1",
                             "--graphs", ""]) == 0
        assert not list(tmp_path.iterdir())


class TestTelemetryCli:
    def _record(self, tmp_path, name="a.json"):
        out = tmp_path / name
        assert telemetry_main(["record", "-o", str(out),
                               "--benchmarks", "queens",
                               "--dataset", "small"]) == EXIT_OK
        return out

    def test_record_and_summarize(self, tmp_path, capsys):
        out = self._record(tmp_path)
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.telemetry.bench/v1"
        assert payload["counters"]["sim.instructions"] > 0
        assert telemetry_main(["summarize", str(out)]) == EXIT_OK
        stdout = capsys.readouterr().out
        assert "run:queens/small" in stdout
        assert "sim.instructions" in stdout

    def test_summarize_accepts_report_dir(self, tmp_path, capsys):
        outdir = tmp_path / "rep"
        assert harness_main(["--benchmarks", "queens", "--tables", "1",
                             "--graphs", "", "--telemetry",
                             str(outdir)]) == 0
        assert telemetry_main(["summarize", str(outdir)]) == EXIT_OK

    def test_diff_identity_ok(self, tmp_path):
        out = self._record(tmp_path)
        assert telemetry_main(["diff", str(out), str(out)]) == EXIT_OK

    def test_diff_flags_injected_slowdown(self, tmp_path, capsys):
        out = self._record(tmp_path)
        payload = json.loads(out.read_text())
        for entry in payload["spans"].values():
            entry["total_s"] *= 1.25   # inject a 25% slowdown everywhere
            entry["mean_s"] *= 1.25
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(payload))
        assert telemetry_main(["diff", str(out), str(slow),
                               "--threshold", "0.20"]) == EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_high_threshold_tolerates(self, tmp_path):
        out = self._record(tmp_path)
        payload = json.loads(out.read_text())
        for entry in payload["spans"].values():
            entry["total_s"] *= 1.25
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(payload))
        assert telemetry_main(["diff", str(out), str(slow),
                               "--threshold", "0.50"]) == EXIT_OK

    def test_diff_malformed_exit_2(self, tmp_path, capsys):
        out = self._record(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("{]")
        assert telemetry_main(["diff", str(out), str(bad)]) == EXIT_MALFORMED
        assert "malformed" in capsys.readouterr().err

    def test_committed_baseline_is_wellformed(self):
        from pathlib import Path
        from repro.telemetry.bench import load_report
        baseline = Path(__file__).resolve().parent.parent \
            / "BENCH_pipeline.json"
        payload = load_report(baseline)
        assert payload["counters"]["sim.instructions"] > 0
        assert "pipeline" in payload["spans"]


class TestLoggingFlags:
    def test_bcc_quiet_suppresses_diagnostics(self, tmp_path, capsys):
        src = tmp_path / "p.blc"
        src.write_text("int main() { print_int(7); return 0; }")
        assert bcc_main([str(src), "--run", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.out == "7"
        assert "compiled" not in captured.err

    def test_bcc_default_logs_compile_line(self, tmp_path, capsys):
        src = tmp_path / "p.blc"
        src.write_text("int main() { return 0; }")
        assert bcc_main([str(src)]) == 0
        err = capsys.readouterr().err
        assert "procedures" in err
        assert "INFO" in err  # structured format, not ad-hoc print

    def test_harness_quiet(self, capsys):
        assert harness_main(["--benchmarks", "queens", "--tables", "1",
                             "--graphs", "", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out     # report output untouched
        assert "done in" not in captured.err  # diagnostics silenced

    def test_bad_level_rejected(self, tmp_path, capsys):
        src = tmp_path / "p.blc"
        src.write_text("int main() { return 0; }")
        with pytest.raises(SystemExit):
            bcc_main([str(src), "--log-level", "shouting"])
