"""Guard-rail: telemetry must be (nearly) free when disabled.

The simulator dispatch loop is the hottest code in the repository; the
telemetry design keeps it clean by (a) accumulating plain local integers
and publishing once per run, and (b) sharing the pre-existing periodic
watchdog tick with the hot-PC sampler.  This test enforces the ISSUE's
acceptance criterion — disabled-mode overhead < 5% on the hot loop —
by comparing a run with the default disabled sink against a run with a
fully *enabled* sink (sampling off).  Since the per-instruction path is
identical in both modes (only end-of-run publishing differs), enabled ≈
disabled; asserting the stronger property bounds the disabled overhead
from above.

Timing tests are noisy: we take the best of several alternating runs and
allow one retry before failing.
"""

from time import perf_counter

from repro.bcc.driver import compile_and_link
from repro.sim import Machine
from repro.telemetry import Telemetry, flight
from repro.telemetry.flight import DEFAULT_CAPACITY, FlightRecorder

#: ~1M simulated instructions of pure branch/ALU work.
_HOT_PROGRAM = """
int main() {
    int i; int j; int s = 0;
    for (i = 0; i < 400; i++) {
        for (j = 0; j < 400; j++) {
            if ((i + j) % 3 == 0) { s += j; } else { s -= 1; }
        }
    }
    print_int(s);
    return 0;
}
"""

OVERHEAD_BUDGET = 0.05
ROUNDS = 3


def _time_run(executable, sink) -> float:
    machine = Machine(executable, telemetry=sink)
    start = perf_counter()
    machine.run()
    return perf_counter() - start


def _best_times(executable) -> tuple[float, float]:
    """Best-of-N wall time for (disabled, enabled), alternating order so
    cache/thermal drift hits both arms equally."""
    disabled_best = enabled_best = float("inf")
    for _ in range(ROUNDS):
        disabled_best = min(disabled_best,
                            _time_run(executable, Telemetry(enabled=False)))
        enabled_best = min(enabled_best,
                           _time_run(executable, Telemetry(enabled=True)))
    return disabled_best, enabled_best


def test_disabled_telemetry_overhead_under_5pct():
    executable = compile_and_link(_HOT_PROGRAM)
    _time_run(executable, Telemetry(enabled=False))  # warm-up
    for attempt in range(2):
        disabled, enabled = _best_times(executable)
        overhead = enabled / disabled - 1.0
        if overhead < OVERHEAD_BUDGET:
            break
    assert overhead < OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead * 100:.1f}% exceeds "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget "
        f"(disabled {disabled:.3f}s, enabled {enabled:.3f}s)")


def test_always_on_flight_recorder_overhead_under_5pct():
    """The flight recorder is *always on* (capacity 256 by default): the
    hot loop must not notice it.  Both arms run with telemetry disabled
    so any delta isolates the ring."""
    executable = compile_and_link(_HOT_PROGRAM)
    default = flight.get()
    assert default.enabled and default.capacity == DEFAULT_CAPACITY
    _time_run(executable, Telemetry(enabled=False))  # warm-up
    try:
        for attempt in range(2):
            off_best = on_best = float("inf")
            for _ in range(ROUNDS):
                flight.install(FlightRecorder(capacity=0))
                off_best = min(off_best, _time_run(
                    executable, Telemetry(enabled=False)))
                flight.install(default)
                on_best = min(on_best, _time_run(
                    executable, Telemetry(enabled=False)))
            overhead = on_best / off_best - 1.0
            if overhead < OVERHEAD_BUDGET:
                break
    finally:
        flight.install(default)
    assert overhead < OVERHEAD_BUDGET, (
        f"always-on flight recorder costs {overhead * 100:.1f}% on the "
        f"hot loop (disabled-ring {off_best:.3f}s, default {on_best:.3f}s)")


def test_flight_record_is_cheap_and_bounded():
    """Recording is O(1) per event: a burst far beyond any real event
    rate completes in bounded time and bounded memory."""
    ring = FlightRecorder(capacity=DEFAULT_CAPACITY)
    start = perf_counter()
    for i in range(10_000):
        ring.record("burst", index=i)
    elapsed = perf_counter() - start
    assert elapsed < 0.5, f"10k flight events took {elapsed:.3f}s"
    assert len(ring) == DEFAULT_CAPACITY  # ring never grows past capacity


def test_disabled_machine_records_nothing():
    executable = compile_and_link("int main() { return 0; }")
    sink = Telemetry(enabled=False)
    Machine(executable, telemetry=sink).run()
    assert sink.counters() == {}
    assert sink.spans == []


def test_sampling_is_off_by_default():
    executable = compile_and_link("int main() { return 0; }")
    machine = Machine(executable)
    machine.run()
    assert machine.hot_pc_samples == {}
    assert machine.pc_sample_interval is None
