"""SCEV trip counts vs ground truth over the benchmark suite.

The differential contract of :mod:`repro.analysis.scev`: for every
counted loop whose exit test is the loop's only exit, the predicted trip
count must agree with the observed edge profile — an *identity* for
exact counts (``continues == trips * entries``) and a *containment* for
interval ones (``min * entries <= continues <= max * entries``).  The
check itself lives in :mod:`repro.harness.scev_report` (the
``--scev-table`` CLI surface); tier 1 runs a fast three-benchmark slice,
tier 2 sweeps all 22.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import suite_names
from repro.harness.scev_report import scev_row, scev_table, trip_checks
from repro.harness.runner import SuiteRunner

#: small but diverse: gauss (many interval-counted loops), fields (exact
#: trips from literal bounds), huffman (exact trips + scev-decided facts)
MINI_SUITE = ("gauss", "fields", "huffman")


def _assert_all_ok(name: str, dataset: str) -> int:
    checks = trip_checks(name, dataset=dataset)
    bad = [c for c in checks if not c.ok]
    assert not bad, [
        (c.function, c.test_block, c.trip.min_trips, c.trip.max_trips,
         c.continues, c.exits) for c in bad]
    return sum(1 for c in checks if c.executed)


@pytest.mark.parametrize("bench_name", MINI_SUITE)
def test_trip_counts_match_observed(bench_name):
    executed = _assert_all_ok(bench_name, dataset="small")
    assert executed >= 1, "expected at least one executed counted loop"


def test_exact_trip_is_an_identity():
    # fields has literal-bound loops: at least one check must be exact
    # and executed, so the identity (not just containment) is exercised
    checks = trip_checks("fields", dataset="small")
    exact = [c for c in checks if c.trip.exact and c.executed]
    assert exact
    for check in exact:
        assert check.continues == check.trip.min_trips * check.exits


def test_scev_row_statistics():
    row = scev_row("fields", dataset="small")
    assert row.loops >= row.counted >= row.checked
    assert row.exact >= 1
    assert row.decided_scev >= 1
    assert row.mismatched == 0


def test_scev_table_renders():
    runner = SuiteRunner(benchmarks=["fields"])
    rendered = scev_table(runner).render()
    assert "fields" in rendered
    assert "bad must be 0" in rendered


@pytest.mark.tier2
@pytest.mark.parametrize("bench_name", suite_names())
def test_trip_counts_match_observed_full_suite(bench_name):
    _assert_all_ok(bench_name, dataset="ref")
