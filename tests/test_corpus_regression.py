"""Committed mini-corpus regression: byte determinism, characterization
goldens, and the dataset/fuel round-trip through the shard engine."""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.gen import (
    CorpusError, GenKnobs, characterize, corpus_runner, generate_corpus,
    load_corpus, manifest_dict, register_corpus, write_corpus,
)
from repro.harness.resilience import RunStatus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "corpus", "mini")
MINI_SEED = 7
MINI_COUNT = 64


@pytest.fixture(scope="module")
def mini_corpus():
    return load_corpus(CORPUS_DIR)


# -- byte determinism --------------------------------------------------------


def test_committed_corpus_loads_and_verifies(mini_corpus):
    assert len(mini_corpus) == MINI_COUNT
    assert [gp.index for gp in mini_corpus] == list(range(MINI_COUNT))
    assert all(gp.seed == MINI_SEED for gp in mini_corpus)


def test_regeneration_reproduces_committed_manifest_bytes(mini_corpus):
    """Same seed => byte-identical corpus: the generator's output today
    must equal the committed artifact exactly."""
    with open(os.path.join(CORPUS_DIR, "manifest.json"),
              encoding="utf-8") as handle:
        committed = handle.read()
    regenerated = generate_corpus(MINI_SEED, MINI_COUNT)
    payload = json.dumps(manifest_dict(regenerated, MINI_SEED, GenKnobs()),
                         indent=2, sort_keys=True) + "\n"
    assert payload == committed
    for gp, committed_gp in zip(regenerated, mini_corpus):
        assert gp.source == committed_gp.source


def test_two_invocations_write_identical_bytes(tmp_path):
    """write_corpus twice from the same seed: every byte equal."""
    a_dir, b_dir = tmp_path / "a", tmp_path / "b"
    write_corpus(generate_corpus(21, 4), str(a_dir), 21)
    write_corpus(generate_corpus(21, 4), str(b_dir), 21)
    files = sorted(p.name for p in a_dir.iterdir())
    assert files == sorted(p.name for p in b_dir.iterdir())
    for name in files:
        assert (a_dir / name).read_bytes() == (b_dir / name).read_bytes()


def test_drifted_source_is_rejected(tmp_path, mini_corpus):
    corrupt = tmp_path / "corrupt"
    corrupt.mkdir()
    shutil.copy(os.path.join(CORPUS_DIR, "manifest.json"), corrupt)
    for gp in mini_corpus:
        (corrupt / f"{gp.name}.blc").write_text(gp.source)
    victim = corrupt / f"{mini_corpus[0].name}.blc"
    victim.write_text(mini_corpus[0].source + "// drift\n")
    with pytest.raises(CorpusError, match="drifted"):
        load_corpus(str(corrupt))


# -- characterization goldens ------------------------------------------------


def test_characterization_slice_matches_golden(mini_corpus):
    """Per-cluster branch counts and miss rates over the first 10
    programs, pinned byte-for-byte — plus jobs=1 vs jobs=4 identity."""
    with open(os.path.join(CORPUS_DIR, "characterization_slice.json"),
              encoding="utf-8") as handle:
        golden = handle.read()
    programs = mini_corpus[:10]
    with register_corpus(programs, replace=True):
        serial = characterize(programs, corpus_runner(programs, jobs=1))
        parallel = characterize(programs, corpus_runner(programs, jobs=4))
    assert serial.dumps() == golden
    assert parallel.dumps() == golden


@pytest.mark.tier2
def test_characterization_full_matches_golden(mini_corpus):
    """The full 64-program characterization (with static evidence
    counts) against the committed golden."""
    with open(os.path.join(CORPUS_DIR, "characterization.json"),
              encoding="utf-8") as handle:
        golden = handle.read()
    with register_corpus(mini_corpus, replace=True):
        runner = corpus_runner(mini_corpus, jobs=4)
        report = characterize(mini_corpus, runner, evidence=True)
    assert report.dumps() == golden


def test_cluster_sanity_on_slice_golden():
    """Structural facts the taxonomy promises, read from the golden."""
    with open(os.path.join(CORPUS_DIR, "characterization_slice.json"),
              encoding="utf-8") as handle:
        payload = json.load(handle)
    clusters = payload["clusters"]
    # literal-bound nests are pure loop branches
    exact = clusters["loop.exact"]
    assert exact["loop_branches"] == exact["static_branches"]
    assert exact["attribution"] == {
        "LoopPredictor": exact["dynamic"]}
    # the adversarial cluster must not beat perfect by magic: its miss
    # rate stays at or above the perfect rate
    balanced = clusters["branch.balanced"]
    assert balanced["miss_rate"] >= balanced["perfect_rate"]
    # every cluster's perfect rate lower-bounds its heuristic rate
    for stats in clusters.values():
        assert stats["miss_rate"] >= stats["perfect_rate"] - 1e-9


# -- dataset/fuel round-trip through the shard engine ------------------------


def test_fuel_exhaustion_is_dataset_scoped(tmp_path):
    """A generated program starved of fuel on one dataset must (a) fail
    only that dataset, (b) leave its other dataset runnable, and (c)
    succeed again under the generator-paired budget without hitting the
    stale negative-cache entry — all through the parallel shard engine
    and the persistent artifact cache."""
    programs = generate_corpus(1113, 2)
    starved, healthy = programs[0], programs[1]
    with register_corpus(programs, replace=True):
        runner = corpus_runner(programs, jobs=2, strict=False,
                               cache_dir=str(tmp_path / "cache"))
        runner.limit_fuel(starved.name, 500, dataset="ref")

        outcomes = {oc.benchmark: oc for oc in runner.all_outcomes("ref")}
        assert outcomes[starved.name].failed
        assert outcomes[starved.name].status is RunStatus.TIMEOUT
        assert outcomes[healthy.name].ok

        # the same program's other dataset keeps its paired budget
        assert runner.outcome(starved.name, "alt").ok

        # restore the generator-paired budget: the limits fingerprint
        # changes, so the negative cache must not swallow the rerun
        paired = starved.datasets[0].fuel
        runner.limit_fuel(starved.name, paired, dataset="ref")
        assert runner.outcome(starved.name, "ref").ok


def test_paired_fuel_reaches_shard_limits():
    """corpus_runner installs each dataset's own budget (not a global)."""
    programs = generate_corpus(1114, 1)
    gp = programs[0]
    with register_corpus(programs, replace=True):
        runner = corpus_runner(programs)
        for ds in gp.datasets:
            budget, keep, memory = runner._effective_limits(gp.name,
                                                            ds.name)
            assert budget == ds.fuel
            assert keep is None and memory is None
