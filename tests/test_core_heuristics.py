"""Tests for the seven non-loop heuristics (Section 4), each on crafted
assembly exercising its apply/not-apply conditions."""

import pytest

from repro.core.classify import Prediction, classify_branches
from repro.core.heuristics import (
    HEURISTIC_NAMES, HEURISTICS, PAPER_ORDER, applicable_heuristics,
    call_heuristic, guard_heuristic, loop_heuristic, opcode_heuristic,
    pointer_heuristic, return_heuristic, store_heuristic,
)
from repro.isa import assemble

TAKEN = Prediction.TAKEN
NOT_TAKEN = Prediction.NOT_TAKEN


def branch_of(body: str, pick: int = 0):
    """Assemble a program; return (branch, proc_analysis) for its pick-th
    conditional branch (in address order). The body is wrapped in procedure
    f unless it manages its own .end directives (multi-procedure tests)."""
    if ".end f" in body:
        src = f".text\n.ent f\nf:\n{body}\n"
    else:
        src = f".text\n.ent f\nf:\n{body}\n.end f\n"
    analysis = classify_branches(assemble(src))
    branches = sorted(analysis.branches.values(), key=lambda b: b.address)
    branch = branches[pick]
    return branch, analysis.analysis_of(branch)


class TestOpcodeHeuristic:
    @pytest.mark.parametrize("op,expected", [
        ("bltz", NOT_TAKEN), ("blez", NOT_TAKEN),
        ("bgtz", TAKEN), ("bgez", TAKEN),
    ])
    def test_zero_compares(self, op, expected):
        branch, pa = branch_of(f"{op} $t0, L\nnop\nL: jr $ra")
        assert opcode_heuristic(branch, pa) is expected

    def test_beq_bne_not_covered(self):
        branch, pa = branch_of("beq $t0, $t1, L\nnop\nL: jr $ra")
        assert opcode_heuristic(branch, pa) is None

    def test_fp_equality_bc1t_predicts_not_taken(self):
        branch, pa = branch_of(
            "c.eq.d $f2, $f4\nbc1t L\nnop\nL: jr $ra")
        assert opcode_heuristic(branch, pa) is NOT_TAKEN

    def test_fp_equality_bc1f_predicts_taken(self):
        branch, pa = branch_of(
            "c.eq.d $f2, $f4\nbc1f L\nnop\nL: jr $ra")
        assert opcode_heuristic(branch, pa) is TAKEN

    def test_fp_less_than_not_covered(self):
        branch, pa = branch_of(
            "c.lt.d $f2, $f4\nbc1t L\nnop\nL: jr $ra")
        assert opcode_heuristic(branch, pa) is None

    def test_fp_branch_without_compare_in_block(self):
        # compare in a previous block: the branch's own block has none
        branch, pa = branch_of(
            "c.eq.d $f2, $f4\nj M\nM: bc1t L\nnop\nL: jr $ra")
        assert opcode_heuristic(branch, pa) is None


class TestLoopHeuristic:
    GUARDED_LOOP = """
    beq $t0, $zero, Lskip
Lhead:
    addiu $t1, $t1, 1
    bgtz $t1, Lhead
Lskip:
    jr $ra
"""

    def test_guard_predicts_into_loop(self):
        branch, pa = branch_of(self.GUARDED_LOOP)
        # fall-through successor is the loop head; predict it (NOT_TAKEN)
        assert loop_heuristic(branch, pa) is NOT_TAKEN

    def test_both_successors_loop_heads_no_prediction(self):
        branch, pa = branch_of("""
    beq $t0, $zero, LheadB
LheadA:
    addiu $t1, $t1, 1
    bgtz $t1, LheadA
    j Lend
LheadB:
    addiu $t2, $t2, 1
    bgtz $t2, LheadB
Lend:
    jr $ra
""")
        assert loop_heuristic(branch, pa) is None

    def test_preheader_successor(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lskip
    addiu $t1, $zero, 10
Lhead:
    addiu $t1, $t1, -1
    bgtz $t1, Lhead
Lskip:
    jr $ra
""")
        # the fall-through block is a preheader: it passes control
        # unconditionally to the loop head, which it dominates
        assert loop_heuristic(branch, pa) is NOT_TAKEN

    def test_preheader_at_distance_not_covered(self):
        """The heuristic is local: a successor that merely jumps to a
        preheader (two steps from the loop head) is not covered."""
        branch, pa = branch_of("""
    beq $t0, $zero, Lskip
    j Lpre
Lpre:
    addiu $t1, $zero, 10
Lhead:
    addiu $t1, $t1, -1
    bgtz $t1, Lhead
Lskip:
    jr $ra
""")
        assert loop_heuristic(branch, pa) is None

    def test_no_loops_no_prediction(self):
        branch, pa = branch_of("beq $t0, $zero, L\nnop\nL: jr $ra")
        assert loop_heuristic(branch, pa) is None


class TestCallHeuristic:
    WITH_CALL = """
    beq $t0, $zero, Lcall
    addiu $t1, $t1, 1
    j Lend
Lcall:
    jal g
Lend:
    jr $ra
.end f
.ent g
g:
    jr $ra
.end g
"""

    def branch(self, body):
        return branch_of(body)

    def test_predicts_successor_without_call(self):
        branch, pa = self.branch(self.WITH_CALL)
        assert call_heuristic(branch, pa) is NOT_TAKEN

    def test_call_through_unconditional_chain(self):
        branch, pa = self.branch("""
    beq $t0, $zero, Lhop
    addiu $t1, $t1, 1
    j Lend
Lhop:
    j Lcall
Lcall:
    jal g
Lend:
    jr $ra
.end f
.ent g
g:
    jr $ra
.end g
""")
        assert call_heuristic(branch, pa) is NOT_TAKEN

    def test_postdominating_call_blocks_heuristic(self):
        branch, pa = self.branch("""
    beq $t0, $zero, Ljoin
    addiu $t1, $t1, 1
Ljoin:
    jal g
    jr $ra
.end f
.ent g
g:
    jr $ra
.end g
""")
        # the call is in the join block, which postdominates the branch
        assert call_heuristic(branch, pa) is None

    def test_calls_on_both_sides_no_prediction(self):
        branch, pa = self.branch("""
    beq $t0, $zero, Lb
    jal g
    j Lend
Lb:
    jal g
Lend:
    jr $ra
.end f
.ent g
g:
    jr $ra
.end g
""")
        assert call_heuristic(branch, pa) is None


class TestReturnHeuristic:
    def test_predicts_non_return_successor(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lret
    addiu $t1, $t1, 1
Lmore:
    bne $t1, $t3, Lmore
    jr $ra
Lret:
    jr $ra
""")
        assert return_heuristic(branch, pa) is NOT_TAKEN

    def test_return_through_unconditional_chain(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lhop
    addiu $t1, $t1, 1
Lmore:
    bne $t1, $t3, Lmore
    jr $ra
Lhop:
    j Lret
Lret:
    jr $ra
""")
        assert return_heuristic(branch, pa) is NOT_TAKEN

    def test_both_return_no_prediction(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lret
    jr $ra
Lret:
    jr $ra
""")
        assert return_heuristic(branch, pa) is None


class TestGuardHeuristic:
    def test_register_use_guarded(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lskip
    addiu $t1, $t0, 1
Lskip:
    jr $ra
""")
        assert guard_heuristic(branch, pa) is NOT_TAKEN

    def test_redefinition_before_use_blocks(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lskip
    addiu $t0, $zero, 5
    addiu $t1, $t0, 1
Lskip:
    jr $ra
""")
        assert guard_heuristic(branch, pa) is None

    def test_call_stops_scan(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lskip
    jal g
    addiu $t1, $t0, 1
Lskip:
    jr $ra
.end f
.ent g
g:
    jr $ra
.end g
""")
        assert guard_heuristic(branch, pa) is None

    def test_fp_guard(self):
        branch, pa = branch_of("""
    c.lt.d $f2, $f4
    bc1t Lskip
    add.d $f6, $f2, $f2
Lskip:
    jr $ra
""")
        assert guard_heuristic(branch, pa) is NOT_TAKEN

    def test_zero_register_not_watched(self):
        branch, pa = branch_of("""
    beq $zero, $zero, Lskip
    addiu $t1, $t1, 1
Lskip:
    jr $ra
""")
        assert guard_heuristic(branch, pa) is None

    def test_postdominating_user_blocks(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Ljoin
    addiu $t2, $t2, 1
Ljoin:
    addiu $t1, $t0, 1
    jr $ra
""")
        # $t0 used in the join block, but it postdominates the branch
        assert guard_heuristic(branch, pa) is None

    def test_use_on_both_sides_no_prediction(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lb
    addiu $t1, $t0, 1
    j Lend
Lb:
    addiu $t2, $t0, 2
Lend:
    jr $ra
""")
        assert guard_heuristic(branch, pa) is None


class TestStoreHeuristic:
    def test_predicts_away_from_store(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lskip
    sw $t1, 0($sp)
Lskip:
    jr $ra
""")
        assert store_heuristic(branch, pa) is TAKEN

    def test_fp_store_counts(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lskip
    sdc1 $f2, 0($sp)
Lskip:
    jr $ra
""")
        assert store_heuristic(branch, pa) is TAKEN

    def test_stores_on_both_sides(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Lb
    sw $t1, 0($sp)
    j Lend
Lb:
    sw $t2, 4($sp)
Lend:
    jr $ra
""")
        assert store_heuristic(branch, pa) is None

    def test_postdominating_store_blocks(self):
        branch, pa = branch_of("""
    beq $t0, $zero, Ljoin
    addiu $t1, $t1, 1
Ljoin:
    sw $t1, 0($sp)
    jr $ra
""")
        assert store_heuristic(branch, pa) is None


class TestPointerHeuristic:
    def test_null_test_beq(self):
        branch, pa = branch_of("""
    lw $t0, 0($sp)
    beq $t0, $zero, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is NOT_TAKEN

    def test_null_test_bne(self):
        branch, pa = branch_of("""
    lw $t0, 0($sp)
    bne $t0, $zero, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is TAKEN

    def test_two_pointer_comparison(self):
        branch, pa = branch_of("""
    lw $t0, 0($sp)
    lw $t1, 4($sp)
    beq $t0, $t1, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is NOT_TAKEN

    def test_gp_load_excluded(self):
        branch, pa = branch_of("""
    lw $t0, 0($gp)
    beq $t0, $zero, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is None

    def test_call_between_load_and_branch_excluded(self):
        branch, pa = branch_of("""
    lw $t0, 0($sp)
    jal g
    beq $t0, $zero, L
    nop
L:  jr $ra
.end f
.ent g
g:
    jr $ra
.end g
""")
        assert pointer_heuristic(branch, pa) is None

    def test_non_load_definition_excluded(self):
        branch, pa = branch_of("""
    addiu $t0, $zero, 4
    beq $t0, $zero, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is None

    def test_byte_load_excluded(self):
        branch, pa = branch_of("""
    lb $t0, 0($sp)
    beq $t0, $zero, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is None

    def test_one_operand_not_loaded_excluded(self):
        branch, pa = branch_of("""
    lw $t0, 0($sp)
    beq $t0, $t1, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is None

    def test_zero_compare_opcode_branch_not_pointer(self):
        branch, pa = branch_of("""
    lw $t0, 0($sp)
    bgtz $t0, L
    nop
L:  jr $ra
""")
        assert pointer_heuristic(branch, pa) is None


class TestRegistry:
    def test_names_complete(self):
        assert set(HEURISTIC_NAMES) == set(HEURISTICS)
        assert len(HEURISTIC_NAMES) == 7

    def test_paper_order_is_permutation(self):
        assert sorted(PAPER_ORDER) == sorted(HEURISTIC_NAMES)

    def test_applicable_heuristics_table(self):
        branch, pa = branch_of("""
    lw $t0, 0($sp)
    beq $t0, $zero, Lskip
    addiu $t1, $t0, 1
    sw $t1, 4($sp)
Lskip:
    jr $ra
""")
        table = applicable_heuristics(branch, pa)
        assert table["Point"] is NOT_TAKEN
        assert table["Guard"] is NOT_TAKEN
        assert table["Store"] is TAKEN
        assert "Opcode" not in table
