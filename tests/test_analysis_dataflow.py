"""The generic dataflow engine and the interval lattice, in isolation.

The solver is structure-agnostic (anything with ``label`` +
``successor_labels()``), so these tests drive it over tiny stub CFGs
where the exact fixpoint is computable by hand:

* convergence on a diamond, a self-loop, and an *irreducible* two-headed
  loop (no reducible-CFG assumption anywhere in the engine);
* backward orientation (boundary at exit blocks, mirrored IN/OUT);
* SCCP-style edge pruning via the :data:`UNREACHABLE` edge result;
* widening termination on a counting loop whose ascending chain is far
  longer than the iteration budget — and the matching divergence error
  when widening is disabled;
* narrowing sweeps recovering the loop-counter bound widening discarded.

The lattice half checks the properties the branch-evidence soundness
claim actually rests on, with hypothesis: every abstract transfer /
refinement / comparison must over-approximate the machine's concrete
arithmetic (via ``_fold_binop``, which the fold-vs-machine differential
test pins to the simulator), and the arithmetic core is monotone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import lattice
from repro.analysis.dataflow import (
    BACKWARD, DataflowDivergenceError, DataflowProblem, UNREACHABLE,
    Unreachable, solve,
)
from repro.analysis.lattice import INT32_MAX, INT32_MIN, Interval
from repro.bcc.opt import _fold_binop

# -- stub CFG ---------------------------------------------------------------


@dataclass
class Stub:
    """Minimal BlockLike: a label and its successor labels."""

    label: str
    succs: tuple[str, ...] = ()

    def successor_labels(self) -> tuple[str, ...]:
        return self.succs


class UnionProblem(DataflowProblem[frozenset]):
    """Gen-only union problem: OUT(B) = IN(B) | {B.label}.

    The fixpoint is the set of labels on some path from the entry — easy
    to hand-compute even on irreducible graphs.
    """

    name = "test-union"

    def boundary(self, block):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, state):
        return state | {block.label}


def test_diamond_converges_to_path_labels():
    blocks = [Stub("entry", ("a", "b")), Stub("a", ("merge",)),
              Stub("b", ("merge",)), Stub("merge", ())]
    result = solve(blocks, UnionProblem())
    assert result.block_in["merge"] == {"entry", "a", "b"}
    assert result.block_out["merge"] == {"entry", "a", "b", "merge"}
    assert result.block_in["a"] == {"entry"}


def test_self_loop_converges():
    blocks = [Stub("entry", ("loop",)), Stub("loop", ("loop", "exit")),
              Stub("exit", ())]
    result = solve(blocks, UnionProblem())
    # the self-edge feeds the block its own OUT: IN must absorb it
    assert result.block_in["loop"] == {"entry", "loop"}
    assert result.block_in["exit"] == {"entry", "loop"}


def test_irreducible_cfg_converges():
    """Two-headed loop (entry jumps into both headers): no dominator /
    reducibility assumption may creep into the engine."""
    blocks = [Stub("entry", ("a", "b")), Stub("a", ("b",)),
              Stub("b", ("a",))]
    result = solve(blocks, UnionProblem())
    assert result.block_in["a"] == {"entry", "a", "b"}
    assert result.block_in["b"] == {"entry", "a", "b"}


def test_unreachable_block_keeps_bottom():
    blocks = [Stub("entry", ("exit",)), Stub("exit", ()),
              Stub("orphan", ("exit",))]
    result = solve(blocks, UnionProblem())
    assert not result.reachable("orphan")
    assert isinstance(result.block_in["orphan"], Unreachable)
    # the orphan's edge into `exit` contributes nothing
    assert result.block_in["exit"] == {"entry"}


def test_empty_cfg_is_a_noop():
    result = solve([], UnionProblem())
    assert result.block_in == {} and result.block_out == {}


def test_backward_orientation_mirrors_in_out():
    """Liveness-shaped run: boundary at the exit block, IN is always the
    state *before* the block in program order."""

    class BackwardUnion(UnionProblem):
        direction = BACKWARD

    blocks = [Stub("entry", ("mid",)), Stub("mid", ("exit",)),
              Stub("exit", ())]
    result = solve(blocks, BackwardUnion())
    assert result.block_out["exit"] == frozenset()       # boundary
    assert result.block_in["exit"] == {"exit"}
    assert result.block_out["mid"] == {"exit"}
    assert result.block_in["entry"] == {"entry", "mid", "exit"}


def test_edge_pruning_removes_the_contribution():
    """Returning UNREACHABLE from transfer_edge cuts the edge (the SCCP
    executable-edges mechanism)."""

    class Pruned(UnionProblem):
        def transfer_edge(self, src, dst_label, state):
            if src.label == "entry" and dst_label == "b":
                return UNREACHABLE
            return state

    blocks = [Stub("entry", ("a", "b")), Stub("a", ("merge",)),
              Stub("b", ("merge",)), Stub("merge", ())]
    result = solve(blocks, Pruned())
    assert not result.reachable("b")
    assert result.block_in["merge"] == {"entry", "a"}


# -- widening / narrowing on a counting loop --------------------------------


class CountingLoop(DataflowProblem[Interval]):
    """``x = 0; while (x < limit) x = x + 1;`` over stub blocks.

    State is the interval of ``x``.  The ascending chain at the loop head
    has ``limit`` steps, so any ``limit`` beyond the iteration budget
    *requires* widening to terminate — exactly the situation the interval
    client is in.
    """

    name = "test-counting"

    def __init__(self, limit: int, widening: bool = True,
                 narrowing: int = 0) -> None:
        self.limit = limit
        self._widening = widening
        self.narrow_iterations = narrowing

    def boundary(self, block):
        return lattice.const(0)

    def join(self, a, b):
        return lattice.join(a, b)

    def transfer(self, block, state):
        if block.label == "body":
            return lattice.transfer_binop("add", state, lattice.const(1))
        return state

    def transfer_edge(self, src, dst_label, state):
        if src.label != "head":
            return state
        refined, _ = lattice.refine("lt", state,
                                    lattice.const(self.limit),
                                    dst_label == "body")
        return refined if refined is not None else UNREACHABLE

    def widen(self, old, new):
        return lattice.widen(old, new) if self._widening else new


LOOP = [Stub("entry", ("head",)), Stub("head", ("body", "exit")),
        Stub("body", ("head",)), Stub("exit", ())]


def test_widening_terminates_on_a_huge_loop():
    limit = 1_000_000  # chain length >> iteration budget
    result = solve(LOOP, CountingLoop(limit))
    assert result.iterations < 100
    # sound but widened: the exit knows the lower bound, not the upper
    exit_in = result.block_in["exit"]
    assert exit_in.lo == limit and exit_in.hi == INT32_MAX


def test_without_widening_the_huge_loop_diverges():
    with pytest.raises(DataflowDivergenceError):
        solve(LOOP, CountingLoop(1_000_000, widening=False),
              max_iterations=300)


def test_without_widening_a_small_loop_is_exact():
    result = solve(LOOP, CountingLoop(5, widening=False))
    assert result.block_in["head"] == Interval(0, 5)
    assert result.block_in["exit"] == Interval(5, 5)


def test_narrowing_recovers_the_widened_bound():
    """The decreasing sweeps re-apply the back-edge refinement, turning
    the widened ``[limit, INT32_MAX]`` exit state back into the exact
    ``[limit, limit]`` — this is what lets the range analysis decide
    branches on loop counters."""
    limit = 1_000_000
    widened = solve(LOOP, CountingLoop(limit))
    narrowed = solve(LOOP, CountingLoop(limit, narrowing=2))
    assert widened.block_in["exit"].hi == INT32_MAX
    assert narrowed.block_in["head"] == Interval(0, limit)
    assert narrowed.block_in["exit"] == Interval(limit, limit)


def test_narrowing_never_loses_reachability():
    result = solve(LOOP, CountingLoop(7, narrowing=3))
    assert all(result.reachable(b.label) for b in LOOP)


# -- interval lattice properties (hypothesis) -------------------------------

_ALL_OPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
            "shl", "shr", "sru", "slt", "sltu")
#: ops whose transfer is monotone by construction (exact corner hulls)
_MONOTONE_OPS = ("add", "sub", "mul", "slt")

_CMP = {"eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b}

_POINTS = st.one_of(
    st.integers(INT32_MIN, INT32_MAX),
    st.sampled_from([0, 1, -1, 31, 32, INT32_MIN, INT32_MAX]))


@st.composite
def intervals(draw) -> Interval:
    a = draw(_POINTS)
    b = draw(_POINTS)
    return Interval(min(a, b), max(a, b))


def _contains(outer: Interval, inner: Interval) -> bool:
    return outer.lo <= inner.lo and inner.hi <= outer.hi


@given(data=st.data(), op=st.sampled_from(_ALL_OPS))
@settings(max_examples=200, deadline=None)
def test_transfer_binop_is_sound(data, op):
    """For any concrete pair inside the operand intervals, the machine
    result (``_fold_binop`` == the simulator, by the differential test)
    lies inside the abstract result.  This is the property the zero-
    misclassification promise rests on."""
    a = data.draw(intervals())
    b = data.draw(intervals())
    x = data.draw(st.integers(a.lo, a.hi))
    y = data.draw(st.integers(b.lo, b.hi))
    abstract = lattice.transfer_binop(op, a, b)
    concrete = _fold_binop(op, x, y)
    if concrete is None:  # div/rem by zero: the machine faults instead
        return
    assert abstract.contains(concrete), (
        f"{op}: {concrete} = {op}({x}, {y}) escapes {abstract} "
        f"for operands {a} x {b}")


@given(data=st.data(), op=st.sampled_from(_MONOTONE_OPS))
@settings(max_examples=150, deadline=None)
def test_transfer_binop_arithmetic_core_is_monotone(data, op):
    """Wider operands never yield a narrower result (the classical
    convergence argument for the worklist iteration)."""
    outer_a = data.draw(intervals())
    outer_b = data.draw(intervals())
    inner_a = Interval(data.draw(st.integers(outer_a.lo, outer_a.hi)),
                       outer_a.hi)
    inner_a = Interval(inner_a.lo,
                       data.draw(st.integers(inner_a.lo, outer_a.hi)))
    inner_b = Interval(data.draw(st.integers(outer_b.lo, outer_b.hi)),
                       outer_b.hi)
    inner_b = Interval(inner_b.lo,
                       data.draw(st.integers(inner_b.lo, outer_b.hi)))
    small = lattice.transfer_binop(op, inner_a, inner_b)
    big = lattice.transfer_binop(op, outer_a, outer_b)
    assert _contains(big, small), (
        f"{op} not monotone: {inner_a}x{inner_b} -> {small} but "
        f"{outer_a}x{outer_b} -> {big}")


@given(data=st.data(), op=st.sampled_from(sorted(_CMP)))
@settings(max_examples=200, deadline=None)
def test_refine_keeps_every_witness(data, op):
    """A concrete pair that produced the branch outcome must survive the
    edge refinement (otherwise refinement could prune a reachable edge)."""
    a = data.draw(intervals())
    b = data.draw(intervals())
    x = data.draw(st.integers(a.lo, a.hi))
    y = data.draw(st.integers(b.lo, b.hi))
    outcome = _CMP[op](x, y)
    ra, rb = lattice.refine(op, a, b, outcome)
    assert ra is not None and ra.contains(x), (
        f"{op}={outcome}: witness {x} refined away from {a} -> {ra}")
    assert rb is not None and rb.contains(y), (
        f"{op}={outcome}: witness {y} refined away from {b} -> {rb}")


@given(data=st.data(), op=st.sampled_from(sorted(_CMP)))
@settings(max_examples=200, deadline=None)
def test_compare_decisions_hold_for_every_point(data, op):
    a = data.draw(intervals())
    b = data.draw(intervals())
    decided = lattice.compare(op, a, b)
    if decided is None:
        return
    x = data.draw(st.integers(a.lo, a.hi))
    y = data.draw(st.integers(b.lo, b.hi))
    assert _CMP[op](x, y) == decided, (
        f"compare({op}, {a}, {b}) = {decided} but {x} {op} {y} disagrees")


@given(a=intervals(), b=intervals())
@settings(max_examples=100, deadline=None)
def test_join_is_the_hull_and_meet_the_intersection(a, b):
    joined = lattice.join(a, b)
    assert _contains(joined, a) and _contains(joined, b)
    assert lattice.join(a, b) == lattice.join(b, a)
    met = lattice.meet(a, b)
    if met is None:
        assert a.hi < b.lo or b.hi < a.lo
    else:
        assert _contains(a, met) and _contains(b, met)


@given(start=intervals(), steps=st.lists(intervals(), min_size=1,
                                         max_size=40))
@settings(max_examples=100, deadline=None)
def test_widening_chains_stabilize_within_two_steps(start, steps):
    """Each bound can widen at most once, so any widening sequence
    changes the state at most twice — the termination argument."""
    state = start
    changes = 0
    for new in steps:
        widened = lattice.widen(state, lattice.join(state, new))
        assert _contains(widened, state) and _contains(widened, new)
        if widened != state:
            changes += 1
        state = widened
    assert changes <= 2
