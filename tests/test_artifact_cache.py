"""Property tests for the persistent artifact cache.

Two families of guarantees (docs/performance.md):

* **Key purity** — a cache key is a pure function of its inputs: equal
  inputs give equal keys, and changing ANY single input (source text,
  pass spec, optimize flag, dataset, effective limits, repro version)
  changes the key.  This is what makes "cache hit" mean "provably the
  same computation".
* **Integrity** — an entry read back from disk is either byte-perfect or
  treated as a miss: truncation, bit flips, garbage, stale
  schema/version, and key/kind mismatches are all detected, evicted, and
  recomputed.  A corrupted cache can cost time, never correctness.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.cache import (
    ArtifactCache, CACHE_SCHEMA, _MAGIC, compile_key, run_key,
)

# -- strategies ---------------------------------------------------------------

names = st.text(st.characters(min_codepoint=32, max_codepoint=126),
                min_size=1, max_size=20)
sources = st.text(max_size=200)
pass_specs = st.lists(names, max_size=4).map(tuple)
inputs_vectors = st.lists(st.integers(-2**31, 2**31 - 1), max_size=8).map(tuple)
fuel_budgets = st.integers(1, 10**12)
memory_caps = st.one_of(st.none(), st.integers(4096, 2**40))
payloads = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(), st.text(max_size=30)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=12)


# -- key purity ---------------------------------------------------------------

@given(benchmark=names, source=sources, optimize=st.booleans(),
       spec=pass_specs)
def test_compile_key_is_deterministic(benchmark, source, optimize, spec):
    k1 = compile_key(benchmark, source, optimize, pass_spec=spec)
    k2 = compile_key(benchmark, source, optimize, pass_spec=spec)
    assert k1 == k2
    assert len(k1) == 64 and all(c in "0123456789abcdef" for c in k1)


@given(benchmark=names, source=sources, other=sources, spec=pass_specs)
def test_compile_key_depends_on_source(benchmark, source, other, spec):
    if source == other:
        return
    assert (compile_key(benchmark, source, True, pass_spec=spec)
            != compile_key(benchmark, other, True, pass_spec=spec))


@given(benchmark=names, source=sources, spec=pass_specs,
       other_spec=pass_specs)
def test_compile_key_depends_on_pass_spec(benchmark, source, spec,
                                          other_spec):
    if spec == other_spec:
        return
    assert (compile_key(benchmark, source, True, pass_spec=spec)
            != compile_key(benchmark, source, True, pass_spec=other_spec))


@given(benchmark=names, source=sources, spec=pass_specs)
def test_compile_key_depends_on_version(benchmark, source, spec):
    assert (compile_key(benchmark, source, True, pass_spec=spec,
                        version="1.0.0")
            != compile_key(benchmark, source, True, pass_spec=spec,
                           version="1.0.1"))


@given(dataset=names, inputs=inputs_vectors, fuel=fuel_budgets,
       memory=memory_caps, retry=st.integers(1, 10))
def test_run_key_is_deterministic(dataset, inputs, fuel, memory, retry):
    k1 = run_key("c" * 64, dataset, inputs, fuel, memory, retry)
    k2 = run_key("c" * 64, dataset, inputs, fuel, memory, retry)
    assert k1 == k2


@given(dataset=names, inputs=inputs_vectors, fuel=fuel_budgets,
       fuel2=fuel_budgets, memory=memory_caps)
def test_run_key_depends_on_fuel_budget(dataset, inputs, fuel, fuel2,
                                        memory):
    if fuel == fuel2:
        return
    assert (run_key("c" * 64, dataset, inputs, fuel, memory, 1)
            != run_key("c" * 64, dataset, inputs, fuel2, memory, 1))


@given(dataset=names, inputs=inputs_vectors, other=inputs_vectors,
       fuel=fuel_budgets)
def test_run_key_depends_on_inputs(dataset, inputs, other, fuel):
    if inputs == other:
        return
    assert (run_key("c" * 64, dataset, inputs, fuel, None, 1)
            != run_key("c" * 64, dataset, other, fuel, None, 1))


def test_run_key_depends_on_every_scalar_field():
    base = dict(compile_digest="c" * 64, dataset="ref", inputs=(1, 2),
                fuel_budget=1000, max_memory_bytes=None,
                retry_fuel_factor=1)
    k0 = run_key(**base)
    for field, value in [("compile_digest", "d" * 64), ("dataset", "small"),
                         ("inputs", (1, 2, 3)), ("fuel_budget", 1001),
                         ("max_memory_bytes", 4096),
                         ("retry_fuel_factor", 4)]:
        assert run_key(**{**base, field: value}) != k0, field


# -- integrity ----------------------------------------------------------------

@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def test_roundtrip(cache):
    key = compile_key("queens", "src", True, pass_spec=("a",))
    payload = {"ok": True, "data": [1, 2, 3]}
    assert cache.put(key, "compile", payload)
    assert cache.get(key, "compile") == payload
    assert cache.stats()["hits"] == 1


@settings(max_examples=25, deadline=None)
@given(payload=payloads)
def test_roundtrip_arbitrary_payloads(tmp_path_factory, payload):
    cache = ArtifactCache(tmp_path_factory.mktemp("c"))
    key = run_key("c" * 64, "ref", (), 1, None, 1)
    assert cache.put(key, "run", payload)
    assert cache.get(key, "run") == payload


def test_miss_on_absent_key(cache):
    assert cache.get("0" * 64, "run") is None
    assert cache.stats() == {"hits": 0, "misses": 1, "corrupt": 0,
                             "stores": 0, "store_skipped": 0,
                             "tmp_swept": 0, "leases_swept": 0,
                             "entries": 0}


def _entry_path(cache, key):
    path = cache.path_for(key)
    assert path.is_file()
    return path


def _stored(cache, payload={"ok": True, "n": 7}):
    key = run_key("c" * 64, "ref", (1,), 100, None, 1)
    assert cache.put(key, "run", payload)
    return key, _entry_path(cache, key)


@settings(max_examples=30, deadline=None)
@given(cut=st.integers(0, 200))
def test_truncation_is_a_miss_and_evicts(tmp_path_factory, cut):
    cache = ArtifactCache(tmp_path_factory.mktemp("c"))
    key, path = _stored(cache)
    blob = path.read_bytes()
    path.write_bytes(blob[:min(cut, len(blob) - 1)])
    assert cache.get(key, "run") is None
    assert not path.exists(), "corrupt entry must be evicted"
    assert cache.corrupt == 1


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_single_bit_flip_is_a_miss(tmp_path_factory, data):
    cache = ArtifactCache(tmp_path_factory.mktemp("c"))
    key, path = _stored(cache)
    blob = bytearray(path.read_bytes())
    pos = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    blob[pos] ^= 1 << bit
    path.write_bytes(bytes(blob))
    assert cache.get(key, "run") is None, \
        f"bit flip at byte {pos} bit {bit} must not be trusted"
    assert not path.exists()


@settings(max_examples=25, deadline=None)
@given(garbage=st.binary(max_size=256))
def test_garbage_file_is_a_miss(tmp_path_factory, garbage):
    cache = ArtifactCache(tmp_path_factory.mktemp("c"))
    key, path = _stored(cache)
    path.write_bytes(garbage)
    assert cache.get(key, "run") is None
    assert not path.exists()


def _forge(cache, key, envelope):
    """Write a well-formed (magic + digest) entry with a forged envelope."""
    import hashlib
    body = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(_MAGIC + hashlib.sha256(body).digest() + body)


@pytest.mark.parametrize("mutation", [
    {"schema": CACHE_SCHEMA + 1},            # future schema
    {"version": "0.0.0-prehistoric"},        # stale repro version
    {"key": "f" * 64},                       # entry for a different key
    {"kind": "compile"},                     # wrong artifact kind
])
def test_stale_or_mismatched_envelope_is_a_miss(cache, mutation):
    key = run_key("c" * 64, "ref", (1,), 100, None, 1)
    envelope = {"schema": CACHE_SCHEMA, "version": cache.version,
                "key": key, "kind": "run", "payload": {"ok": True}}
    envelope.update(mutation)
    _forge(cache, key, envelope)
    assert cache.get(key, "run") is None
    assert not cache.path_for(key).exists()


def test_non_dict_envelope_is_a_miss(cache):
    key = run_key("c" * 64, "ref", (1,), 100, None, 1)
    _forge(cache, key, ["not", "a", "dict"])
    assert cache.get(key, "run") is None


def test_recompute_after_corruption(cache):
    """Eviction leaves the slot writable: a fresh put+get round-trips."""
    key, path = _stored(cache, payload={"ok": True, "v": 1})
    path.write_bytes(b"junk")
    assert cache.get(key, "run") is None
    assert cache.put(key, "run", {"ok": True, "v": 2})
    assert cache.get(key, "run") == {"ok": True, "v": 2}


def test_put_is_atomic_no_temp_litter(cache):
    key, path = _stored(cache)
    leftovers = [p for p in path.parent.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


def test_unpicklable_payload_is_swallowed(cache):
    key = run_key("c" * 64, "ref", (1,), 100, None, 1)
    assert cache.put(key, "run", lambda: None) is False  # not picklable
    assert cache.get(key, "run") is None
    assert cache.stats()["stores"] == 0


def test_clear_removes_everything(cache):
    for n in range(3):
        cache.put(run_key("c" * 64, "ref", (n,), 100, None, 1),
                  "run", {"n": n})
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_wrong_kind_read_does_not_serve_entry(cache):
    """A run read against a compile entry misses (and vice versa)."""
    key = compile_key("queens", "src", True, pass_spec=())
    cache.put(key, "compile", {"ok": True})
    assert cache.get(key, "run") is None


def test_entry_layout_is_sharded(cache):
    key = run_key("c" * 64, "ref", (1,), 100, None, 1)
    cache.put(key, "run", {})
    rel = cache.path_for(key).relative_to(cache.root)
    assert rel.parts[0] == "objects"
    assert rel.parts[1] == key[:2]
    assert rel.parts[2] == key[2:] + ".pkl"
    assert os.sep not in key
