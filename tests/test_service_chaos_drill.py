"""The acceptance chaos drill, exactly as CI's ``service-smoke`` job
runs it: a real service process under worker-crash + slow-worker +
lock-contention chaos must finish every job in a typed terminal state
and serve payloads byte-identical to a chaos-free serial run.

The drill's assertions live in ``repro.service.__main__._smoke``; this
test pins its exit status and summary output so a contract regression
fails the default suite, not just the CI job.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _run_smoke(*extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.service", "smoke", *extra],
        capture_output=True, text=True, timeout=300, env=env, cwd=REPO)


def test_smoke_drill_under_default_chaos_passes():
    proc = _run_smoke()
    assert proc.returncode == 0, \
        f"chaos drill failed:\n{proc.stdout}\n{proc.stderr}"
    assert "smoke: OK" in proc.stdout
    # the summary is machine-readable JSON; spot-check the contract
    start = proc.stdout.index('{\n  "jobs"')
    summary = json.loads(proc.stdout[start:proc.stdout.rindex("}") + 1])
    assert summary["failures"] == []
    assert summary["jobs"] == 9
    assert summary["done"] >= 1, "some jobs must survive the chaos"
    stats = summary["stats"]
    assert stats["jobs"]["submitted"] == 9
    assert stats["worker_respawns"] >= 1, \
        "worker-crash chaos must actually kill workers"
    assert stats["jobs"]["deduped"] >= 1, \
        "duplicate submissions must dedupe in flight"
