"""Tests for branch classification and the loop predictor (Section 3)."""

import pytest

from repro.core.classify import BranchClass, Prediction, classify_branches
from repro.isa import assemble


def analyze(body: str, name: str = "f"):
    src = f".text\n.ent {name}\n{name}:\n{body}\n.end {name}\n"
    return classify_branches(assemble(src))


class TestClassification:
    def test_simple_backward_loop_branch(self):
        analysis = analyze("""
L:  addiu $t0, $t0, -1
    bgtz $t0, L
    jr $ra
""")
        (branch,) = analysis.branches.values()
        assert branch.branch_class is BranchClass.LOOP
        assert branch.loop_prediction is Prediction.TAKEN
        assert branch.is_backward

    def test_exit_test_at_top_is_loop_branch(self):
        """A loop whose head tests the exit condition: the head's branch has
        an exit edge, so it is a loop branch even though it is forward."""
        analysis = analyze("""
L:  beq $t0, $zero, Lexit
    addiu $t0, $t0, -1
    j L
Lexit:
    jr $ra
""")
        (branch,) = analysis.branches.values()
        assert branch.branch_class is BranchClass.LOOP
        # target edge exits; predict the non-exit (fall-through) edge
        assert branch.loop_prediction is Prediction.NOT_TAKEN
        assert not branch.is_backward

    def test_non_backward_loop_branch_counted(self):
        """The paper: many loop branches are NOT backward branches — here
        the top-of-loop exit test is forward yet classified as loop."""
        analysis = analyze("""
L:  beq $t0, $zero, Lexit
    addiu $t0, $t0, -1
    j L
Lexit:
    jr $ra
""")
        loop_branches = analysis.loop_branches()
        assert len(loop_branches) == 1
        assert not loop_branches[0].is_backward

    def test_if_inside_loop_is_non_loop(self):
        """A branch inside a loop whose both successors stay in the loop is
        a NON-loop branch."""
        analysis = analyze("""
Lhead:
    bne $t1, $zero, Lskip     # if inside the loop
    addiu $t2, $t2, 1
Lskip:
    addiu $t0, $t0, -1
    bgtz $t0, Lhead
    jr $ra
""")
        classes = {b.instruction.op.name: b.branch_class
                   for b in analysis.branches.values()}
        assert classes["bne"] is BranchClass.NON_LOOP
        assert classes["bgtz"] is BranchClass.LOOP

    def test_straight_line_if_is_non_loop(self):
        analysis = analyze("""
    beq $t0, $zero, L
    addiu $t1, $t1, 1
L:  jr $ra
""")
        (branch,) = analysis.branches.values()
        assert branch.branch_class is BranchClass.NON_LOOP
        assert branch.loop_prediction is None

    def test_loop_with_break_branch(self):
        """A break-style branch: one edge exits the loop, making it a loop
        branch predicted to stay in the loop."""
        analysis = analyze("""
Lhead:
    beq $t1, $t2, Lout        # break
    addiu $t0, $t0, -1
    bgtz $t0, Lhead
Lout:
    jr $ra
""")
        branches = sorted(analysis.branches.values(),
                          key=lambda b: b.address)
        break_branch, latch = branches
        assert break_branch.branch_class is BranchClass.LOOP
        assert break_branch.loop_prediction is Prediction.NOT_TAKEN
        assert latch.branch_class is BranchClass.LOOP
        assert latch.loop_prediction is Prediction.TAKEN

    def test_multiple_procedures(self):
        src = (".text\n.ent f\nf:\nL: bgtz $t0, L\njr $ra\n.end f\n"
               ".ent g\ng:\nbeq $t0, $zero, M\nnop\nM: jr $ra\n.end g\n")
        analysis = classify_branches(assemble(src))
        assert len(analysis.branches) == 2
        assert len(analysis.procedures) == 2

    def test_successor_helpers(self):
        analysis = analyze("""
    beq $t0, $zero, L
    nop
L:  jr $ra
""")
        (branch,) = analysis.branches.values()
        taken_succ = branch.successor_of(Prediction.TAKEN)
        fall_succ = branch.successor_of(Prediction.NOT_TAKEN)
        assert branch.prediction_of(taken_succ) is Prediction.TAKEN
        assert branch.prediction_of(fall_succ) is Prediction.NOT_TAKEN
        with pytest.raises(ValueError):
            branch.prediction_of(branch.block)

    def test_prediction_enum(self):
        assert Prediction.TAKEN.as_bool is True
        assert Prediction.NOT_TAKEN.as_bool is False
        assert Prediction.TAKEN.inverted() is Prediction.NOT_TAKEN
        assert Prediction.NOT_TAKEN.inverted() is Prediction.TAKEN


class TestCompiledLoops:
    def test_rotated_while_classification(self):
        """Compiled while-loop: the guard is non-loop, the bottom test is a
        loop branch with a back edge (predict taken)."""
        from repro.bcc import compile_and_link
        exe = compile_and_link(
            "int main() { int i = 0; int n = read_int(); "
            "while (i < n) { i++; } return i; }")
        analysis = classify_branches(exe)
        main_branches = [b for b in analysis.branches.values()
                         if b.procedure.name == "main"]
        loop = [b for b in main_branches if b.is_loop_branch]
        non_loop = [b for b in main_branches if not b.is_loop_branch]
        assert loop and non_loop
        # the back-edge branch is predicted taken
        latch = [b for b in loop
                 if b.loop_prediction is Prediction.TAKEN]
        assert latch
