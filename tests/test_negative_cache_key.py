"""Regression tests for the negative-cache key shape.

Historically a (benchmark, dataset) failure was remembered under a key
that ignored the *effective execution limits*, so an operator-injected
fuel cap on one configuration could poison unrelated ones: lifting the
cap (or querying a sibling dataset) still replayed the stale FAILED
outcome.  The key is now ``(benchmark, dataset, limits-fingerprint)``
where the fingerprint covers the effective fuel budget, input
truncation, memory cap, and retry factor — so a cached failure is
replayed only for the exact configuration that produced it.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationLimitExceeded
from repro.harness import RunStatus, SuiteRunner

from conftest import MINI_SUITE


class TestNegativeCacheScoping:

    def test_fuel_fault_on_one_dataset_does_not_poison_siblings(self):
        runner = SuiteRunner(MINI_SUITE, strict=False)
        runner.limit_fuel("queens", 1_000, dataset="small")

        failed = runner.outcome("queens", "small")
        assert failed.status is RunStatus.TIMEOUT
        assert isinstance(failed.error, SimulationLimitExceeded)

        # the ref dataset runs under the default budget and must succeed
        healthy = runner.outcome("queens", "ref")
        assert healthy.ok
        # ... and the failure memo for "small" is still in place
        assert runner.outcome("queens", "small").failed

    def test_dataset_scoped_limit_does_not_leak_to_other_benchmarks(self):
        runner = SuiteRunner(MINI_SUITE, strict=False)
        runner.limit_fuel("queens", 1_000)
        assert runner.outcome("queens", "ref").failed
        assert runner.outcome("fields", "ref").ok
        assert runner.outcome("gauss", "ref").ok

    def test_lifting_the_limit_invalidates_the_stale_entry(self):
        """Changing the effective limits changes the key: the cached
        failure must NOT be replayed after clear_limits."""
        runner = SuiteRunner(MINI_SUITE, strict=False)
        runner.limit_fuel("queens", 1_000)
        assert runner.outcome("queens", "ref").failed

        runner.clear_limits("queens")
        recovered = runner.outcome("queens", "ref")
        assert recovered.ok, (
            "stale negative entry replayed after the fuel limit was "
            "lifted — limits are not part of the negative-cache key")

    def test_tightening_the_limit_also_misses_the_stale_entry(self):
        runner = SuiteRunner(MINI_SUITE, strict=False)
        runner.limit_fuel("queens", 2_000)
        first = runner.outcome("queens", "ref")
        assert first.failed

        runner.clear_limits("queens")
        runner.limit_fuel("queens", 1_000)
        second = runner.outcome("queens", "ref")
        assert second.failed
        assert second is not first, (
            "a different fuel budget must produce a fresh outcome, not "
            "replay the memo for the old budget")

    def test_memory_and_input_limits_are_in_the_fingerprint(self):
        runner = SuiteRunner(MINI_SUITE, strict=False)
        runner.limit_memory("queens", 4096)
        assert runner.outcome("queens", "ref").failed
        runner.clear_limits("queens")
        assert runner.outcome("queens", "ref").ok

        runner2 = SuiteRunner(MINI_SUITE, strict=False)
        runner2.limit_inputs("queens", 0)
        assert runner2.outcome("queens", "ref").failed
        runner2.clear_limits("queens")
        assert runner2.outcome("queens", "ref").ok

    def test_strict_mode_raises_from_the_scoped_entry(self):
        runner = SuiteRunner(MINI_SUITE, strict=True)
        runner.limit_fuel("queens", 1_000, dataset="small")
        with pytest.raises(SimulationLimitExceeded):
            runner.run("queens", "small")
        # sibling dataset still healthy in the same strict runner
        assert runner.run("queens", "ref").instr_count > 0


class TestDiskNegativeCache:

    def test_fuel_failure_is_negative_cached_on_disk(self, tmp_path):
        """A deterministic fuel-limit failure is served from the
        persistent cache on an identical rerun (no re-simulation)."""
        cache_dir = tmp_path / "cache"
        first = SuiteRunner(MINI_SUITE, strict=False, cache_dir=cache_dir)
        first.limit_fuel("queens", 1_000)
        assert first.outcome("queens", "ref").failed
        assert first.cache.stores > 0

        second = SuiteRunner(MINI_SUITE, strict=False, cache_dir=cache_dir)
        second.limit_fuel("queens", 1_000)
        hits_before = second.cache.hits
        outcome = second.outcome("queens", "ref")
        assert outcome.status is RunStatus.TIMEOUT
        assert second.cache.hits > hits_before

    def test_disk_entry_keyed_on_limits_not_just_name(self, tmp_path):
        """The healthy run after lifting the limit must not be served
        the negative entry recorded under the capped budget."""
        cache_dir = tmp_path / "cache"
        capped = SuiteRunner(MINI_SUITE, strict=False, cache_dir=cache_dir)
        capped.limit_fuel("queens", 1_000)
        assert capped.outcome("queens", "ref").failed

        uncapped = SuiteRunner(MINI_SUITE, strict=False,
                               cache_dir=cache_dir)
        assert uncapped.outcome("queens", "ref").ok
