"""Tests for the BLC runtime library, exercised through compiled programs
(the runtime is itself BLC, so these are also deep compiler tests)."""

import pytest

from conftest import compile_run, run_output


class TestMalloc:
    def test_allocations_distinct_and_aligned(self):
        src = """
int main() {
    char *a = malloc(10);
    char *b = malloc(10);
    int ai = (int)a;
    int bi = (int)b;
    if (a == b) { return 1; }
    if (ai % 8 != 0) { return 2; }
    if (bi % 8 != 0) { return 3; }
    if (i_abs(bi - ai) < 10) { return 4; }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0

    def test_contents_independent(self):
        src = """
int main() {
    int *a = (int *)malloc(40);
    int *b = (int *)malloc(40);
    int i;
    for (i = 0; i < 10; i++) { a[i] = i; b[i] = 100 + i; }
    for (i = 0; i < 10; i++) {
        if (a[i] != i) { return 1; }
        if (b[i] != 100 + i) { return 2; }
    }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0

    def test_free_and_reuse_first_fit(self):
        src = """
int main() {
    char *a = malloc(64);
    char *b = malloc(64);
    char *c;
    free(a);
    c = malloc(32);         // first fit: reuse a's block
    return c == a;
}
"""
        assert compile_run(src).exit_code == 1

    def test_free_list_split(self):
        src = """
int main() {
    char *big = malloc(256);
    char *p;
    char *q;
    free(big);
    p = malloc(32);          // takes a split of big's block
    q = malloc(32);          // takes the remainder
    if (p != big) { return 1; }
    if (q == p) { return 2; }
    // the remainder must be inside the original block
    if (q < big || q > big + 256) { return 3; }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0

    def test_free_null_is_noop(self):
        src = "int main() { free(NULL); return 7; }"
        assert compile_run(src).exit_code == 7

    def test_zero_and_negative_sizes(self):
        src = """
int main() {
    char *a = malloc(0);
    char *b = malloc(-5);
    return (a != NULL) + (b != NULL);
}
"""
        assert compile_run(src).exit_code == 2

    def test_many_small_allocations(self):
        src = """
struct Box { int v; struct Box *next; };
int main() {
    struct Box *head = NULL;
    struct Box *p;
    int i, s = 0;
    for (i = 0; i < 200; i++) {
        p = (struct Box *)malloc(sizeof(struct Box));
        p->v = i;
        p->next = head;
        head = p;
        if (i % 3 == 0) {           // free a third of them as we go
            head = p->next;
            free((char *)p);
        }
    }
    for (p = head; p != NULL; p = p->next) { s++; }
    return s;
}
"""
        # 200 allocations, every i%3==0 freed (67 of them)
        assert compile_run(src).exit_code == 200 - 67


class TestStringRoutines:
    def test_strlen(self):
        assert compile_run(
            'int main() { return strlen("") + strlen("abcde"); }'
        ).exit_code == 5

    def test_strcmp_orderings(self):
        src = """
int main() {
    if (strcmp("abc", "abc") != 0) { return 1; }
    if (strcmp("abc", "abd") >= 0) { return 2; }
    if (strcmp("abd", "abc") <= 0) { return 3; }
    if (strcmp("ab", "abc") >= 0) { return 4; }
    if (strcmp("abc", "ab") <= 0) { return 5; }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0

    def test_strcpy(self):
        out = run_output("""
char buf[32];
int main() {
    strcpy(buf, "copied");
    print_str(buf);
    return 0;
}
""")
        assert out == "copied"

    def test_memset_memcpy(self):
        src = """
char a[16];
char b[16];
int main() {
    int i;
    memset(a, 'x', 16);
    memcpy(b, a, 16);
    for (i = 0; i < 16; i++) {
        if (b[i] != 'x') { return 1; }
    }
    memset(a, 0, 8);
    if (a[7] != 0) { return 2; }
    if (a[8] != 'x') { return 3; }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0


class TestMathHelpers:
    def test_abs_minmax(self):
        src = """
int main() {
    if (i_abs(-5) != 5 || i_abs(5) != 5) { return 1; }
    if (i_max(2, 3) != 3 || i_min(2, 3) != 2) { return 2; }
    if (d_abs(-2.5) != 2.5) { return 3; }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0

    def test_rand_deterministic_and_bounded(self):
        src = """
int main() {
    int i, v;
    rand_seed(42);
    for (i = 0; i < 500; i++) {
        v = rand_next(10);
        if (v < 0 || v >= 10) { return 1; }
    }
    rand_seed(42);
    v = rand_next(1000);
    rand_seed(42);
    if (rand_next(1000) != v) { return 2; }
    if (rand_next(0) != 0) { return 3; }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0

    def test_rand_distribution_roughly_uniform(self):
        src = """
int counts[10];
int main() {
    int i;
    rand_seed(7);
    for (i = 0; i < 5000; i++) { counts[rand_next(10)]++; }
    for (i = 0; i < 10; i++) {
        if (counts[i] < 250 || counts[i] > 750) { return 1; }
    }
    return 0;
}
"""
        assert compile_run(src).exit_code == 0

    def test_seed_zero_coerced(self):
        src = """
int main() {
    rand_seed(0);   // must not wedge the LCG at zero
    return rand_next(100) >= 0;
}
"""
        assert compile_run(src).exit_code == 1


class TestRuntimeIsAnalyzed:
    def test_runtime_procedures_in_executable(self):
        """The runtime is linked as code, not emulated: its procedures are
        present and get classified like application code (the paper counted
        Ultrix libc procedures the same way)."""
        from repro.bcc import compile_and_link
        from repro.core import classify_branches
        exe = compile_and_link("int main() { return 0; }")
        names = set(exe.procedure_names())
        assert {"malloc", "free", "strlen", "strcmp", "rand_next",
                "print_int", "__start"} <= names
        analysis = classify_branches(exe)
        malloc_branches = [b for b in analysis.branches.values()
                           if b.procedure.name == "malloc"]
        assert malloc_branches  # malloc's loops/tests are real branches
