"""Tests for the benchmark suite: compilation, execution, determinism."""

import pytest

from repro.bench import FP_GROUP, INT_GROUP, get, suite, suite_names
from repro.sim import Machine

_EXECUTABLES = {}


def compiled(name):
    if name not in _EXECUTABLES:
        _EXECUTABLES[name] = get(name).compile()
    return _EXECUTABLES[name]


def run_small(name, max_instructions=25_000_000):
    benchmark = get(name)
    ds = benchmark.dataset("small")
    machine = Machine(compiled(name), inputs=list(ds.inputs),
                      max_instructions=max_instructions)
    return machine.run()


class TestRegistry:
    def test_suite_size(self):
        assert len(suite()) == 22

    def test_groups_partition_suite(self):
        assert set(INT_GROUP) | set(FP_GROUP) == set(suite_names())
        assert not set(INT_GROUP) & set(FP_GROUP)

    def test_every_benchmark_has_three_datasets(self):
        for b in suite():
            assert len(b.datasets) == 3
            assert {d.name for d in b.datasets} == {"ref", "small", "alt"}

    def test_dataset_lookup(self):
        b = get("queens")
        assert b.dataset("ref").inputs
        with pytest.raises(KeyError):
            b.dataset("nope")

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get("not_a_benchmark")

    def test_paper_analogues_documented(self):
        for b in suite():
            assert b.paper_analogue
            assert b.description

    def test_sources_readable(self):
        for b in suite():
            source = b.source()
            assert "int main()" in source


@pytest.mark.parametrize("name", suite_names())
class TestExecution:
    def test_compiles(self, name):
        exe = compiled(name)
        assert len(exe.procedures) > 20   # program + runtime library

    def test_runs_and_produces_output(self, name):
        status = run_small(name)
        assert status.output.strip()
        assert status.exit_code == 0
        assert status.dynamic_branches > 100

    def test_deterministic(self, name):
        a = run_small(name)
        b = run_small(name)
        assert a.output == b.output
        assert a.instr_count == b.instr_count


class TestWorkloadShape:
    def test_fp_group_executes_fp_instructions(self):
        for name in FP_GROUP:
            status = run_small(name)
            machine = Machine(compiled(name))
            # static check is enough: program text contains FP arithmetic
            ops = {i.op.name for i in compiled(name).instructions}
            assert ops & {"add.d", "mul.d"}, name

    def test_suite_spans_loop_heavy_and_branch_heavy(self):
        """matmul must be loop-dominated; quad must be non-loop-dominated —
        matching matrix300 (4% non-loop) vs fpppp (86% non-loop)."""
        from conftest import profile_of
        from repro.core import classify_branches

        def non_loop_fraction(name):
            exe = compiled(name)
            analysis = classify_branches(exe)
            ds = get(name).dataset("small")
            profile = profile_of(exe, inputs=list(ds.inputs),
                                 max_instructions=25_000_000)
            nl = sum(profile.execution_count(b.address)
                     for b in analysis.non_loop_branches())
            return nl / profile.total_dynamic_branches

        assert non_loop_fraction("matmul") < 0.2
        assert non_loop_fraction("quad") > 0.6

    def test_lzw_roundtrip_verifies(self):
        status = run_small("lzw")
        ncodes, out_len, ok = status.output.split()
        assert ok == "1"
        assert int(ncodes) < int(out_len)  # it actually compressed

    def test_queens_known_solution_count(self):
        status = run_small("queens")     # 7-queens, all solutions
        solutions, _ = status.output.split()
        assert solutions == "40"

    def test_gauss_solves(self):
        status = run_small("gauss")
        checksum, singular = status.output.split()
        assert singular == "0"

    def test_cg_converges(self):
        status = run_small("cg")
        lines = status.output.strip().splitlines()
        iterations = int(lines[-1])
        assert 0 < iterations <= 40
