"""Property-based tests: dominators and loops on random CFGs, verified
against naive reference algorithms."""

from hypothesis import given, settings, strategies as st

from repro.cfg import (
    analyze_loops, build_cfg, compute_dominators, compute_postdominators,
)
from repro.isa import assemble


@st.composite
def random_cfg_asm(draw):
    """Random single-procedure assembly with n blocks, each ending in a
    conditional branch to a random block, a jump, or a return."""
    n = draw(st.integers(2, 10))
    lines = []
    for i in range(n):
        lines.append(f"B{i}:")
        lines.append("    addiu $t0, $t0, 1")
        kind = draw(st.sampled_from(["branch", "jump", "ret", "fall"]))
        if i == n - 1 and kind == "fall":
            kind = "ret"
        if kind == "branch":
            target = draw(st.integers(0, n - 1))
            lines.append(f"    bne $t0, $t1, B{target}")
            if i == n - 1:
                lines.append("    jr $ra")
        elif kind == "jump":
            target = draw(st.integers(0, n - 1))
            lines.append(f"    j B{target}")
        elif kind == "ret":
            lines.append("    jr $ra")
        # "fall": fall through to the next block
    body = "\n".join(lines)
    return f".text\n.ent f\nf:\n{body}\n.end f\n"


def naive_dominators(cfg):
    """Reference: v dominates w iff removing v makes w unreachable."""
    blocks = cfg.blocks
    dom = {}
    for v in blocks:
        reachable = set()
        if v is not cfg.entry:
            stack = [cfg.entry]
            while stack:
                b = stack.pop()
                if id(b) in reachable or b is v:
                    continue
                reachable.add(id(b))
                stack.extend(b.successors)
        for w in blocks:
            dom[(id(v), id(w))] = (v is w) or (id(w) not in reachable)
    return dom


def naive_postdominators(cfg):
    """Reference: w postdominates v iff every path from v to any exit goes
    through w — i.e. removing w makes all exits unreachable from v."""
    blocks = cfg.blocks
    exits = {id(b) for b in cfg.exit_blocks()}
    pdom = {}
    for w in blocks:
        # which blocks can reach an exit while avoiding w?
        for v in blocks:
            if v is w:
                pdom[(id(w), id(v))] = True
                continue
            seen = set()
            stack = [v]
            escapes = False
            while stack:
                b = stack.pop()
                if id(b) in seen or b is w:
                    continue
                seen.add(id(b))
                if id(b) in exits:
                    escapes = True
                    break
                stack.extend(b.successors)
            # if v cannot reach any exit at all (even with w), the notion
            # degenerates; only assert when v reaches an exit
            pdom[(id(w), id(v))] = not escapes
    return pdom


def reaches_exit(cfg, v):
    exits = {id(b) for b in cfg.exit_blocks()}
    seen = set()
    stack = [v]
    while stack:
        b = stack.pop()
        if id(b) in seen:
            continue
        seen.add(id(b))
        if id(b) in exits:
            return True
        stack.extend(b.successors)
    return False


class TestDominatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_cfg_asm())
    def test_dominators_match_naive(self, src):
        cfg = build_cfg(assemble(src).procedure("f"))
        dom = compute_dominators(cfg)
        naive = naive_dominators(cfg)
        for v in cfg.blocks:
            for w in cfg.blocks:
                assert dom.dominates(v, w) == naive[(id(v), id(w))], \
                    f"dominates(B{v.index}, B{w.index}) mismatch\n{src}"

    @settings(max_examples=60, deadline=None)
    @given(random_cfg_asm())
    def test_postdominators_match_naive(self, src):
        cfg = build_cfg(assemble(src).procedure("f"))
        pdom = compute_postdominators(cfg)
        naive = naive_postdominators(cfg)
        for w in cfg.blocks:
            for v in cfg.blocks:
                if not reaches_exit(cfg, v):
                    continue  # postdominance undefined; we answer False
                assert pdom.dominates(w, v) == naive[(id(w), id(v))], \
                    f"postdominates(B{w.index}, B{v.index}) mismatch\n{src}"


class TestLoopProperties:
    @settings(max_examples=80, deadline=None)
    @given(random_cfg_asm())
    def test_natural_loop_invariants(self, src):
        cfg = build_cfg(assemble(src).procedure("f"))
        loops = analyze_loops(cfg)
        # every back edge's source is inside its head's natural loop
        for tail, head in loops.back_edges:
            assert head in loops.heads
            assert tail in loops.loops[head]
        # exit edges leave some loop body
        for src_block, dst in loops.exit_edges:
            assert any(src_block in body and dst not in body
                       for body in loops.loops.values())
        # the paper's invariant: every vertex of a natural loop keeps at
        # least one successor inside the loop
        for head, body in loops.loops.items():
            for block in body:
                if block.successors:
                    assert any(s in body for s in block.successors)

    @settings(max_examples=80, deadline=None)
    @given(random_cfg_asm())
    def test_branch_classification_total(self, src):
        from repro.core import classify_branches
        analysis = classify_branches(assemble(src))
        for branch in analysis.branches.values():
            if branch.is_loop_branch:
                assert branch.loop_prediction is not None
            else:
                assert branch.loop_prediction is None

    @settings(max_examples=40, deadline=None)
    @given(random_cfg_asm())
    def test_heuristics_agree_with_selection_rule(self, src):
        """Property heuristics never both apply and contradict the one-
        successor rule: if a heuristic applies, flipping which successor has
        the property must flip or kill the prediction (sanity via re-run)."""
        from repro.core import classify_branches
        from repro.core.heuristics import applicable_heuristics
        analysis = classify_branches(assemble(src))
        for branch in analysis.branches.values():
            pa = analysis.analysis_of(branch)
            table = applicable_heuristics(branch, pa)
            for name, prediction in table.items():
                assert prediction.as_bool in (True, False)
