"""Edge-case coverage for SequenceAnalyzer and BranchTrace truncation.

Satellites of the telemetry PR: the analyzer's degenerate inputs (empty
traces, single breaks) must produce well-defined metrics, its cumulative
curves must be monotone, and BranchTrace must never truncate silently.
"""

import logging

import pytest

from repro import telemetry
from repro.isa.instructions import Instruction, OPCODES_BY_NAME
from repro.sim import BranchTrace, SequenceAnalyzer
from repro.sim.trace import BUCKET_WIDTH, NUM_BUCKETS


def branch_at(addr):
    return Instruction(op=OPCODES_BY_NAME["beq"], rs=8, rt=0, address=addr)


def jump_at(addr):
    return Instruction(op=OPCODES_BY_NAME["jr"], rs=9, address=addr)


class TestSequenceAnalyzerEmptyTrace:
    """A run with no events at all (or zero instructions)."""

    def test_zero_instruction_run(self):
        an = SequenceAnalyzer({})
        an.on_finish(0)
        assert an.ipbc_average == 0.0
        assert an.dividing_length == 0
        assert an.miss_rate == 0.0
        assert an.cumulative_instructions() == []
        assert an.cumulative_breaks() == []
        assert an.n_breaks == 0

    def test_no_breaks_counts_trailing_run(self):
        # 100 straight-line instructions, no branch events: with
        # include_trailing the whole run is one sequence
        an = SequenceAnalyzer({})
        an.on_finish(100)
        assert an.n_breaks == 1
        assert an.total_instructions == 100
        assert an.ipbc_average == 100.0
        assert an.dividing_length == 110  # bucket [100,109] upper edge

    def test_no_breaks_without_trailing(self):
        an = SequenceAnalyzer({}, include_trailing=False)
        an.on_finish(100)
        assert an.n_breaks == 0
        # every instruction ran, none attributed to a sequence: the
        # profile-style average degrades to the whole run length
        assert an.ipbc_average == 100.0
        assert an.dividing_length == 0

    def test_missing_prediction_raises(self):
        an = SequenceAnalyzer({})
        with pytest.raises(KeyError):
            an.on_branch(branch_at(0x400000), True, 10)


class TestSequenceAnalyzerSingleBreak:
    def test_single_mispredict_splits_trace(self):
        an = SequenceAnalyzer({0x400000: True})
        an.on_branch(branch_at(0x400000), False, 30)   # mispredict @30
        an.on_finish(100)
        assert an.n_breaks == 2                        # break + trailing
        assert an.n_mispredicts == 1
        assert an.miss_rate == 1.0
        assert an.total_instructions == 100
        assert an.ipbc_average == 50.0
        # sequences: 30 and 70 instructions
        assert sum(an.seq_counts) == 2
        assert sum(an.seq_instr_sums) == 100

    def test_single_correct_prediction_is_no_break(self):
        an = SequenceAnalyzer({0x400000: True})
        an.on_branch(branch_at(0x400000), True, 30)
        an.on_finish(100)
        assert an.n_mispredicts == 0
        assert an.miss_rate == 0.0
        assert an.n_breaks == 1  # only the trailing sequence

    def test_single_indirect_break(self):
        an = SequenceAnalyzer({})
        an.on_indirect(jump_at(0x400010), 42)
        an.on_finish(42)   # ends exactly at the break: no trailing seq
        assert an.n_breaks == 1
        assert an.ipbc_average == 42.0

    def test_zero_length_final_sequence_not_counted(self):
        an = SequenceAnalyzer({0x400000: True})
        an.on_branch(branch_at(0x400000), False, 100)
        an.on_finish(100)
        assert an.n_breaks == 1

    def test_overflow_bucket(self):
        an = SequenceAnalyzer({})
        huge = NUM_BUCKETS * BUCKET_WIDTH * 3
        an.on_indirect(jump_at(0x400010), huge)
        an.on_finish(huge)
        assert an.seq_counts[NUM_BUCKETS - 1] == 1
        assert an.seq_instr_sums[NUM_BUCKETS - 1] == huge


class TestCumulativeMonotonicity:
    def _analyzer_with_breaks(self, breaks):
        an = SequenceAnalyzer({})
        for count in breaks:
            an.on_indirect(jump_at(0x400010), count)
        an.on_finish(breaks[-1] + 7)
        return an

    @pytest.mark.parametrize("breaks", [
        [5], [10, 20, 25], [3, 600, 1200, 50000],
        list(range(7, 7 * 40, 7)),
    ])
    def test_cumulative_instructions_monotone_to_100(self, breaks):
        points = self._analyzer_with_breaks(breaks).cumulative_instructions()
        pcts = [pct for _, pct in points]
        assert all(b >= a for a, b in zip(pcts, pcts[1:]))
        assert pcts[-1] == pytest.approx(100.0)
        xs = [x for x, _ in points]
        assert xs == sorted(xs)
        assert all(0.0 <= p <= 100.0 + 1e-9 for p in pcts)

    @pytest.mark.parametrize("breaks", [[5], [10, 20, 25],
                                        [3, 600, 1200, 50000]])
    def test_cumulative_breaks_monotone_to_100(self, breaks):
        points = self._analyzer_with_breaks(breaks).cumulative_breaks()
        pcts = [pct for _, pct in points]
        assert all(b >= a for a, b in zip(pcts, pcts[1:]))
        assert pcts[-1] == pytest.approx(100.0)

    def test_dividing_length_lies_on_cumulative_curve(self):
        an = self._analyzer_with_breaks([10, 20, 30, 40, 1000])
        dividing = an.dividing_length
        points = dict(an.cumulative_instructions())
        assert points[dividing] >= 50.0
        prev = dividing - BUCKET_WIDTH
        if prev in points:
            assert points[prev] < 50.0


class TestBranchTraceTruncation:
    def test_truncation_counts_and_warns(self, caplog):
        trace = BranchTrace(limit=3)
        with caplog.at_level(logging.WARNING, logger="repro.sim.trace"):
            for i in range(10):
                trace.on_branch(branch_at(0x400000 + 4 * i), True, i + 1)
            trace.on_finish(10)
        assert len(trace.events) == 3
        assert trace.truncated is True
        assert trace.dropped == 7
        warnings = [r for r in caplog.records
                    if r.levelno == logging.WARNING]
        assert any("limit of 3" in r.getMessage() for r in warnings)
        assert any("dropped 7" in r.getMessage() for r in warnings)

    def test_truncated_counter_reported(self):
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            trace = BranchTrace(limit=2)
            for i in range(5):
                trace.on_branch(branch_at(0x400000), bool(i % 2), i + 1)
        assert sink.counters()["trace.truncated"] == 3

    def test_under_limit_untouched(self, caplog):
        trace = BranchTrace(limit=10)
        with caplog.at_level(logging.WARNING, logger="repro.sim.trace"):
            for i in range(5):
                trace.on_branch(branch_at(0x400000), True, i + 1)
            trace.on_finish(5)
        assert trace.truncated is False
        assert trace.dropped == 0
        assert not caplog.records
