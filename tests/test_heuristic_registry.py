"""The pluggable heuristic registry and its ablation/order spec grammar
(satellite of the pass-framework refactor), plus the harness's
``--heuristics`` / ``--order`` CLI surface.
"""

import pytest

from repro.core.classify import Prediction
from repro.core.heuristics import (
    HEURISTIC_NAMES, HEURISTICS, PAPER_ORDER, extended_guard_heuristic,
)
from repro.core.predictors import HeuristicPredictor, VotingPredictor
from repro.core.registry import (
    HEURISTIC_REGISTRY, HeuristicRegistry, HeuristicSpecError,
    heuristic_names, paper_order, resolve_order,
)

MEASURED = ("Opcode", "Loop", "Call", "Return", "Guard", "Store", "Point")
PAPER = ("Point", "Call", "Opcode", "Return", "Store", "Loop", "Guard")


class TestRegistryContents:
    def test_measured_set(self):
        assert heuristic_names() == MEASURED

    def test_paper_order(self):
        assert paper_order() == PAPER

    def test_extension_registered_but_not_measured(self):
        entry = HEURISTIC_REGISTRY.get("ExtGuard")
        assert entry.fn is extended_guard_heuristic
        assert not entry.measured
        assert "ExtGuard" not in heuristic_names()
        assert "ExtGuard" in HEURISTIC_REGISTRY.all_names()

    def test_case_insensitive_lookup(self):
        assert HEURISTIC_REGISTRY.get("guard").name == "Guard"
        assert "GUARD" in HEURISTIC_REGISTRY

    def test_unknown_name(self):
        with pytest.raises(HeuristicSpecError, match="unknown heuristic"):
            HEURISTIC_REGISTRY.get("Gard")

    def test_entries_have_descriptions(self):
        for name in HEURISTIC_REGISTRY.all_names():
            assert HEURISTIC_REGISTRY.get(name).description


class TestBackCompatViews:
    def test_module_constants_are_registry_views(self):
        assert HEURISTIC_NAMES == MEASURED
        assert PAPER_ORDER == PAPER
        assert tuple(HEURISTICS) == MEASURED

    def test_mapping_view_measured_only(self):
        assert "Guard" in HEURISTICS
        assert "ExtGuard" not in HEURISTICS
        with pytest.raises(KeyError):
            HEURISTICS["ExtGuard"]
        assert len(HEURISTICS) == 7
        assert HEURISTICS["Guard"] is HEURISTIC_REGISTRY.fn("Guard")


class TestResolveOrder:
    def test_default_is_paper(self):
        assert resolve_order() == PAPER
        assert resolve_order("paper") == PAPER

    def test_registry_order(self):
        assert resolve_order("registry") == MEASURED
        assert resolve_order("default") == MEASURED

    def test_explicit_order(self):
        assert resolve_order("Guard,Point") == ("Guard", "Point")
        assert resolve_order(["store", "call"]) == ("Store", "Call")

    def test_drop_one(self):
        assert resolve_order(heuristics="-guard") == PAPER[:-1]

    def test_drop_many(self):
        order = resolve_order(heuristics="-guard,-point")
        assert order == ("Call", "Opcode", "Return", "Store", "Loop")

    def test_keep_only(self):
        assert resolve_order(heuristics="Point,Call") == ("Point", "Call")
        # base order preserved, not spec order
        assert resolve_order(heuristics="Call,Point") == ("Point", "Call")

    def test_mixing_drop_and_keep_rejected(self):
        with pytest.raises(HeuristicSpecError, match="cannot mix"):
            resolve_order(heuristics="-guard,Point")

    def test_duplicate_order_rejected(self):
        with pytest.raises(HeuristicSpecError, match="duplicate"):
            resolve_order("Guard,guard")

    def test_unknown_in_spec(self):
        with pytest.raises(HeuristicSpecError):
            resolve_order(heuristics="-nonexistent")

    def test_order_then_filter(self):
        assert resolve_order("registry", "-opcode") == MEASURED[1:]


class TestCustomRegistration:
    def test_register_and_unregister(self):
        reg = HeuristicRegistry()

        @reg.register("Alpha", 0, paper_rank=1)
        def alpha(branch, pa):
            return Prediction.TAKEN

        @reg.register("Beta", 1, paper_rank=0, description="beta rule")
        def beta(branch, pa):
            return None

        assert reg.names() == ("Alpha", "Beta")
        assert reg.paper_order() == ("Beta", "Alpha")
        reg.unregister("alpha")
        assert reg.names() == ("Beta",)

    def test_duplicate_name_rejected(self):
        reg = HeuristicRegistry()
        reg.register("X", 0)(lambda b, p: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x", 1)(lambda b, p: None)

    def test_duplicate_ranks_rejected(self):
        reg = HeuristicRegistry()
        reg.register("X", 0, paper_rank=0)(lambda b, p: None)
        with pytest.raises(ValueError, match="default_rank"):
            reg.register("Y", 0)(lambda b, p: None)
        with pytest.raises(ValueError, match="paper_rank"):
            reg.register("Z", 1, paper_rank=0)(lambda b, p: None)

    def test_plugin_heuristic_usable_in_predictor_order(self):
        """A freshly registered extension can be named in a predictor
        order (the ablation/extension workflow end-to-end)."""
        from repro.bcc.driver import compile_and_link
        from repro.core.classify import classify_branches

        @HEURISTIC_REGISTRY.register("TestAlwaysTaken", 99,
                                     description="test plugin")
        def _always(branch, pa):
            return Prediction.TAKEN

        try:
            exe = compile_and_link(
                "int main() { int i; int s = 0;"
                " for (i = 0; i < 3; i = i + 1) {"
                "   if (s > 1) { s = s - 1; } else { s = s + 2; } }"
                " print_int(s); return 0; }")
            analysis = classify_branches(exe)
            predictor = HeuristicPredictor(
                analysis, order=("TestAlwaysTaken",))
            predictions = predictor.predictions()
            non_loop = analysis.non_loop_branches()
            assert non_loop
            for b in non_loop:
                assert predictions[b.address] is Prediction.TAKEN
                assert predictor.attribution[b.address] == "TestAlwaysTaken"
        finally:
            HEURISTIC_REGISTRY.unregister("TestAlwaysTaken")
        assert "TestAlwaysTaken" not in HEURISTIC_REGISTRY


class TestPredictorsConsumeRegistry:
    @pytest.fixture(scope="class")
    def analysis(self):
        from repro.bcc.driver import compile_and_link
        from repro.core.classify import classify_branches
        exe = compile_and_link(
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 10; i = i + 1) {"
            "   if (s > 5) { s = s - 2; } else { s = s + 3; } }"
            " print_int(s); return 0; }")
        return classify_branches(exe)

    def test_default_order_is_paper_chain(self, analysis):
        assert HeuristicPredictor(analysis).order == PAPER

    def test_order_names_canonicalised(self, analysis):
        predictor = HeuristicPredictor(analysis, order=("guard", "POINT"))
        assert predictor.order == ("Guard", "Point")

    def test_unknown_heuristic_is_value_error(self, analysis):
        with pytest.raises(ValueError, match="unknown"):
            HeuristicPredictor(analysis, order=("Gard",))

    def test_ablated_order_never_attributes_dropped(self, analysis):
        order = resolve_order(heuristics="-guard")
        predictor = HeuristicPredictor(analysis, order=order)
        predictor.predictions()
        assert "Guard" not in predictor.attribution.values()

    def test_voting_defaults_to_measured_set(self, analysis):
        assert set(VotingPredictor(analysis).weights) == set(MEASURED)

    def test_voting_weight_names_canonicalised(self, analysis):
        predictor = VotingPredictor(analysis, weights={"guard": 2.0})
        assert predictor.weights == {"Guard": 2.0}


class TestHarnessAblationCli:
    def test_drop_one_ablation_end_to_end(self, capsys):
        from repro.harness.__main__ import main as harness_main
        assert harness_main(["--benchmarks", "queens", "--tables", "5",
                             "--graphs", "", "--heuristics", "-guard",
                             "--order", "paper"]) == 0
        out = capsys.readouterr().out
        assert "Guard" not in out
        assert "Point" in out

    def test_explicit_order_changes_table5_header(self, capsys):
        from repro.harness.__main__ import main as harness_main
        assert harness_main(["--benchmarks", "queens", "--tables", "5",
                             "--graphs", "", "--order",
                             "Guard,Point,Call"]) == 0
        out = capsys.readouterr().out
        assert "Guard -> Point -> Call" in out

    def test_bad_spec_exits_2(self, capsys):
        from repro.harness.__main__ import main as harness_main
        assert harness_main(["--benchmarks", "queens",
                             "--heuristics", "-nonexistent"]) == 2

    def test_absorb_dash_values(self):
        from repro.harness.__main__ import _absorb_dash_values
        assert _absorb_dash_values(["--heuristics", "-guard"]) == \
            ["--heuristics=-guard"]
        assert _absorb_dash_values(["--order", "paper"]) == \
            ["--order", "paper"]
        assert _absorb_dash_values(["--degraded"]) == ["--degraded"]

    def test_orders_experiments_respect_ablation(self):
        """The ordering machinery handles a 6-heuristic set (6! orders)."""
        from repro.core.orders import all_orders
        names = resolve_order("registry", "-guard")
        assert len(all_orders(names)) == 720
