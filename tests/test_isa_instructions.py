"""Tests for the instruction data model: classification, dataflow, render."""

import pytest

from repro.isa.instructions import Instruction, Kind, OPCODES_BY_NAME


def make(name, **kw):
    return Instruction(op=OPCODES_BY_NAME[name], **kw)


class TestClassification:
    @pytest.mark.parametrize("name", ["beq", "bne", "blez", "bgtz", "bltz",
                                      "bgez", "bc1t", "bc1f"])
    def test_conditional_branches(self, name):
        inst = make(name, rs=8, rt=9, label="L")
        assert inst.is_conditional_branch
        assert inst.ends_basic_block

    @pytest.mark.parametrize("name", ["add", "lw", "sw", "jal", "syscall",
                                      "nop", "mul.d"])
    def test_non_branches(self, name):
        inst = make(name, rd=8, rs=9, rt=10, fd=0, fs=2, ft=4, imm=0,
                    label="x")
        assert not inst.is_conditional_branch

    def test_jal_is_call_not_block_end(self):
        inst = make("jal", label="f")
        assert inst.is_call
        assert not inst.ends_basic_block

    def test_jalr_is_call(self):
        inst = make("jalr", rd=31, rs=8)
        assert inst.is_call

    def test_jr_ra_is_return(self):
        inst = make("jr", rs=31)
        assert inst.is_return
        assert not inst.is_indirect_jump
        assert inst.ends_basic_block

    def test_jr_non_ra_is_indirect(self):
        inst = make("jr", rs=8)
        assert inst.is_indirect_jump
        assert not inst.is_return

    @pytest.mark.parametrize("name,is_load,is_store", [
        ("lw", True, False), ("lb", True, False), ("lbu", True, False),
        ("ldc1", True, False), ("sw", False, True), ("sb", False, True),
        ("sdc1", False, True),
    ])
    def test_memory_classification(self, name, is_load, is_store):
        inst = make(name, rt=8, ft=4, rs=29, imm=0)
        assert inst.is_load == is_load
        assert inst.is_store == is_store

    def test_jump(self):
        inst = make("j", label="L")
        assert inst.is_jump
        assert inst.ends_basic_block


class TestDataflow:
    def test_alu_r_uses_defs(self):
        inst = make("add", rd=10, rs=8, rt=9)
        assert set(inst.int_uses()) == {8, 9}
        assert inst.int_defs() == (10,)

    def test_alu_i_uses_defs(self):
        inst = make("addiu", rt=10, rs=8, imm=4)
        assert inst.int_uses() == (8,)
        assert inst.int_defs() == (10,)

    def test_load_defines_rt_uses_base(self):
        inst = make("lw", rt=10, rs=29, imm=8)
        assert inst.int_uses() == (29,)
        assert inst.int_defs() == (10,)

    def test_store_uses_both(self):
        inst = make("sw", rt=10, rs=29, imm=8)
        assert set(inst.int_uses()) == {29, 10}
        assert inst.int_defs() == ()

    def test_branch2_uses(self):
        inst = make("beq", rs=8, rt=9, label="L")
        assert set(inst.int_uses()) == {8, 9}

    def test_branch1_uses(self):
        inst = make("bltz", rs=8, label="L")
        assert inst.int_uses() == (8,)

    def test_jal_defines_ra(self):
        assert make("jal", label="f").int_defs() == (31,)

    def test_fp_load_store(self):
        load = make("ldc1", ft=4, rs=29, imm=0)
        assert load.fp_defs() == (4,)
        assert load.int_uses() == (29,)
        store = make("sdc1", ft=4, rs=29, imm=0)
        assert store.fp_uses() == (4,)

    def test_fp_arith(self):
        inst = make("add.d", fd=4, fs=6, ft=8)
        assert set(inst.fp_uses()) == {6, 8}
        assert inst.fp_defs() == (4,)

    def test_fp_unary(self):
        inst = make("neg.d", fd=4, fs=6)
        assert inst.fp_uses() == (6,)
        assert inst.fp_defs() == (4,)

    def test_fp_compare_uses_only(self):
        inst = make("c.eq.d", fs=4, ft=6)
        assert set(inst.fp_uses()) == {4, 6}
        assert inst.fp_defs() == ()

    def test_mtc1_moves_int_to_fp(self):
        inst = make("mtc1", rt=8, fs=4)
        assert inst.int_uses() == (8,)
        assert inst.fp_defs() == (4,)

    def test_mfc1_moves_fp_to_int(self):
        inst = make("mfc1", rt=8, fs=4)
        assert inst.fp_uses() == (4,)
        assert inst.int_defs() == (8,)


class TestRender:
    @pytest.mark.parametrize("inst,text", [
        (make("add", rd=10, rs=8, rt=9), "add $t2, $t0, $t1"),
        (make("addiu", rt=8, rs=29, imm=-8), "addiu $t0, $sp, -8"),
        (make("lw", rt=8, rs=28, imm=16), "lw $t0, 16($gp)"),
        (make("beq", rs=8, rt=0, label="L1"), "beq $t0, $zero, L1"),
        (make("bltz", rs=8, label="L2"), "bltz $t0, L2"),
        (make("jr", rs=31), "jr $ra"),
        (make("jal", label="main"), "jal main"),
        (make("c.eq.d", fs=4, ft=6), "c.eq.d $f4, $f6"),
        (make("bc1t", label="L3"), "bc1t L3"),
        (make("mul.d", fd=2, fs=4, ft=6), "mul.d $f2, $f4, $f6"),
        (make("sdc1", ft=4, rs=29, imm=8), "sdc1 $f4, 8($sp)"),
        (make("nop"), "nop"),
        (make("syscall"), "syscall"),
    ])
    def test_render(self, inst, text):
        assert inst.render() == text

    def test_render_resolved_target(self):
        inst = Instruction(op=OPCODES_BY_NAME["j"], target_address=0x400100)
        assert inst.render() == "j 0x400100"

    def test_str_matches_render(self):
        inst = make("add", rd=10, rs=8, rt=9)
        assert str(inst) == inst.render()
