"""Tests for the sim package's convenience entry points and stragglers."""

import pytest

from repro.bcc import compile_and_link
from repro.core import HeuristicPredictor, classify_branches
from repro.isa import assemble
from repro.sim import run_with_profile, run_with_sequences

SRC = """
int main() {
    int i, s = 0;
    for (i = 0; i < 20; i++) {
        if (i % 3 == 0) { s += i; }
    }
    print_int(s);
    return 0;
}
"""


class TestRunWithProfile:
    def test_returns_complete_profile(self):
        exe = compile_and_link(SRC)
        profile = run_with_profile(exe)
        assert profile.total_dynamic_branches > 0
        assert profile.total_instructions > 0
        assert len(profile.executed_branches()) > 0

    def test_inputs_forwarded(self):
        exe = compile_and_link(
            "int main() { print_int(read_int()); return 0; }")
        profile = run_with_profile(exe, inputs=[7])
        assert profile.total_instructions > 0

    def test_respects_instruction_limit(self):
        from repro.sim import SimulationLimitExceeded
        exe = compile_and_link("int main() { while (1) { } return 0; }")
        with pytest.raises(SimulationLimitExceeded):
            run_with_profile(exe, max_instructions=1000)


class TestRunWithSequences:
    def test_multiple_predictors_one_run(self):
        exe = compile_and_link(SRC)
        analysis = classify_branches(exe)
        hp = HeuristicPredictor(analysis)
        all_taken = {a: True for a in hp.prediction_map()}
        analyzers = run_with_sequences(
            exe, {"heuristic": hp.prediction_map(), "taken": all_taken})
        assert set(analyzers) == {"heuristic", "taken"}
        h, t = analyzers["heuristic"], analyzers["taken"]
        assert h.n_branches == t.n_branches
        assert h.total_instructions == t.total_instructions


class TestAssemblerStragglers:
    def test_byte_directive(self):
        exe = assemble(".data\nb: .byte 1, -2, 127\n"
                       ".text\n.ent main\nmain:\nnop\n.end main\n")
        assert exe.data[:3] == bytes([1, 0xFE, 127])

    def test_globl_ignored(self):
        exe = assemble(".text\n.globl main\n.ent main\nmain:\nnop\n"
                       ".end main\n")
        assert len(exe.instructions) == 1

    def test_jalr_two_operands(self):
        exe = assemble(".text\n.ent f\nf:\njalr $t0, $t1\n.end f\n")
        inst = exe.instructions[0]
        assert inst.rd == 8 and inst.rs == 9

    def test_ent_inside_procedure_rejected(self):
        from repro.isa import AssemblerError
        with pytest.raises(AssemblerError, match="inside procedure"):
            assemble(".text\n.ent f\nf:\nnop\n.ent g\n.end f\n")

    def test_end_without_ent_rejected(self):
        from repro.isa import AssemblerError
        with pytest.raises(AssemblerError, match="outside procedure"):
            assemble(".text\n.end f\n")


class TestExecutableStragglers:
    def test_repr(self):
        exe = assemble(".text\n.ent main\nmain:\nnop\n.end main\n")
        text = repr(exe)
        assert "1 procs" in text and "1 insts" in text

    def test_heap_starts_after_data_aligned(self):
        exe = assemble(".data\nx: .byte 1, 2, 3\n"
                       ".text\n.ent main\nmain:\nnop\n.end main\n")
        from repro.isa import DATA_BASE
        assert exe.heap_start >= DATA_BASE + 3
        assert exe.heap_start % 8 == 0

    def test_procedure_len_and_contains(self):
        exe = assemble(".text\n.ent f\nf:\nnop\nnop\n.end f\n")
        proc = exe.procedure("f")
        assert len(proc) == 2
        assert proc.contains_address(proc.start_address)
        assert not proc.contains_address(proc.end_address)
