"""Tests for the analytic sequence-length model (Graph 12)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.model import (
    dividing_length, expected_sequence_length, model_family, model_fraction,
    model_series,
)


class TestModelFraction:
    def test_zero_length(self):
        assert model_fraction(0.1, 0) == 0.0

    def test_length_one(self):
        assert model_fraction(0.1, 1) == pytest.approx(0.1)

    def test_limits(self):
        assert model_fraction(0.1, 10_000) == pytest.approx(1.0)
        assert model_fraction(0.0, 100) == 0.0
        assert model_fraction(1.0, 1) == 1.0

    def test_known_value(self):
        # f(m,s) = 1-(1-m)^s
        assert model_fraction(0.5, 2) == pytest.approx(0.75)

    def test_invalid_miss_rate(self):
        with pytest.raises(ValueError):
            model_fraction(1.5, 10)
        with pytest.raises(ValueError):
            model_fraction(-0.1, 10)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            model_fraction(0.1, -1)

    @given(st.floats(0.001, 0.999), st.integers(0, 500))
    def test_bounds_property(self, m, s):
        f = model_fraction(m, s)
        assert 0.0 <= f <= 1.0

    @given(st.floats(0.001, 0.999), st.integers(0, 499))
    def test_monotone_in_length(self, m, s):
        assert model_fraction(m, s) <= model_fraction(m, s + 1)

    @given(st.integers(1, 400))
    def test_monotone_in_miss_rate(self, s):
        rates = [0.05, 0.1, 0.2, 0.4]
        values = [model_fraction(m, s) for m in rates]
        assert values == sorted(values)


class TestSeries:
    def test_series_matches_scalar(self):
        series = model_series(0.1, [1, 2, 10])
        for value, s in zip(series, [1, 2, 10]):
            assert value == pytest.approx(model_fraction(0.1, s))

    def test_family_default_rates(self):
        family = model_family()
        assert len(family) == 12
        assert min(family) == pytest.approx(0.025)
        assert max(family) == pytest.approx(0.30)
        for curve in family.values():
            assert len(curve) == 101

    def test_family_payoff_knee(self):
        """The paper's point: going 30% -> 15% barely lengthens sequences;
        going below 15% is where the payoff is."""
        fam = model_family()
        # fraction of instructions still in LONG sequences (>100) at each m
        tail_30 = 1 - fam[0.3][-1]
        tail_15 = 1 - fam[0.15][-1]
        tail_025 = 1 - fam[0.025][-1]
        assert tail_30 < 1e-10             # nothing long at 30%
        assert tail_15 < 1e-5              # still almost nothing at 15%
        assert tail_025 > 0.05             # real long sequences below 2.5%


class TestDerived:
    def test_expected_length(self):
        assert expected_sequence_length(0.1) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            expected_sequence_length(0.0)

    def test_dividing_length(self):
        d = dividing_length(0.1)
        assert model_fraction(0.1, math.ceil(d)) >= 0.5
        assert model_fraction(0.1, math.floor(d) - 1) < 0.5

    def test_dividing_length_bounds(self):
        with pytest.raises(ValueError):
            dividing_length(0.0)
        with pytest.raises(ValueError):
            dividing_length(1.0)

    @given(st.floats(0.01, 0.9))
    def test_dividing_consistent(self, m):
        d = dividing_length(m)
        assert abs(model_fraction(m, int(round(d))) - 0.5) < m
