"""The BLC source linter: rules L001-L005, suppression, and the CLI."""

from __future__ import annotations

import pytest

from repro.analysis.lint import RULES, lint_source
from repro.bcc.errors import CompileError


def rules_of(source: str) -> list[str]:
    return [d.rule for d in lint_source(source)]


# -- L001: possibly-uninitialized ------------------------------------------


def test_l001_use_before_init():
    src = """
    int main() {
        int x;
        print_int(x);
        x = 1;
        return 0;
    }
    """
    assert "L001" in rules_of(src)


def test_l001_respects_both_branch_init():
    src = """
    int main() {
        int x;
        if (read_int() > 0) { x = 1; } else { x = 2; }
        print_int(x);
        return 0;
    }
    """
    assert "L001" not in rules_of(src)


def test_l001_flags_one_sided_init():
    src = """
    int main() {
        int x;
        if (read_int() > 0) { x = 1; }
        print_int(x);
        return 0;
    }
    """
    assert "L001" in rules_of(src)


def test_l001_params_and_address_taken_are_exempt():
    src = """
    int helper(int n) { return n + 1; }
    int main() {
        int x;
        read_into(&x);
        print_int(helper(x));
        return 0;
    }
    """
    # &x means writes may happen through the pointer: no L001 for x,
    # and the parameter read in helper is always fine
    diags = [d for d in lint_source(src) if d.rule == "L001"]
    assert diags == []


# -- L002: unreachable ------------------------------------------------------


def test_l002_after_return():
    src = """
    int main() {
        return 0;
        print_int(1);
    }
    """
    assert "L002" in rules_of(src)


def test_l002_after_exhaustive_if():
    src = """
    int main() {
        if (read_int() > 0) { return 1; } else { return 2; }
        print_int(3);
    }
    """
    assert "L002" in rules_of(src)


def test_l002_one_report_per_dead_run():
    src = """
    int main() {
        return 0;
        print_int(1);
        print_int(2);
        print_int(3);
    }
    """
    assert rules_of(src).count("L002") == 1


# -- L003: constant conditions ---------------------------------------------


def test_l003_constant_if():
    src = """
    int main() {
        if (1 == 1) { print_int(1); }
        return 0;
    }
    """
    assert "L003" in rules_of(src)


def test_l003_exempts_idiomatic_infinite_loops():
    src = """
    int main() {
        while (1) {
            if (read_int() == 0) { return 0; }
        }
        return 0;
    }
    """
    assert "L003" not in rules_of(src)


def test_l003_flags_computed_constant_loop_condition():
    src = """
    int main() {
        while (2 > 3) { print_int(1); }
        return 0;
    }
    """
    assert "L003" in rules_of(src)


# -- L004: dead stores ------------------------------------------------------


def test_l004_overwritten_store():
    src = """
    int main() {
        int x;
        x = 5;
        x = 6;
        print_int(x);
        return 0;
    }
    """
    assert "L004" in rules_of(src)


def test_l004_not_when_read_between():
    src = """
    int main() {
        int x;
        x = 5;
        x = x + 1;
        print_int(x);
        return 0;
    }
    """
    assert "L004" not in rules_of(src)


def test_l004_control_flow_is_a_barrier():
    src = """
    int main() {
        int x;
        x = 5;
        if (read_int() > 0) { print_int(x); }
        x = 6;
        print_int(x);
        return 0;
    }
    """
    assert "L004" not in rules_of(src)


# -- L005: floating-point equality -----------------------------------------


def test_l005_double_equality():
    src = """
    int main() {
        double a;
        a = read_double();
        if (a == 0.1) { print_int(1); }
        return 0;
    }
    """
    assert "L005" in rules_of(src)


def test_l005_int_equality_is_fine():
    src = """
    int main() {
        if (read_int() == 3) { print_int(1); }
        return 0;
    }
    """
    assert "L005" not in rules_of(src)


# -- L006: provably zero-trip loop ------------------------------------------


def test_l006_zero_trip_for():
    src = """
    int main() {
        int i;
        int total;
        total = 0;
        for (i = 10; i < 10; i = i + 1) { total = total + i; }
        print_int(total);
        return 0;
    }
    """
    assert "L006" in rules_of(src)


def test_l006_descending_zero_trip():
    src = """
    int main() {
        int i;
        for (i = 0; i > 0; i = i - 1) { print_int(i); }
        return 0;
    }
    """
    assert "L006" in rules_of(src)


def test_l006_mirrored_bound():
    src = """
    int main() {
        int i;
        for (i = 5; 5 > i; i = i + 1) { print_int(i); }
        return 0;
    }
    """
    assert "L006" in rules_of(src)


def test_l006_counted_loop_is_fine():
    src = """
    int main() {
        int i;
        for (i = 0; i < 10; i = i + 1) { print_int(i); }
        return 0;
    }
    """
    assert "L006" not in rules_of(src)


def test_l006_abstains_on_non_literal_bound():
    src = """
    int main() {
        int i;
        int n;
        n = read_int();
        for (i = 10; i < n; i = i + 1) { print_int(i); }
        return 0;
    }
    """
    assert "L006" not in rules_of(src)


def test_l006_suppression():
    src = """
    int main() {
        int i;
        for (i = 10; i < 10; i = i + 1) { print_int(i); }  // lint: disable=L006
        return 0;
    }
    """
    assert "L006" not in rules_of(src)


# -- suppression ------------------------------------------------------------


def test_suppression_by_rule_id():
    src = """
    int main() {
        if (1 == 1) { print_int(1); }  // lint: disable=L003
        return 0;
    }
    """
    assert "L003" not in rules_of(src)


def test_suppression_all():
    src = """
    int main() {
        int x;
        x = 5;
        x = 6;  /* overwrites: lint: disable=all */
        print_int(x);
        return 0;
    }
    """
    # the disable sits on the *overwriting* line, but L004 points at the
    # overwritten store one line up — so it still fires there
    src_ok = """
    int main() {
        int x;
        x = 5;  // lint: disable=all
        x = 6;
        print_int(x);
        return 0;
    }
    """
    assert "L004" in rules_of(src)
    assert "L004" not in rules_of(src_ok)


def test_suppression_only_silences_its_own_line():
    src = """
    int main() {
        if (1 == 1) { print_int(1); }  // lint: disable=L003
        if (2 == 2) { print_int(2); }
        return 0;
    }
    """
    assert rules_of(src).count("L003") == 1


# -- diagnostics shape / catalog -------------------------------------------


def test_diagnostics_carry_positions_and_format():
    src = "int main() {\n    return 0;\n    print_int(1);\n}\n"
    diags = lint_source(src, filename="prog.blc")
    assert diags, "expected the unreachable statement to be reported"
    diag = diags[0]
    assert diag.filename == "prog.blc"
    assert diag.line == 3
    assert diag.format().startswith("prog.blc:3:")
    assert diag.rule in RULES


def test_parse_failure_raises_compile_error():
    with pytest.raises(CompileError):
        lint_source("int main( {")


def test_runtime_library_is_never_linted():
    # a totally clean program reports nothing, even though the runtime
    # sources are parsed for symbol context
    src = """
    int main() {
        print_int(read_int() + 1);
        return 0;
    }
    """
    assert rules_of(src) == []


# -- CLI --------------------------------------------------------------------


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.bcc.__main__ import main

    dirty = tmp_path / "dirty.blc"
    dirty.write_text(
        "int main() {\n    int x;\n    print_int(x);\n"
        "    x = 0;\n    return 0;\n}\n")
    clean = tmp_path / "clean.blc"
    clean.write_text("int main() { print_int(1); return 0; }\n")

    assert main([str(dirty), "--lint"]) == 1
    out = capsys.readouterr().out
    assert "L001" in out and "dirty.blc" in out

    assert main([str(clean), "--lint"]) == 0
