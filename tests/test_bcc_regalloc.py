"""Unit tests for liveness intervals and linear-scan register allocation."""

from repro.bcc.ir import (
    FP, INT, BinOp, Call, Copy, Imm, IRBlock, IRFunction, Jump, LoadConst,
    LoadFConst, Ret, CBr, FBinOp,
)
from repro.bcc.regalloc import (
    FP_CALLER, INT_CALLEE, INT_CALLER, _build_intervals, allocate_registers,
)


def func_of(blocks, params=(), classes=None) -> IRFunction:
    f = IRFunction("t")
    f.blocks = list(blocks)
    f.params = list(params)
    classes = classes or {}
    for b in blocks:
        for inst in b.instructions:
            for v in list(inst.uses()) + list(inst.defs()):
                f.vreg_class.setdefault(v, classes.get(v, INT))
    for _, v, k in f.params:
        f.vreg_class.setdefault(v, k)
    f._next_vreg = max(f.vreg_class, default=0) + 1
    return f


class TestIntervals:
    def test_simple_interval(self):
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),          # pos 0: def v0
            BinOp("add", 1, 0, Imm(1)),  # pos 1: use v0, def v1
            Ret(1, INT),              # pos 2: use v1
        ])])
        intervals, calls = _build_intervals(f)
        by_vreg = {iv.vreg: iv for iv in intervals}
        assert by_vreg[0].start == 0 and by_vreg[0].end == 1
        assert by_vreg[1].start == 1 and by_vreg[1].end == 2
        assert calls == []

    def test_param_starts_before_first_instruction(self):
        f = func_of([IRBlock("e", [
            Call(1, "g", [], [], INT),     # pos 0: a call at position 0!
            BinOp("add", 2, 0, 1),         # uses param v0 afterwards
            Ret(2, INT),
        ])], params=[("p", 0, INT)])
        intervals, _ = _build_intervals(f)
        p = next(iv for iv in intervals if iv.vreg == 0)
        assert p.start == -1
        assert p.crosses_call  # the regression that broke minilisp

    def test_crosses_call_detection(self):
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),
            Call(1, "g", [], [], INT),
            BinOp("add", 2, 0, 1),
            Ret(2, INT),
        ])])
        intervals, _ = _build_intervals(f)
        by_vreg = {iv.vreg: iv for iv in intervals}
        assert by_vreg[0].crosses_call
        assert not by_vreg[1].crosses_call   # defined by the call itself
        assert not by_vreg[2].crosses_call

    def test_argument_ending_at_call_does_not_cross(self):
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),
            Call(1, "g", [0], [INT], INT),   # v0's last use is the call
            Ret(1, INT),
        ])])
        intervals, _ = _build_intervals(f)
        v0 = next(iv for iv in intervals if iv.vreg == 0)
        assert not v0.crosses_call

    def test_loop_widens_interval(self):
        f = func_of([
            IRBlock("e", [LoadConst(0, 10), Jump("loop")]),
            IRBlock("loop", [
                BinOp("add", 0, 0, Imm(-1)),
                CBr("ne", 0, Imm(0), "loop", "out"),
            ]),
            IRBlock("out", [Ret(0, INT)]),
        ])
        intervals, _ = _build_intervals(f)
        v0 = next(iv for iv in intervals if iv.vreg == 0)
        # live through the whole function
        assert v0.start == 0
        assert v0.end >= 4


class TestAllocation:
    def test_all_vregs_located(self):
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),
            BinOp("add", 1, 0, Imm(1)),
            Ret(1, INT),
        ])])
        alloc = allocate_registers(f)
        assert set(alloc.location) >= {0, 1}

    def test_non_crossing_gets_caller_saved_first(self):
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),
            Ret(0, INT),
        ])])
        alloc = allocate_registers(f)
        assert alloc.reg_of(0) in INT_CALLER

    def test_call_crossing_value_not_in_caller_saved(self):
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),
            Call(1, "g", [], [], INT),
            BinOp("add", 2, 0, 1),
            Ret(2, INT),
        ])])
        alloc = allocate_registers(f)
        reg = alloc.reg_of(0)
        assert reg is None or reg in INT_CALLEE

    def test_used_callee_saved_reported(self):
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),
            Call(1, "g", [], [], INT),
            BinOp("add", 2, 0, 1),
            Ret(2, INT),
        ])])
        alloc = allocate_registers(f)
        if alloc.reg_of(0) is not None:
            assert alloc.reg_of(0) in alloc.used_int_callee

    def test_spilling_under_pressure(self):
        # 30 simultaneously-live ints > 16 allocatable registers
        insts = [LoadConst(i, i) for i in range(30)]
        acc = 30
        prev = 0
        for i in range(1, 30):
            insts.append(BinOp("add", acc, prev, i))
            prev = acc
            acc += 1
        insts.append(Ret(prev, INT))
        f = func_of([IRBlock("e", insts)])
        alloc = allocate_registers(f)
        assert alloc.int_spills > 0
        # no two overlapping intervals share a register
        intervals, _ = _build_intervals(f)
        placed = [iv for iv in intervals
                  if alloc.reg_of(iv.vreg) is not None]
        for a in placed:
            for b in placed:
                if a.vreg < b.vreg and \
                        alloc.reg_of(a.vreg) == alloc.reg_of(b.vreg):
                    assert a.end < b.start or b.end < a.start

    def test_fp_pool_separate(self):
        f = func_of(
            [IRBlock("e", [
                LoadFConst(0, 1.5),
                LoadConst(1, 2),
                FBinOp("fadd", 2, 0, 0),
                Ret(1, INT),
            ])],
            classes={0: FP, 2: FP})
        alloc = allocate_registers(f)
        assert alloc.reg_of(0) in FP_CALLER
        assert alloc.reg_of(1) in INT_CALLER

    def test_distinct_registers_same_position(self):
        """Operands and results live at the same instruction never share."""
        f = func_of([IRBlock("e", [
            LoadConst(0, 1),
            LoadConst(1, 2),
            BinOp("add", 2, 0, 1),
            BinOp("add", 3, 2, 0),
            Ret(3, INT),
        ])])
        alloc = allocate_registers(f)
        assert alloc.reg_of(0) != alloc.reg_of(2)
