"""Unit tests for the IR optimizer passes, at the IR level."""

import pytest

from repro.bcc.ir import (
    INT, BinOp, Call, CBr, Copy, Imm, IRBlock, IRFunction, Jump, Load,
    LoadConst, Ret, Store, FrameSlot,
)
from repro.bcc.opt import (
    _coalesce_copies, _eliminate_dead, _fold_binop, _local_propagate,
    _simplify_cfg, compute_liveness, optimize_function,
)


def func_of(*blocks: IRBlock) -> IRFunction:
    f = IRFunction("t")
    f.blocks = list(blocks)
    for b in blocks:
        for inst in b.instructions:
            for v in list(inst.uses()) + list(inst.defs()):
                f.vreg_class.setdefault(v, INT)
    f._next_vreg = max(f.vreg_class, default=0) + 1
    return f


class TestFoldBinop:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 2, 3, 5),
        ("add", 2**31 - 1, 1, -(2**31)),
        ("sub", 0, 1, -1),
        ("mul", -3, 4, -12),
        ("div", 7, -2, -3),
        ("rem", -7, 2, -1),
        ("and", 0xF0, 0x3C, 0x30),
        ("or", 1, 2, 3),
        ("xor", 5, 3, 6),
        ("shl", 1, 31, -(2**31)),
        ("shr", -8, 1, -4),
        ("sru", -8, 1, 0x7FFFFFFC),
        ("slt", -1, 0, 1),
        ("sltu", -1, 0, 0),
    ])
    def test_matches_machine_semantics(self, op, a, b, expected):
        assert _fold_binop(op, a, b) == expected

    def test_division_by_zero_not_folded(self):
        assert _fold_binop("div", 1, 0) is None
        assert _fold_binop("rem", 1, 0) is None


class TestLocalPropagate:
    def test_constant_folding_chain(self):
        block = IRBlock("b", [
            LoadConst(0, 6),
            LoadConst(1, 7),
            BinOp("mul", 2, 0, 1),
            Ret(2, INT),
        ])
        _local_propagate(block)
        assert isinstance(block.instructions[2], LoadConst)
        assert block.instructions[2].value == 42

    def test_algebraic_identities(self):
        block = IRBlock("b", [
            BinOp("add", 1, 0, Imm(0)),
            BinOp("mul", 2, 1, Imm(1)),
            Ret(2, INT),
        ])
        _local_propagate(block)
        assert isinstance(block.instructions[0], Copy)
        assert isinstance(block.instructions[1], Copy)

    def test_mul_pow2_becomes_shift(self):
        block = IRBlock("b", [BinOp("mul", 1, 0, Imm(8)), Ret(1, INT)])
        _local_propagate(block)
        inst = block.instructions[0]
        assert inst.op == "shl" and inst.b == Imm(3)

    def test_immediate_forms(self):
        block = IRBlock("b", [
            LoadConst(0, 5),
            BinOp("add", 2, 1, 0),
            Ret(2, INT),
        ])
        _local_propagate(block)
        inst = block.instructions[1]
        assert inst.b == Imm(5)

    def test_no_unsigned_imm_for_negative(self):
        block = IRBlock("b", [
            LoadConst(0, -1),
            BinOp("and", 2, 1, 0),
            Ret(2, INT),
        ])
        _local_propagate(block)
        assert not isinstance(block.instructions[1].b, Imm)

    def test_constant_branch_becomes_jump(self):
        block = IRBlock("b", [
            LoadConst(0, 1),
            CBr("ne", 0, Imm(0), "yes", "no"),
        ])
        _local_propagate(block)
        assert isinstance(block.instructions[-1], Jump)
        assert block.instructions[-1].label == "yes"

    def test_copies_not_forward_propagated(self):
        """Copy sources must NOT replace later uses — that would leave two
        live names for one value (see Guard-heuristic note in opt.py)."""
        block = IRBlock("b", [
            Copy(1, 0),
            BinOp("add", 2, 1, Imm(1)),
            Ret(2, INT),
        ])
        _local_propagate(block)
        assert block.instructions[1].a == 1

    def test_redefinition_invalidates_constant(self):
        block = IRBlock("b", [
            LoadConst(0, 5),
            Load(0, FrameSlot(0), 0, "w"),   # clobbers the constant
            BinOp("add", 1, 0, Imm(0)),      # simplified to Copy, fine
            CBr("eq", 0, Imm(0), "a", "b"),  # must NOT fold
        ])
        _local_propagate(block)
        assert isinstance(block.instructions[-1], CBr)


class TestDeadCode:
    def test_unused_pure_removed(self):
        f = func_of(IRBlock("e", [
            LoadConst(0, 1),
            LoadConst(1, 2),     # dead
            Ret(0, INT),
        ]))
        _eliminate_dead(f)
        assert len(f.blocks[0].instructions) == 2

    def test_stores_and_calls_kept(self):
        f = func_of(IRBlock("e", [
            LoadConst(0, 1),
            Store(0, FrameSlot(0), 0, "w"),
            Call(None, "g", [], [], None),
            Ret(None, None),
        ]))
        _eliminate_dead(f)
        assert len(f.blocks[0].instructions) == 4

    def test_cross_block_liveness(self):
        f = func_of(
            IRBlock("e", [LoadConst(0, 7), Jump("x")]),
            IRBlock("x", [Ret(0, INT)]),
        )
        _eliminate_dead(f)
        assert len(f.blocks[0].instructions) == 2  # the const is live

    def test_liveness_loop(self):
        f = func_of(
            IRBlock("e", [LoadConst(0, 7), Jump("loop")]),
            IRBlock("loop", [
                BinOp("add", 0, 0, Imm(1)),
                CBr("ne", 0, Imm(0), "loop", "out"),
            ]),
            IRBlock("out", [Ret(0, INT)]),
        )
        live = compute_liveness(f)
        assert 0 in live["e"]
        assert 0 in live["loop"]


class TestCoalesce:
    def test_producer_copy_pair_merged(self):
        f = func_of(IRBlock("e", [
            BinOp("add", 1, 0, Imm(2)),
            Copy(2, 1),
            Ret(2, INT),
        ]))
        _coalesce_copies(f)
        insts = f.blocks[0].instructions
        assert len(insts) == 2
        assert insts[0].dst == 2

    def test_not_merged_when_source_reused(self):
        f = func_of(IRBlock("e", [
            BinOp("add", 1, 0, Imm(2)),
            Copy(2, 1),
            BinOp("add", 3, 1, Imm(1)),  # second use of v1
            Ret(3, INT),
        ]))
        _coalesce_copies(f)
        assert len(f.blocks[0].instructions) == 4

    def test_not_merged_when_dst_used_between(self):
        f = func_of(IRBlock("e", [
            BinOp("add", 1, 0, Imm(2)),
            BinOp("add", 3, 2, Imm(1)),  # reads old v2
            Copy(2, 1),
            Ret(2, INT),
        ]))
        _coalesce_copies(f)
        assert len(f.blocks[0].instructions) == 4


class TestSimplifyCfg:
    def test_jump_threading(self):
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "hop", "out")]),
            IRBlock("hop", [Jump("target")]),
            IRBlock("target", [Ret(0, INT)]),
            IRBlock("out", [Ret(0, INT)]),
        )
        _simplify_cfg(f)
        term = f.blocks[0].terminator
        assert term.true_label == "target"

    def test_unreachable_removed(self):
        f = func_of(
            IRBlock("e", [Ret(0, INT)]),
            IRBlock("island", [Ret(0, INT)]),
        )
        _simplify_cfg(f)
        assert [b.label for b in f.blocks] == ["e"]

    def test_same_target_cbr_to_jump(self):
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "x", "x")]),
            IRBlock("x", [Ret(0, INT)]),
        )
        _simplify_cfg(f)
        assert isinstance(f.blocks[0].instructions[-1],
                          (Jump, Ret))

    def test_straight_line_merge(self):
        f = func_of(
            IRBlock("e", [LoadConst(0, 1), Jump("next")]),
            IRBlock("next", [Ret(0, INT)]),
        )
        _simplify_cfg(f)
        assert len(f.blocks) == 1
        assert isinstance(f.blocks[0].terminator, Ret)


class TestFixpoint:
    def test_optimize_function_terminates_and_preserves_semantics(self):
        f = func_of(
            IRBlock("e", [
                LoadConst(0, 10),
                LoadConst(1, 0),
                BinOp("add", 2, 0, 1),      # = v0
                Copy(3, 2),
                CBr("gt", 3, Imm(0), "pos", "neg"),
            ]),
            IRBlock("pos", [LoadConst(4, 1), Jump("out")]),
            IRBlock("neg", [LoadConst(4, 0), Jump("out")]),
            IRBlock("out", [Ret(4, INT)]),
        )
        optimize_function(f)
        # whole thing folds: the branch is constant-true
        labels = [b.label for b in f.blocks]
        assert "neg" not in labels
