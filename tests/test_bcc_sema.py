"""Tests for BLC semantic analysis: types, conversions, scoping, errors."""

import pytest

from repro.bcc import ast_nodes as A
from repro.bcc.errors import CompileError
from repro.bcc.parser import parse
from repro.bcc.sema import analyze
from repro.bcc.types import CHAR, DOUBLE, INT, PointerType


def check(source: str):
    return analyze(parse(source))


def expr_type(expr_text: str, prelude: str = "", decls: str = ""):
    info = check(f"{prelude}\nint main() {{ {decls} return 0 + 0 * "
                 f"(({expr_text}) != 0); }}")
    return info


class TestDeclarations:
    def test_globals_registered(self):
        info = check("int a;\ndouble b;\nint main() { return 0; }")
        assert [g.name for g in info.globals] == ["a", "b"]

    def test_duplicate_global(self):
        with pytest.raises(CompileError, match="redefinition"):
            check("int a;\nint a;\nint main() { return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(CompileError, match="redefinition"):
            check("int f() { return 0; }\nint f() { return 1; }\n"
                  "int main() { return 0; }")

    def test_void_variable_rejected(self):
        with pytest.raises(CompileError, match="void"):
            check("void v;\nint main() { return 0; }")

    def test_void_pointer_allowed(self):
        check("void *p;\nint main() { return 0; }")

    def test_struct_layout(self):
        info = check("struct S { char c; int i; double d; };\n"
                     "int main() { return sizeof(struct S); }")
        s = info.structs["S"]
        assert s.field_named("c").offset == 0
        assert s.field_named("i").offset == 4
        assert s.field_named("d").offset == 8
        assert s.size() == 16
        assert s.align() == 8

    def test_struct_by_value_before_definition(self):
        with pytest.raises(CompileError, match="before its definition"):
            check("struct Later x;\nstruct Later { int a; };\n"
                  "int main() { return 0; }")

    def test_self_referential_struct_pointer(self):
        check("struct N { int v; struct N *next; };\n"
              "int main() { return 0; }")

    def test_struct_redefinition(self):
        with pytest.raises(CompileError, match="redefined"):
            check("struct S { int a; };\nstruct S { int b; };\n"
                  "int main() { return 0; }")

    def test_duplicate_field(self):
        with pytest.raises(CompileError, match="duplicate field"):
            check("struct S { int a; int a; };\nint main() { return 0; }")

    def test_function_used_before_definition(self):
        check("int f() { return g(); }\nint g() { return 1; }\n"
              "int main() { return f(); }")

    def test_reserved_runtime_name(self):
        with pytest.raises(CompileError, match="reserved"):
            check("void print_int(int x) { }\nint main() { return 0; }")

    def test_runtime_signature_must_match(self):
        with pytest.raises(CompileError, match="signature"):
            check("int malloc(int n, int m) { return 0; }\n"
                  "int main() { return 0; }")

    def test_struct_param_rejected(self):
        with pytest.raises(CompileError, match="scalar"):
            check("struct S { int a; };\nint f(struct S s) { return 0; }\n"
                  "int main() { return 0; }")

    def test_struct_return_rejected(self):
        with pytest.raises(CompileError, match="pointer"):
            check("struct S { int a; };\nstruct S f() { }\n"
                  "int main() { return 0; }")

    def test_global_init_constant_folding(self):
        info = check("int x = 2 * 3 + 1;\nint main() { return 0; }")
        assert isinstance(info.globals[0].init, A.IntLit)
        assert info.globals[0].init.value == 7

    def test_global_init_negative(self):
        info = check("int x = -5;\nint main() { return 0; }")
        assert info.globals[0].init.value == -5

    def test_global_init_non_constant(self):
        with pytest.raises(CompileError, match="constant"):
            check("int y;\nint x = y + 1;\nint main() { return 0; }")

    def test_global_string_init(self):
        check('char *msg = "hello";\nint main() { return 0; }')

    def test_array_global_no_initializer(self):
        with pytest.raises(CompileError, match="scalar"):
            check("int a[4] = 1;\nint main() { return 0; }")


class TestScoping:
    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared"):
            check("int main() { return nope; }")

    def test_block_scoping(self):
        check("int main() { int a = 1; { int a = 2; } return a; }")

    def test_inner_scope_not_visible_outside(self):
        with pytest.raises(CompileError, match="undeclared"):
            check("int main() { { int a = 1; } return a; }")

    def test_duplicate_local_same_scope(self):
        with pytest.raises(CompileError, match="redefinition"):
            check("int main() { int a; int a; return 0; }")

    def test_param_visible(self):
        check("int f(int a) { return a; }\nint main() { return f(1); }")

    def test_function_as_value_rejected(self):
        with pytest.raises(CompileError, match="function pointers"):
            check("int f() { return 0; }\nint main() { return f; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break"):
            check("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError, match="continue"):
            check("int main() { continue; return 0; }")


class TestTypeChecking:
    def test_arith_conversion_to_double(self):
        info = check("int main() { double d; int i; i = 1; d = i + 1.5; "
                     "return 0; }")
        assert info is not None

    def test_pointer_plus_int(self):
        check("int main() { int a[4]; int *p; p = a + 1; return 0; }")

    def test_pointer_minus_pointer(self):
        check("int main() { int a[4]; return (a + 3) - a; }")

    def test_pointer_plus_pointer_rejected(self):
        with pytest.raises(CompileError):
            check("int main() { int a[4]; int *p; p = a + a; return 0; }")

    def test_incompatible_pointer_assignment(self):
        with pytest.raises(CompileError, match="cast"):
            check("int main() { int *p; double *q; q = 0; p = q; return 0; }")

    def test_void_pointer_interchange(self):
        check("int main() { void *v; int *p; p = 0; v = p; p = v; "
              "return 0; }")

    def test_null_literal_to_pointer(self):
        check("int main() { int *p = NULL; return p == NULL; }")

    def test_pointer_int_comparison_rejected(self):
        with pytest.raises(CompileError):
            check("int main() { int *p; p = 0; return p == 3; }")

    def test_explicit_pointer_casts(self):
        check("struct S { int a; };\n"
              "int main() { char *m; struct S *s; m = malloc(8); "
              "s = (struct S *)m; return s->a; }")

    def test_int_to_pointer_needs_cast(self):
        with pytest.raises(CompileError):
            check("int main() { int *p; p = 5; return 0; }")

    def test_int_to_pointer_with_cast(self):
        check("int main() { int *p; p = (int *)256; return 0; }")

    def test_deref_non_pointer(self):
        with pytest.raises(CompileError, match="dereference"):
            check("int main() { int x; return *x; }")

    def test_deref_void_pointer(self):
        with pytest.raises(CompileError, match="void"):
            check("int main() { void *p; p = 0; return *p; }")

    def test_address_of_rvalue(self):
        with pytest.raises(CompileError, match="address"):
            check("int main() { int *p; p = &(1 + 2); return 0; }")

    def test_address_of_marks_symbol(self):
        info = check("int main() { int x; int *p; p = &x; return *p; }")
        func = info.functions[-1]
        decl = func.body.statements[0]
        assert decl.symbol.address_taken

    def test_mod_requires_ints(self):
        with pytest.raises(CompileError):
            check("int main() { double d; d = 1.0; return 2 % (int)d + "
                  "(int)(d % 2.0); }")

    def test_shift_requires_ints(self):
        with pytest.raises(CompileError):
            check("int main() { double d; d = 1.0; return 1 << d; }")

    def test_condition_must_be_scalar(self):
        with pytest.raises(CompileError, match="scalar"):
            check("struct S { int a; };\nstruct S g;\n"
                  "int main() { if (g) return 1; return 0; }")

    def test_assignment_to_rvalue(self):
        with pytest.raises(CompileError, match="lvalue"):
            check("int main() { 1 = 2; return 0; }")

    def test_whole_struct_assignment_rejected(self):
        with pytest.raises(CompileError, match="memcpy"):
            check("struct S { int a; };\nstruct S x, y;\n"
                  "int main() { x = y; return 0; }")

    def test_member_on_non_struct(self):
        with pytest.raises(CompileError):
            check("int main() { int x; return x.f; }")

    def test_arrow_on_non_pointer(self):
        with pytest.raises(CompileError, match="pointer"):
            check("struct S { int a; };\nstruct S g;\n"
                  "int main() { return g->a; }")

    def test_unknown_field(self):
        with pytest.raises(CompileError, match="no field"):
            check("struct S { int a; };\nstruct S g;\n"
                  "int main() { return g.b; }")

    def test_call_arity(self):
        with pytest.raises(CompileError, match="arguments"):
            check("int f(int a) { return a; }\nint main() { return f(); }")

    def test_call_undefined(self):
        with pytest.raises(CompileError, match="undefined function"):
            check("int main() { return zap(); }")

    def test_arg_conversion(self):
        check("double f(double d) { return d; }\n"
              "int main() { return (int)f(3); }")

    def test_return_type_mismatch(self):
        with pytest.raises(CompileError):
            check("int *f() { int x; return &x; }\n"
                  "int main() { double *d; d = 0; return 0; }\n"
                  "double *g() { return f(); }")

    def test_return_value_in_void(self):
        with pytest.raises(CompileError, match="void"):
            check("void f() { return 1; }\nint main() { return 0; }")

    def test_return_without_value(self):
        with pytest.raises(CompileError, match="without value"):
            check("int f() { return; }\nint main() { return 0; }")

    def test_index_requires_integer(self):
        with pytest.raises(CompileError, match="integer"):
            check("int main() { int a[4]; double d; d = 1.0; "
                  "return a[d]; }")

    def test_ternary_arm_unification(self):
        check("int main() { double d; d = 1 ? 2 : 3.5; return (int)d; }")

    def test_ternary_pointer_null(self):
        check("int main() { int a[2]; int *p; p = 1 ? a : NULL; "
              "return 0; }")

    def test_incdec_requires_lvalue(self):
        with pytest.raises(CompileError, match="lvalue"):
            check("int main() { return (1 + 2)++; }")

    def test_sizeof_values(self):
        info = check("struct S { int a; double b; };\n"
                     "int main() { return sizeof(struct S) + sizeof(int *) "
                     "+ sizeof(char); }")
        assert info is not None
