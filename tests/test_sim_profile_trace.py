"""Tests for edge profiling and trace-based sequence analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.isa.instructions import Instruction, OPCODES_BY_NAME
from repro.sim import BranchTrace, EdgeProfile, Machine, SequenceAnalyzer
from repro.sim.trace import BUCKET_WIDTH, NUM_BUCKETS


def branch_at(addr):
    return Instruction(op=OPCODES_BY_NAME["beq"], rs=8, rt=0, address=addr)


class TestEdgeProfile:
    def make_profile(self, events):
        profile = EdgeProfile()
        for addr, taken in events:
            profile.on_branch(branch_at(addr), taken, 0)
        return profile

    def test_counts(self):
        p = self.make_profile([(100, True), (100, True), (100, False)])
        assert p.taken_count(100) == 2
        assert p.not_taken_count(100) == 1
        assert p.execution_count(100) == 3

    def test_unknown_branch_is_zero(self):
        p = EdgeProfile()
        assert p.taken_count(4) == 0
        assert p.execution_count(4) == 0
        assert 4 not in p

    def test_executed_branches_sorted(self):
        p = self.make_profile([(300, True), (100, False), (200, True)])
        assert p.executed_branches() == [100, 200, 300]

    def test_total(self):
        p = self.make_profile([(1, True)] * 5 + [(2, False)] * 3)
        assert p.total_dynamic_branches == 8
        assert len(p) == 2

    def test_perfect_predictions_majority(self):
        p = self.make_profile([(1, True), (1, True), (1, False),
                               (2, False), (2, False)])
        preds = p.perfect_predictions()
        assert preds[1] is True
        assert preds[2] is False

    def test_perfect_prediction_tie_goes_taken(self):
        p = self.make_profile([(1, True), (1, False)])
        assert p.perfect_predictions()[1] is True

    def test_perfect_miss_count(self):
        p = self.make_profile([(1, True)] * 7 + [(1, False)] * 3)
        assert p.perfect_miss_count(1) == 3

    def test_merged(self):
        a = self.make_profile([(1, True), (2, False)])
        b = self.make_profile([(1, False), (3, True)])
        merged = a.merged_with(b)
        assert merged.taken_count(1) == 1
        assert merged.not_taken_count(1) == 1
        assert merged.execution_count(3) == 1
        assert merged.total_dynamic_branches == 4

    @given(st.lists(st.tuples(st.sampled_from([4, 8, 12]), st.booleans()),
                    max_size=200))
    def test_counts_invariant(self, events):
        p = self.make_profile(events)
        total = sum(p.execution_count(a) for a in p.executed_branches())
        assert total == len(events) == p.total_dynamic_branches
        for addr in p.executed_branches():
            assert p.perfect_miss_count(addr) <= p.execution_count(addr) // 2


class TestSequenceAnalyzer:
    def test_correct_predictions_no_breaks(self):
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        for i in range(5):
            sa.on_branch(branch_at(100), True, 10 * (i + 1))
        sa.on_finish(60)
        assert sa.n_breaks == 0
        assert sa.n_mispredicts == 0
        assert sa.miss_rate == 0.0

    def test_mispredicts_break_sequences(self):
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        sa.on_branch(branch_at(100), False, 7)    # break, length 7
        sa.on_branch(branch_at(100), True, 15)    # correct
        sa.on_branch(branch_at(100), False, 30)   # break, length 23
        sa.on_finish(40)
        assert sa.n_breaks == 2
        assert sa.seq_counts[0] == 1   # bucket [0,9]
        assert sa.seq_counts[2] == 1   # bucket [20,29]
        assert sa.seq_instr_sums[0] == 7
        assert sa.seq_instr_sums[2] == 23

    def test_trailing_sequence_included_by_default(self):
        sa = SequenceAnalyzer({100: True})
        sa.on_branch(branch_at(100), False, 5)
        sa.on_finish(50)
        assert sa.n_breaks == 2
        assert sum(sa.seq_instr_sums) == 50

    def test_indirect_always_breaks(self):
        sa = SequenceAnalyzer({}, include_trailing=False)
        jalr = Instruction(op=OPCODES_BY_NAME["jalr"], rd=31, rs=8,
                           address=4)
        sa.on_indirect(jalr, 12)
        assert sa.n_breaks == 1

    def test_missing_prediction_raises(self):
        sa = SequenceAnalyzer({})
        with pytest.raises(KeyError):
            sa.on_branch(branch_at(123), True, 1)

    def test_overflow_bucket(self):
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        sa.on_branch(branch_at(100), False, 50_000)
        assert sa.seq_counts[NUM_BUCKETS - 1] == 1

    def test_ipbc_average(self):
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        sa.on_branch(branch_at(100), False, 40)
        sa.on_branch(branch_at(100), False, 100)
        sa.on_finish(100)
        assert sa.ipbc_average == 50.0

    def test_ipbc_no_breaks(self):
        sa = SequenceAnalyzer({}, include_trailing=False)
        sa.on_finish(500)
        assert sa.ipbc_average == 500.0

    def test_cumulative_instructions_monotone_to_100(self):
        sa = SequenceAnalyzer({100: True})
        for count in (13, 27, 101, 630):
            sa.on_branch(branch_at(100), False, count)
        sa.on_finish(700)
        curve = sa.cumulative_instructions()
        values = [v for _, v in curve]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(100.0)

    def test_cumulative_breaks(self):
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        sa.on_branch(branch_at(100), False, 5)     # len 5
        sa.on_branch(branch_at(100), False, 1000)  # len 995
        sa.on_finish(1000)
        curve = sa.cumulative_breaks()
        assert curve[0] == (BUCKET_WIDTH, 50.0)

    def test_dividing_length(self):
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        sa.on_branch(branch_at(100), False, 100)   # len 100
        sa.on_branch(branch_at(100), False, 200)   # len 100
        sa.on_finish(200)
        # 50% of instructions reached at the bucket containing length 100
        assert sa.dividing_length == 110

    def test_skewed_distribution_ipbc_underestimates(self):
        # the paper's spice argument: many short sequences + few huge ones
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        count = 0
        for _ in range(90):     # 90 sequences of length 10
            count += 10
            sa.on_branch(branch_at(100), False, count)
        for _ in range(10):     # 10 sequences of length 2000
            count += 2000
            sa.on_branch(branch_at(100), False, count)
        sa.on_finish(count)
        assert sa.ipbc_average < sa.dividing_length

    @given(st.lists(st.integers(1, 500), min_size=1, max_size=50))
    def test_instruction_conservation(self, lengths):
        sa = SequenceAnalyzer({100: True}, include_trailing=False)
        count = 0
        for length in lengths:
            count += length
            sa.on_branch(branch_at(100), False, count)
        sa.on_finish(count)
        assert sum(sa.seq_instr_sums) == count
        assert sum(sa.seq_counts) == len(lengths)


class TestBranchTrace:
    def test_records_events(self):
        src = (".text\n.ent main\nmain:\nli $t1, 2\n"
               "L: addiu $t1, $t1, -1\nbgtz $t1, L\nli $v0, 10\nsyscall\n"
               ".end main\n")
        exe = assemble(src)
        trace = BranchTrace()
        Machine(exe, observers=[trace]).run()
        assert [taken for _, taken in trace.events] == [True, False]
        assert not trace.truncated

    def test_limit_truncates(self):
        trace = BranchTrace(limit=2)
        for i in range(5):
            trace.on_branch(branch_at(4), True, i)
        assert len(trace.events) == 2
        assert trace.truncated
