"""Tests for code-generation properties the heuristics rely on.

These check the *shape* of emitted assembly — SP/GP addressing, zero-compare
branch opcodes, rotated loops, FP compare idioms — not just behaviour.
"""

import re

import pytest

from repro.bcc import compile_to_asm
from repro.bcc.driver import compile_to_ir
from repro.bcc.ir import CBr, Jump


def asm_of(source: str) -> str:
    return compile_to_asm(source, include_runtime=False)


class TestAddressing:
    def test_locals_addressed_off_sp(self):
        asm = asm_of("""
int main() { int a[4]; a[0] = 1; a[1] = 2; return a[0] + a[1]; }
""")
        assert re.search(r"sw \$\w+, \d+\(\$sp\)", asm)

    def test_small_globals_addressed_off_gp(self):
        asm = asm_of("int g;\nint main() { g = 5; return g; }")
        assert "G_g($gp)" in asm

    def test_address_taken_local_in_frame(self):
        asm = asm_of("""
void set(int *p) { *p = 1; }
int main() { int x; set(&x); return x; }
""")
        assert re.search(r"addiu \$\w+, \$sp, \d+", asm)

    def test_huge_global_uses_la(self):
        asm = asm_of("double big[100][100];\n"
                     "int main() { big[99][0] = 1.0; return 0; }")
        assert "la " in asm

    def test_string_literals_pooled(self):
        asm = asm_of('int main() { print_str("a"); print_str("a"); '
                     'print_str("b"); return 0; }')
        assert asm.count('.asciiz "a"') == 1
        assert asm.count('.asciiz "b"') == 1

    def test_fp_literal_pool(self):
        asm = asm_of("int main() { double d = 2.5; double e = 2.5; "
                     "return (int)(d + e); }")
        assert asm.count(".double 2.5") == 1


class TestBranchOpcodes:
    @pytest.mark.parametrize("cond,opcode", [
        ("x < 0", "bltz"), ("x <= 0", "blez"),
        ("x > 0", "bgtz"), ("x >= 0", "bgez"),
    ])
    def test_zero_compares_use_one_register_branches(self, cond, opcode):
        asm = asm_of(f"int main() {{ int x = read_int(); "
                     f"if ({cond}) return 1; return 0; }}")
        # the branch is inverted (taken edge skips the then-clause), so
        # either the opcode or its inversion must appear
        inverted = {"bltz": "bgez", "blez": "bgtz",
                    "bgtz": "blez", "bgez": "bltz"}[opcode]
        assert re.search(rf"\b({opcode}|{inverted})\b", asm)

    def test_equality_uses_beq_bne_zero(self):
        asm = asm_of("int main() { int x = read_int(); "
                     "if (x == 0) return 1; return 0; }")
        assert re.search(r"\b(beq|bne) \$\w+, \$zero", asm)

    def test_general_relational_lowered_through_slt(self):
        asm = asm_of("int main() { int x = read_int(); int y = read_int(); "
                     "if (x < y) return 1; return 0; }")
        assert "slt " in asm

    def test_fp_equality_uses_ceq_and_bc1(self):
        asm = asm_of("int main() { double a = read_double(); "
                     "if (a == 2.0) return 1; return 0; }")
        assert "c.eq.d" in asm
        assert re.search(r"\bbc1[tf]\b", asm)

    def test_fp_less_uses_clt(self):
        asm = asm_of("int main() { double a = read_double(); "
                     "if (a < 2.0) return 1; return 0; }")
        assert "c.lt.d" in asm


class TestLoopShape:
    def test_while_loop_rotated(self):
        """while loops compile to a guard + bottom-tested body: the loop
        test appears twice and the backward branch is conditional."""
        ir = compile_to_ir("int main() { int i = 0; int n = read_int(); "
                           "while (i < n) { i++; } return i; }",
                           include_runtime=False)
        func = next(f for f in ir.functions if f.name == "main")
        cbrs = [i for b in func.blocks for i in b.instructions
                if isinstance(i, CBr)]
        assert len(cbrs) >= 2  # guard + bottom test

    def test_no_unconditional_loop_back_jump(self):
        """The rotated form avoids `j head` at the loop bottom."""
        asm = asm_of("int main() { int i; int s = 0; "
                     "for (i = 0; i < 10; i++) { s += i; } return s; }")
        main_part = asm[asm.index(".ent main"):asm.index(".end main")]
        lines = [ln.strip() for ln in main_part.splitlines()]
        # a backward conditional branch exists...
        assert any(ln.startswith(("bne", "beq", "bgtz", "bltz", "blez",
                                  "bgez", "slt")) for ln in lines)
        # ...and the loop body does not end in an unconditional jump back
        # (there may be j instructions for the return/epilogue only)
        for i, ln in enumerate(lines):
            if ln.startswith("j ") and "epilogue" not in ln:
                target = ln.split()[1]
                pos = next((k for k, other in enumerate(lines)
                            if other.startswith(target + ":")), None)
                assert pos is None or pos > i, "backward unconditional jump"

    def test_do_while_single_test(self):
        ir = compile_to_ir("int main() { int i = 0; do { i++; } "
                           "while (i < 5); return i; }",
                           include_runtime=False)
        func = next(f for f in ir.functions if f.name == "main")
        cbrs = [i for b in func.blocks for i in b.instructions
                if isinstance(i, CBr)]
        assert len(cbrs) == 1


class TestCallingConvention:
    def test_int_args_in_a_registers(self):
        asm = asm_of("int f(int a, int b) { return a + b; }\n"
                     "int main() { return f(1, 2); }")
        assert re.search(r"move \$a0, ", asm)
        assert re.search(r"move \$a1, ", asm)

    def test_double_args_on_stack(self):
        asm = asm_of("double f(double d) { return d; }\n"
                     "int main() { return (int)f(1.5); }")
        assert re.search(r"sdc1 \$f\d+, 0\(\$sp\)", asm)

    def test_callee_saved_preserved(self):
        asm = asm_of("""
int g(int x) { return x + 1; }
int main() {
    int a = g(1); int b = g(2); int c = g(3);
    return a + b + c;
}
""")
        main_part = asm[asm.index(".ent main"):asm.index(".end main")]
        saves = re.findall(r"sw (\$s\d), \d+\(\$sp\)", main_part)
        restores = re.findall(r"lw (\$s\d), \d+\(\$sp\)", main_part)
        assert set(saves) == set(restores)
        assert saves  # values live across calls need callee-saved regs

    def test_leaf_function_skips_ra_save(self):
        asm = asm_of("int leaf(int x) { return x * 2; }\n"
                     "int main() { return leaf(21); }")
        leaf_part = asm[asm.index(".ent leaf"):asm.index(".end leaf")]
        assert "$ra," not in leaf_part.replace("jr $ra", "")

    def test_return_in_v0(self):
        asm = asm_of("int f() { return 7; }\nint main() { return f(); }")
        assert re.search(r"(move \$v0|addiu \$v0)", asm)


class TestIRShape:
    def test_dead_code_eliminated(self):
        ir = compile_to_ir("int main() { int unused = 5 * 3; return 2; }",
                           include_runtime=False)
        func = next(f for f in ir.functions if f.name == "main")
        text = func.dump()
        assert "15" not in text  # folded then removed

    def test_constant_folding(self):
        ir = compile_to_ir("int main() { return 6 * 7; }",
                           include_runtime=False)
        func = next(f for f in ir.functions if f.name == "main")
        assert "42" in func.dump()

    def test_unreachable_blocks_removed(self):
        ir = compile_to_ir("int main() { return 1; return 2; }",
                           include_runtime=False)
        func = next(f for f in ir.functions if f.name == "main")
        assert all("2" not in repr(i) for b in func.blocks
                   for i in b.instructions)

    def test_constant_branch_folded(self):
        ir = compile_to_ir("int main() { if (1) return 5; return 6; }",
                           include_runtime=False)
        func = next(f for f in ir.functions if f.name == "main")
        cbrs = [i for b in func.blocks for i in b.instructions
                if isinstance(i, CBr)]
        assert not cbrs

    def test_strength_reduction_mul_pow2(self):
        asm = asm_of("int main() { int x = read_int(); return x * 8; }")
        main_part = asm[asm.index(".ent main"):asm.index(".end main")]
        assert "sll" in main_part
        assert "mul" not in main_part
