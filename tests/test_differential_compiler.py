"""Differential testing of the compiler: hypothesis generates random BLC
programs (assignments, if/else, bounded loops over a small integer state),
a Python reference interpreter with C/MIPS semantics computes the expected
state, and the compiled program must agree.

This exercises the whole pipeline — parser, sema, IR gen, every optimizer
pass, register allocation (the programs create real pressure), codegen,
assembler, simulator — against an independent implementation of the
semantics.
"""

from hypothesis import given, settings, strategies as st

from conftest import run_output

_VARS = ("a", "b", "c", "d", "e")
_WRAP = 1 << 32


def wrap32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - _WRAP if v & 0x8000_0000 else v


def c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return wrap32(-q if (a < 0) != (b < 0) else q)


def c_rem(a: int, b: int) -> int:
    return wrap32(a - b * c_div(a, b))


# -- expressions -------------------------------------------------------------


@st.composite
def expressions(draw, depth=0):
    """Returns (source_text, eval_fn: state -> int)."""
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        if draw(st.booleans()):
            n = draw(st.integers(-50, 50))
            return str(n), lambda state, n=n: n
        var = draw(st.sampled_from(_VARS))
        return var, lambda state, var=var: state[var]
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>",
                               "/", "%"]))
    lt, lf = draw(expressions(depth=depth + 1))
    rt, rf = draw(expressions(depth=depth + 1))
    if op == "+":
        return (f"({lt} + {rt})",
                lambda s, lf=lf, rf=rf: wrap32(lf(s) + rf(s)))
    if op == "-":
        return (f"({lt} - {rt})",
                lambda s, lf=lf, rf=rf: wrap32(lf(s) - rf(s)))
    if op == "*":
        return (f"({lt} * {rt})",
                lambda s, lf=lf, rf=rf: wrap32(lf(s) * rf(s)))
    if op == "&":
        return (f"({lt} & {rt})",
                lambda s, lf=lf, rf=rf: wrap32(lf(s) & rf(s)))
    if op == "|":
        return (f"({lt} | {rt})",
                lambda s, lf=lf, rf=rf: wrap32(lf(s) | rf(s)))
    if op == "^":
        return (f"({lt} ^ {rt})",
                lambda s, lf=lf, rf=rf: wrap32(lf(s) ^ rf(s)))
    if op == "<<":
        k = draw(st.integers(0, 8))
        return (f"({lt} << {k})",
                lambda s, lf=lf, k=k: wrap32(lf(s) << k))
    if op == ">>":
        k = draw(st.integers(0, 8))
        return (f"({lt} >> {k})",
                lambda s, lf=lf, k=k: wrap32(lf(s) >> k))
    # / and %: force a nonzero, positive-ish denominator
    if op == "/":
        return (f"({lt} / (({rt} & 7) + 1))",
                lambda s, lf=lf, rf=rf: c_div(lf(s), (rf(s) & 7) + 1))
    return (f"({lt} % (({rt} & 7) + 1))",
            lambda s, lf=lf, rf=rf: c_rem(lf(s), (rf(s) & 7) + 1))


@st.composite
def conditions(draw):
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    lt, lf = draw(expressions(depth=2))
    rt, rf = draw(expressions(depth=2))
    table = {
        "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
    }
    return (f"({lt} {op} {rt})",
            lambda s, lf=lf, rf=rf, f=table[op]: f(lf(s), rf(s)))


# -- statements ----------------------------------------------------------------


@st.composite
def statements(draw, depth=0, loop_index=0):
    kind = draw(st.sampled_from(
        ["assign", "assign", "assign", "if", "loop"] if depth < 2
        else ["assign"]))
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        text, fn = draw(expressions())

        def run_assign(state, var=var, fn=fn):
            state[var] = fn(state)

        return f"{var} = {text};", run_assign
    if kind == "if":
        cond_text, cond_fn = draw(conditions())
        then_stmts = draw(st.lists(statements(depth=depth + 1,
                                              loop_index=loop_index),
                                   min_size=1, max_size=3))
        else_stmts = draw(st.lists(statements(depth=depth + 1,
                                              loop_index=loop_index),
                                   min_size=0, max_size=2))
        then_text = " ".join(t for t, _ in then_stmts)
        else_text = " ".join(t for t, _ in else_stmts)
        text = f"if ({cond_text}) {{ {then_text} }}"
        if else_stmts:
            text += f" else {{ {else_text} }}"

        def run_if(state, cond_fn=cond_fn, then_stmts=then_stmts,
                   else_stmts=else_stmts):
            branch = then_stmts if cond_fn(state) else else_stmts
            for _, fn in branch:
                fn(state)

        return text, run_if
    # bounded counting loop with a dedicated counter variable
    n = draw(st.integers(1, 6))
    counter = f"it{loop_index}"
    body = draw(st.lists(statements(depth=depth + 1,
                                    loop_index=loop_index + 1),
                         min_size=1, max_size=3))
    body_text = " ".join(t for t, _ in body)
    text = (f"for ({counter} = 0; {counter} < {n}; {counter}++) "
            f"{{ {body_text} }}")

    def run_loop(state, n=n, body=body):
        for _ in range(n):
            for _, fn in body:
                fn(state)

    return text, run_loop


@st.composite
def programs(draw):
    inits = {var: draw(st.integers(-100, 100)) for var in _VARS}
    stmts = draw(st.lists(statements(), min_size=1, max_size=6))
    decls = " ".join(f"int {v} = {inits[v]};" for v in _VARS)
    counters = " ".join(f"int it{i};" for i in range(4))
    body = "\n    ".join(t for t, _ in stmts)
    prints = " ".join(f"print_int({v}); print_char(' ');" for v in _VARS)
    source = f"""
int main() {{
    {decls}
    {counters}
    {body}
    {prints}
    return 0;
}}
"""
    state = dict(inits)
    for _, fn in stmts:
        fn(state)
    expected = [state[v] for v in _VARS]
    return source, expected


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(programs())
    def test_compiled_matches_reference(self, program):
        source, expected = program
        out = run_output(source)
        assert [int(x) for x in out.split()] == expected, source

    @settings(max_examples=20, deadline=None)
    @given(programs())
    def test_optimizer_is_semantics_preserving(self, program):
        source, expected = program
        opt = run_output(source, optimize=True)
        noopt = run_output(source, optimize=False)
        assert opt == noopt
        assert [int(x) for x in opt.split()] == expected

    @settings(max_examples=15, deadline=None)
    @given(programs())
    def test_loop_rotation_is_semantics_preserving(self, program):
        source, expected = program
        from repro.bcc import compile_and_link
        from repro.sim import Machine
        for rotate in (True, False):
            exe = compile_and_link(source, rotate_loops=rotate)
            out = Machine(exe, max_instructions=20_000_000).run().output
            assert [int(x) for x in out.split()] == expected
