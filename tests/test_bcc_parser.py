"""Tests for the BLC parser."""

import pytest

from repro.bcc import ast_nodes as A
from repro.bcc.errors import CompileError
from repro.bcc.parser import parse


def parse_expr(text: str) -> A.Expr:
    program = parse(f"int main() {{ return {text}; }}")
    (func,) = program.decls
    (ret,) = func.body.statements
    return ret.value


def parse_body(text: str):
    program = parse(f"int main() {{ {text} }}")
    return program.decls[0].body.statements


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-" and isinstance(e.left, A.Binary)
        assert e.left.op == "-"

    def test_parentheses(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*" and isinstance(e.left, A.Binary)

    def test_comparison_below_logic(self):
        e = parse_expr("a < b && c > d")
        assert e.op == "&&"
        assert e.left.op == "<" and e.right.op == ">"

    def test_or_below_and(self):
        e = parse_expr("a || b && c")
        assert e.op == "||"
        assert e.right.op == "&&"

    def test_bitwise_between(self):
        e = parse_expr("a | b ^ c & d")
        assert e.op == "|"
        assert e.right.op == "^"
        assert e.right.right.op == "&"

    def test_shift(self):
        e = parse_expr("a << 2 + 1")
        assert e.op == "<<"
        assert e.right.op == "+"

    def test_assignment_right_associative(self):
        e = parse_expr("a = b = 1")
        assert isinstance(e, A.Assign)
        assert isinstance(e.value, A.Assign)

    def test_compound_assignment(self):
        e = parse_expr("a += 2")
        assert isinstance(e, A.Assign) and e.op == "+"

    def test_ternary(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e, A.Cond)
        assert isinstance(e.otherwise, A.Cond)

    def test_unary_chain(self):
        e = parse_expr("-!~*p")
        assert e.op == "-"
        assert e.operand.op == "!"
        assert e.operand.operand.op == "~"
        assert e.operand.operand.operand.op == "*"

    def test_unary_plus_is_noop(self):
        e = parse_expr("+x")
        assert isinstance(e, A.Ident)

    def test_prefix_postfix_incdec(self):
        pre = parse_expr("++x")
        post = parse_expr("x++")
        assert isinstance(pre, A.IncDec) and pre.is_prefix
        assert isinstance(post, A.IncDec) and not post.is_prefix

    def test_call_args(self):
        e = parse_expr("f(1, g(2), 3)")
        assert isinstance(e, A.Call) and len(e.args) == 3
        assert isinstance(e.args[1], A.Call)

    def test_index_and_member_chain(self):
        e = parse_expr("a[1].f->g[2]")
        assert isinstance(e, A.Index)
        assert isinstance(e.base, A.Member) and e.base.arrow
        assert isinstance(e.base.base, A.Member) and not e.base.base.arrow

    def test_cast(self):
        e = parse_expr("(char *)p")
        assert isinstance(e, A.Cast)
        assert e.target_type.base == "char"
        assert e.target_type.pointer_depth == 1

    def test_cast_struct_pointer(self):
        e = parse_expr("(struct Foo *)p")
        assert isinstance(e, A.Cast)
        assert e.target_type.base == ("struct", "Foo")

    def test_sizeof_type(self):
        e = parse_expr("sizeof(int)")
        assert isinstance(e, A.SizeofType)

    def test_sizeof_struct(self):
        e = parse_expr("sizeof(struct Foo)")
        assert e.target_type.base == ("struct", "Foo")

    def test_string_literal(self):
        e = parse_expr('"abc"')
        assert isinstance(e, A.StringLit) and e.value == "abc"

    def test_error_position(self):
        with pytest.raises(CompileError, match="2:"):
            parse("int main() {\n return ); }")


class TestStatements:
    def test_if_else(self):
        (stmt,) = parse_body("if (a) x = 1; else x = 2;")
        assert isinstance(stmt, A.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_body("if (a) if (b) x = 1; else x = 2;")
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_while(self):
        (stmt,) = parse_body("while (a) { x = 1; }")
        assert isinstance(stmt, A.While)
        assert isinstance(stmt.body, A.Block)

    def test_do_while(self):
        (stmt,) = parse_body("do x = 1; while (a);")
        assert isinstance(stmt, A.DoWhile)

    def test_for_full(self):
        (stmt,) = parse_body("for (i = 0; i < 10; i++) x += i;")
        assert isinstance(stmt, A.For)
        assert stmt.init is not None and stmt.cond is not None
        assert stmt.step is not None

    def test_for_empty_parts(self):
        (stmt,) = parse_body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_for_with_declaration(self):
        (stmt,) = parse_body("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt.init, A.VarDecl)

    def test_break_continue_return(self):
        stmts = parse_body("while (1) { break; continue; } return 0;")
        assert isinstance(stmts[-1], A.Return)

    def test_return_void(self):
        program = parse("void f() { return; }")
        (ret,) = program.decls[0].body.statements
        assert ret.value is None

    def test_empty_statement(self):
        (stmt,) = parse_body(";")
        assert isinstance(stmt, A.Empty)

    def test_multi_declarator(self):
        stmts = parse_body("int a, b = 2, *p;")
        assert len(stmts) == 3
        assert all(isinstance(s, A.VarDecl) for s in stmts)
        assert stmts[1].init is not None
        assert stmts[2].declared_type.pointer_depth == 1

    def test_local_array(self):
        (stmt,) = parse_body("double m[4][5];")
        assert stmt.declared_type.array_dims == [4, 5]

    def test_array_dim_must_be_literal(self):
        with pytest.raises(CompileError, match="integer literal"):
            parse_body("int a[n];")

    def test_array_dim_must_be_positive(self):
        with pytest.raises(CompileError, match="positive"):
            parse_body("int a[0];")


class TestTopLevel:
    def test_function_with_params(self):
        program = parse("int f(int a, char *b, double c) { return a; }")
        func = program.decls[0]
        assert [p.name for p in func.params] == ["a", "b", "c"]
        assert func.params[1].declared_type.pointer_depth == 1

    def test_void_param_list(self):
        program = parse("int f(void) { return 0; }")
        assert program.decls[0].params == []

    def test_array_param_decays(self):
        program = parse("int f(int a[]) { return a[0]; }")
        assert program.decls[0].params[0].declared_type.pointer_depth == 1

    def test_array_param_with_size_decays(self):
        program = parse("int f(int a[10]) { return a[0]; }")
        assert program.decls[0].params[0].declared_type.pointer_depth == 1

    def test_globals(self):
        program = parse("int x = 5;\ndouble d;\nchar *s = \"hi\";\n"
                        "int arr[10];")
        assert len(program.decls) == 4
        assert isinstance(program.decls[0].init, A.IntLit)
        assert program.decls[3].declared_type.array_dims == [10]

    def test_multiple_global_declarators(self):
        program = parse("int a, b = 1;")
        assert len(program.decls) == 2

    def test_struct_definition(self):
        program = parse("struct P { int x; int y; double w; };")
        (struct,) = program.decls
        assert isinstance(struct, A.StructDef)
        assert [f[0] for f in struct.fields] == ["x", "y", "w"]

    def test_struct_multi_field_declarators(self):
        program = parse("struct P { int x, y; };")
        assert len(program.decls[0].fields) == 2

    def test_struct_with_pointer_field(self):
        program = parse("struct N { int v; struct N *next; };")
        fields = program.decls[0].fields
        assert fields[1][1].pointer_depth == 1

    def test_struct_array_field(self):
        program = parse("struct B { char name[16]; };")
        assert program.decls[0].fields[0][1].array_dims == [16]

    def test_struct_global_variable(self):
        program = parse("struct P { int x; };\nstruct P origin;")
        assert isinstance(program.decls[1], A.GlobalVar)

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("int main() { return 0 }")

    def test_unclosed_block(self):
        with pytest.raises(CompileError):
            parse("int main() { if (1) {")
