"""Tests for the generic pass/analysis-manager framework (repro.passes)."""

import pytest

from repro import telemetry
from repro.passes import (
    AnalysisManager, AnalysisRegistry, FunctionPass, Pass, PassPipeline,
    PassRegistry, PipelineError,
)
from repro.passes.manager import UnknownAnalysisError
from repro.telemetry import Telemetry


@pytest.fixture
def sink():
    s = Telemetry()
    with telemetry.use(s):
        yield s


class Unit:
    """A trivially mutable analysis unit."""

    def __init__(self, value=0):
        self.value = value
        self.log = []


def make_registry():
    reg = AnalysisRegistry("test")
    calls = {"double": 0, "quad": 0}

    @reg.register("double")
    def _double(unit, am):
        calls["double"] += 1
        return unit.value * 2

    @reg.register("quad", counter_prefix="test.quad")
    def _quad(unit, am):
        calls["quad"] += 1
        # depends on another analysis through the same cache
        return am.get("double") * 2

    return reg, calls


class TestAnalysisRegistry:
    def test_duplicate_registration_rejected(self):
        reg, _ = make_registry()
        with pytest.raises(ValueError, match="already registered"):
            @reg.register("double")
            def _again(unit, am):
                return None

    def test_unknown_analysis(self):
        reg, _ = make_registry()
        am = reg.manager(Unit())
        with pytest.raises(UnknownAnalysisError, match="nope"):
            am.get("nope")

    def test_names_sorted(self):
        reg, _ = make_registry()
        assert reg.names() == ("double", "quad")
        assert "double" in reg and "nope" not in reg


class TestAnalysisManager:
    def test_memoizes(self):
        reg, calls = make_registry()
        am = reg.manager(Unit(3))
        assert am.get("double") == 6
        assert am.get("double") == 6
        assert calls["double"] == 1

    def test_dependency_shares_cache(self):
        reg, calls = make_registry()
        am = reg.manager(Unit(3))
        assert am.get("quad") == 12
        # quad pulled double through the cache; a later direct request
        # reuses it
        assert am.get("double") == 6
        assert calls["double"] == 1

    def test_compute_and_reuse_counters(self, sink):
        reg, _ = make_registry()
        am = reg.manager(Unit(1))
        am.get("double")
        am.get("double")
        am.get("quad")   # computes quad, REUSES double
        counters = sink.counters()
        assert counters["analysis.double.compute"] == 1
        assert counters["analysis.double.reuse"] == 2
        assert counters["test.quad.compute"] == 1  # custom prefix

    def test_invalidate_all(self):
        reg, calls = make_registry()
        am = reg.manager(Unit(2))
        am.get("double")
        am.invalidate()
        am.get("double")
        assert calls["double"] == 2

    def test_invalidate_preserved(self):
        reg, calls = make_registry()
        am = reg.manager(Unit(2))
        am.get("double")
        am.get("quad")
        am.invalidate(preserved=frozenset({"double"}))
        assert am.is_cached("double")
        assert not am.is_cached("quad")
        am.get("quad")
        assert calls["double"] == 1   # never recomputed

    def test_seed_and_cached(self):
        reg, calls = make_registry()
        am = reg.manager(Unit(5))
        am.seed("double", 99)
        assert am.get("double") == 99
        assert calls["double"] == 0
        assert am.cached("double") == 99
        assert am.cached("quad") is None
        with pytest.raises(UnknownAnalysisError):
            am.seed("nonexistent", 1)

    def test_invalidate_one_and_cached_names(self):
        reg, _ = make_registry()
        am = reg.manager(Unit(1))
        am.get("double")
        am.get("quad")
        assert am.cached_names() == ("double", "quad")
        am.invalidate_one("quad")
        assert am.cached_names() == ("double",)


class TestPassRegistry:
    def test_register_and_parse(self):
        reg = PassRegistry("test")

        @reg.register("inc", description="increment")
        def _inc(unit, am):
            unit.value += 1
            return True

        @reg.register("noop")
        def _noop(unit, am):
            return False

        passes = reg.parse("inc, noop")
        assert [p.name for p in passes] == ["inc", "noop"]
        passes = reg.parse(["noop", "inc"])
        assert [p.name for p in passes] == ["noop", "inc"]

    def test_duplicate_pass_rejected(self):
        reg = PassRegistry("test")
        reg.add(FunctionPass("p", lambda u, am: False))
        with pytest.raises(ValueError, match="already registered"):
            reg.add(FunctionPass("p", lambda u, am: False))

    def test_unknown_pass_is_structured_error(self):
        reg = PassRegistry("test")
        reg.add(FunctionPass("known", lambda u, am: False))
        with pytest.raises(PipelineError) as exc_info:
            reg.parse("known,unknown")
        assert "known passes" in str(exc_info.value)
        assert exc_info.value.phase == "pipeline"


class TestPassPipeline:
    def test_runs_once_without_fixed_point(self):
        reg = PassRegistry("t")

        @reg.register("bump")
        def _bump(unit, am):
            unit.value += 1
            return True   # always claims change

        unit = Unit(0)
        pipeline = PassPipeline(reg.parse("bump"), fixed_point=False)
        assert pipeline.run(unit) is True
        assert unit.value == 1

    def test_fixed_point_converges(self):
        reg = PassRegistry("t")

        @reg.register("to-three")
        def _to_three(unit, am):
            if unit.value < 3:
                unit.value += 1
                return True
            return False

        unit = Unit(0)
        pipeline = PassPipeline(reg.parse("to-three"), fixed_point=True,
                                max_rounds=10)
        assert pipeline.run(unit) is True
        assert unit.value == 3

    def test_fixed_point_bounded_by_max_rounds(self):
        reg = PassRegistry("t")

        @reg.register("forever")
        def _forever(unit, am):
            unit.value += 1
            return True

        unit = Unit(0)
        pipeline = PassPipeline(reg.parse("forever"), fixed_point=True,
                                max_rounds=4)
        pipeline.run(unit)
        assert unit.value == 4

    def test_change_invalidates_unpreserved_analyses(self):
        areg, calls = make_registry()
        preg = PassRegistry("t")

        @preg.register("mutate")
        def _mutate(unit, am):
            unit.value += 1
            return True

        @preg.register("reader")
        def _reader(unit, am):
            unit.log.append(am.get("double"))
            return False

        unit = Unit(1)
        am = areg.manager(unit)
        pipeline = PassPipeline(preg.parse("reader,mutate,reader"),
                                fixed_point=False)
        pipeline.run(unit, am=am)
        # second reader recomputed after the mutation invalidated the cache
        assert unit.log == [2, 4]
        assert calls["double"] == 2

    def test_preserves_contract_keeps_analysis(self):
        areg, calls = make_registry()
        preg = PassRegistry("t")

        @preg.register("mutate-preserving", preserves=("double",))
        def _mutate(unit, am):
            unit.value += 1
            return True

        @preg.register("reader")
        def _reader(unit, am):
            unit.log.append(am.get("double"))
            return False

        unit = Unit(1)
        am = areg.manager(unit)
        pipeline = PassPipeline(
            preg.parse("reader,mutate-preserving,reader"),
            fixed_point=False)
        pipeline.run(unit, am=am)
        # the preserved analysis was NOT recomputed (stale by design —
        # that is what the preserves contract promises)
        assert unit.log == [2, 2]
        assert calls["double"] == 1

    def test_no_change_preserves_everything(self):
        areg, calls = make_registry()
        preg = PassRegistry("t")

        @preg.register("inspect")
        def _inspect(unit, am):
            am.get("double")
            return False

        unit = Unit(1)
        am = areg.manager(unit)
        PassPipeline(preg.parse("inspect,inspect"),
                     fixed_point=False).run(unit, am=am)
        assert calls["double"] == 1

    def test_after_pass_hook(self):
        preg = PassRegistry("t")

        @preg.register("a")
        def _a(unit, am):
            return True

        @preg.register("b")
        def _b(unit, am):
            return False

        seen = []
        unit = Unit()
        PassPipeline(preg.parse("a,b"), fixed_point=False).run(
            unit, after_pass=lambda p, u, c: seen.append((p.name, c)))
        assert seen == [("a", True), ("b", False)]

    def test_telemetry_spans_and_counters(self, sink):
        preg = PassRegistry("t")

        @preg.register("work")
        def _work(unit, am):
            done = unit.value == 0
            unit.value = 1
            return done

        unit = Unit(0)
        PassPipeline(preg.parse("work"), fixed_point=True,
                     max_rounds=8).run(unit)
        counters = sink.counters()
        assert counters["pass.work.runs"] == 2      # changed, then stable
        assert counters["pass.work.changed"] == 1
        names = [s.name for s in sink.spans]
        assert names.count("pass:work") == 2

    def test_pass_base_class_run_abstract(self):
        with pytest.raises(NotImplementedError):
            Pass().run(Unit(), None)

    def test_pass_names(self):
        preg = PassRegistry("t")
        preg.add(FunctionPass("x", lambda u, am: False))
        pipeline = PassPipeline(preg.parse("x"))
        assert pipeline.pass_names() == ("x",)
