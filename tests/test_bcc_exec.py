"""End-to-end compiler correctness: compiled BLC behaves like C.

Includes a hypothesis property test that compiles random arithmetic
expressions and checks the simulated result against a Python evaluation
with C semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import compile_run, run_output


def returns(source_body: str, inputs=None) -> int:
    """Compile `int main() { <body> }` and return its exit code."""
    status = compile_run(f"int main() {{ {source_body} }}", inputs)
    return status.exit_code


class TestArithmetic:
    def test_basic(self):
        assert returns("return 2 + 3 * 4;") == 14

    def test_division_truncation(self):
        assert returns("int a = -7; return a / 2 + 10;") == 7  # -3 + 10

    def test_modulo_sign(self):
        assert returns("int a = -7; return a % 3 + 10;") == 9  # -1 + 10

    def test_wraparound(self):
        assert returns(
            "int x = 2147483647; x = x + 1; return x == -2147483648;") == 1

    def test_shifts(self):
        assert returns("int x = -16; return (x >> 2) + 100;") == 96
        assert returns("return 3 << 4;") == 48

    def test_bitops(self):
        assert returns("return (0xF0 & 0x3C) | (1 ^ 3);") == 0x32

    def test_complement(self):
        assert returns("return ~0 + 10;") == 9

    def test_unary_minus(self):
        assert returns("int a = 5; return -a + 12;") == 7

    def test_comparison_results(self):
        assert returns("return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) "
                       "+ (3 == 3) + (3 != 3);") == 4

    def test_logical_short_circuit(self):
        src = """
int calls;
int bump() { calls++; return 1; }
int main() {
    calls = 0;
    if (0 && bump()) { return 99; }
    if (1 || bump()) { }
    return calls;
}
"""
        assert compile_run(src).exit_code == 0

    def test_logical_values(self):
        assert returns("return (2 && 3) + (0 || 5 != 0) * 2;") == 3

    def test_ternary(self):
        assert returns("int a = 5; return a > 3 ? 10 : 20;") == 10

    def test_compound_assignments(self):
        assert returns("int a = 10; a += 5; a -= 3; a *= 2; a /= 3; "
                       "a %= 5; a <<= 2; a >>= 1; a |= 8; a &= 12; a ^= 1; "
                       "return a;") == ((((((10 + 5 - 3) * 2) // 3) % 5)
                                         << 2 >> 1 | 8) & 12) ^ 1

    def test_incdec_semantics(self):
        assert returns("int a = 5; int b = a++; int c = ++a; "
                       "return b * 100 + c * 10 + a;") == 577

    def test_char_truncation(self):
        assert returns("char c = (char)300; return (int)c;") == 44

    def test_char_signedness(self):
        assert returns("char c = (char)200; return c < 0;") == 1


class TestDoubles:
    def test_arith(self):
        out = run_output("int main() { print_double(1.5 * 4.0 - 2.0); "
                         "return 0; }")
        assert out == "4.0"

    def test_int_double_conversion(self):
        assert returns("double d = 7; int i = (int)(d / 2.0); return i;") == 3

    def test_truncation_toward_zero(self):
        assert returns("double d = -2.9; return (int)d + 10;") == 8

    def test_comparisons(self):
        assert returns("double a = 1.5; double b = 2.5; "
                       "return (a < b) + (a == 1.5) + (b >= 2.5);") == 3

    def test_mixed_expression_promotes(self):
        out = run_output("int main() { print_double(1 / 2.0); return 0; }")
        assert out == "0.5"

    def test_double_params_and_return(self):
        src = """
double hyp2(double a, double b) { return a * a + b * b; }
int main() { return (int)hyp2(3.0, 4.0); }
"""
        assert compile_run(src).exit_code == 25

    def test_many_double_args(self):
        src = """
double sum6(double a, double b, double c, double d, double e, double f) {
    return a + b + c + d + e + f;
}
int main() { return (int)sum6(1.0, 2.0, 3.0, 4.0, 5.0, 6.0); }
"""
        assert compile_run(src).exit_code == 21

    def test_sqrt_runtime(self):
        assert returns("return (int)d_sqrt(144.0);") == 12


class TestPointersAndArrays:
    def test_array_sum(self):
        assert returns("int a[5]; int i; int s = 0; "
                       "for (i = 0; i < 5; i++) a[i] = i * i; "
                       "for (i = 0; i < 5; i++) s += a[i]; return s;") == 30

    def test_pointer_walk(self):
        assert returns("int a[4]; int *p; int s = 0; int i;"
                       "for (i = 0; i < 4; i++) a[i] = i + 1; "
                       "for (p = a; p < a + 4; p++) s += *p; return s;") == 10

    def test_pointer_difference(self):
        assert returns("double d[10]; return (int)(&d[7] - &d[2]);") == 5

    def test_address_of_local(self):
        assert returns("int x = 3; int *p = &x; *p = 42; return x;") == 42

    def test_pointer_argument_mutation(self):
        src = """
void set(int *p, int v) { *p = v; }
int main() { int x = 0; set(&x, 17); return x; }
"""
        assert compile_run(src).exit_code == 17

    def test_2d_array(self):
        assert returns("int m[3][4]; int i; int j; int s = 0;"
                       "for (i = 0; i < 3; i++) "
                       "  for (j = 0; j < 4; j++) m[i][j] = i * 4 + j; "
                       "for (i = 0; i < 3; i++) s += m[i][i]; "
                       "return s;") == 0 + 5 + 10

    def test_global_array(self):
        src = """
int table[8];
int main() { int i; for (i = 0; i < 8; i++) table[i] = i; return table[5]; }
"""
        assert compile_run(src).exit_code == 5

    def test_large_global_array_beyond_gp_window(self):
        src = """
double big[100][100];   // 80 KB: outside the $gp window
int main() {
    big[99][99] = 7.5;
    big[0][0] = 2.5;
    return (int)(big[99][99] + big[0][0]);
}
"""
        assert compile_run(src).exit_code == 10

    def test_string_literal(self):
        assert returns('char *s = "hello"; return strlen(s);') == 5

    def test_char_array_ops(self):
        assert returns('char b[10]; strcpy(b, "abc"); '
                       'return strcmp(b, "abc") == 0 && strlen(b) == 3;') == 1


class TestStructs:
    def test_member_access(self):
        src = """
struct Point { int x; int y; };
struct Point g;
int main() {
    struct Point local;
    g.x = 3; g.y = 4;
    local.x = g.x * 10;
    local.y = g.y * 10;
    return local.x + local.y;
}
"""
        assert compile_run(src).exit_code == 70

    def test_struct_pointer_arrow(self):
        src = """
struct Node { int v; struct Node *next; };
int main() {
    struct Node a, b;
    a.v = 1; b.v = 2;
    a.next = &b; b.next = NULL;
    return a.next->v;
}
"""
        assert compile_run(src).exit_code == 2

    def test_nested_struct_member(self):
        src = """
struct Inner { int a; int b; };
struct Outer { int pad; struct Inner in; };
int main() {
    struct Outer o;
    o.in.a = 5; o.in.b = 6;
    return o.in.a + o.in.b;
}
"""
        assert compile_run(src).exit_code == 11

    def test_struct_array_field(self):
        src = """
struct Buf { char data[8]; int len; };
int main() {
    struct Buf b;
    b.data[0] = 'x'; b.len = 1;
    return b.data[0] == 'x' && b.len == 1;
}
"""
        assert compile_run(src).exit_code == 1

    def test_malloc_linked_list(self):
        src = """
struct Node { int v; struct Node *next; };
int main() {
    struct Node *head = NULL;
    struct Node *n;
    int i, s = 0;
    for (i = 0; i < 10; i++) {
        n = (struct Node *)malloc(sizeof(struct Node));
        n->v = i; n->next = head; head = n;
    }
    for (n = head; n != NULL; n = n->next) { s += n->v; }
    return s;
}
"""
        assert compile_run(src).exit_code == 45

    def test_malloc_free_reuse(self):
        src = """
int main() {
    char *a = malloc(32);
    char *b;
    free(a);
    b = malloc(16);      // should reuse the freed block
    return a == b;
}
"""
        assert compile_run(src).exit_code == 1


class TestControlFlow:
    def test_nested_loops_with_break_continue(self):
        assert returns("""
int i, j, s = 0;
for (i = 0; i < 5; i++) {
    if (i == 3) continue;
    for (j = 0; j < 5; j++) {
        if (j > i) break;
        s += 1;
    }
}
return s;""") == 1 + 2 + 3 + 5

    def test_do_while_runs_once(self):
        assert returns("int n = 0; do { n++; } while (0); return n;") == 1

    def test_while_zero_never_runs(self):
        assert returns("int n = 0; while (0) { n++; } return n;") == 0

    def test_deep_recursion(self):
        src = """
int depth(int n) { if (n == 0) return 0; return 1 + depth(n - 1); }
int main() { return depth(200) == 200; }
"""
        assert compile_run(src).exit_code == 1

    def test_mutual_recursion(self):
        src = """
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() { return is_even(10) * 10 + is_odd(7); }
"""
        # note: BLC has no prototypes; drop the decl line
        src = src.replace("int is_odd(int n);\n", "")
        assert compile_run(src).exit_code == 11

    def test_many_int_args_spill_to_stack(self):
        src = """
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + b + c + d + e + f + g + h;
}
int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
"""
        assert compile_run(src).exit_code == 36

    def test_register_pressure_spilling(self):
        # more simultaneously-live values than allocatable registers
        body = "\n".join(f"int v{i} = {i + 1};" for i in range(30))
        total = sum(range(1, 31))
        expr = " + ".join(f"v{i}" for i in range(30))
        assert returns(f"{body}\nreturn {expr} == {total};") == 1

    def test_values_preserved_across_calls(self):
        src = """
int id(int x) { return x; }
int main() {
    int a = id(1); int b = id(2); int c = id(3); int d = id(4);
    int e = id(5); int f = id(6); int g = id(7); int h = id(8);
    return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6 + g * 7 + h * 8;
}
"""
        expected = sum(i * i for i in range(1, 9))
        assert compile_run(src).exit_code == expected

    def test_unoptimized_build_matches(self):
        src = """
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(11); }
"""
        opt = compile_run(src, optimize=True).exit_code
        noopt = compile_run(src, optimize=False).exit_code
        assert opt == noopt == 89


class TestIO:
    def test_read_and_print(self):
        out = run_output(
            "int main() { int a = read_int(); int b = read_int(); "
            "print_int(a * b); print_char('\\n'); return 0; }",
            inputs=[6, 7])
        assert out == "42\n"

    def test_print_str(self):
        out = run_output('int main() { print_str("x=\\t"); print_int(1); '
                         "return 0; }")
        assert out == "x=\t1"

    def test_read_double(self):
        out = run_output("int main() { print_double(read_double() * 2.0); "
                         "return 0; }", inputs=[1.25])
        assert out == "2.5"

    def test_exit_builtin(self):
        assert returns("exit(7); return 0;") == 7


# -- property-based compiled-vs-python check ---------------------------------

_INT_MIN, _INT_MAX = -(2**31), 2**31 - 1


def _wrap(v):
    v &= 0xFFFFFFFF
    return v - 2**32 if v >= 2**31 else v


class _Expr:
    """Random integer expression tree with C (MIPS) evaluation semantics."""

    def __init__(self, text, value):
        self.text = text
        self.value = value


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        n = draw(st.integers(-100, 100))
        return _Expr(f"({n})", n)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    if op == "+":
        value = _wrap(left.value + right.value)
    elif op == "-":
        value = _wrap(left.value - right.value)
    elif op == "*":
        value = _wrap(left.value * right.value)
    elif op == "&":
        value = _wrap(left.value & right.value)
    elif op == "|":
        value = _wrap(left.value | right.value)
    else:
        value = _wrap(left.value ^ right.value)
    return _Expr(f"({left.text} {op} {right.text})", value)


class TestCompiledExpressionProperty:
    @settings(max_examples=25, deadline=None)
    @given(int_exprs())
    def test_random_expression_matches_python(self, expr):
        out = run_output(
            f"int main() {{ print_int({expr.text}); return 0; }}")
        assert int(out) == expr.value

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_array_sort_matches_python(self, values):
        n = len(values)
        sets = "\n".join(f"a[{i}] = {v};" for i, v in enumerate(values))
        src = f"""
int a[{n}];
int main() {{
    int i, j, t;
    {sets}
    for (i = 1; i < {n}; i++) {{
        t = a[i];
        j = i - 1;
        while (j >= 0 && a[j] > t) {{ a[j + 1] = a[j]; j--; }}
        a[j + 1] = t;
    }}
    for (i = 0; i < {n}; i++) {{ print_int(a[i]); print_char(' '); }}
    return 0;
}}
"""
        out = run_output(src)
        assert [int(x) for x in out.split()] == sorted(values)
