"""Golden-hash differential test (satellite of the pass-framework refactor).

``tests/golden_hashes.json`` holds the sha256 of
``compile_to_asm(optimize=True)`` for every suite benchmark, captured from
the *pre-refactor* round-loop optimizer.  The registered-pass pipeline
behind ``optimize_program`` must reproduce that output byte-for-byte:
the refactor moved scheduling and caching, never semantics.

If one of these fails after an intentional optimizer change, regenerate
the file::

    PYTHONPATH=src python - <<'EOF'
    import hashlib, json
    from repro.bcc.driver import compile_to_asm
    from repro.bench.suite import suite
    hashes = {b.name: hashlib.sha256(
        compile_to_asm(b.source(), filename=f"{b.name}.blc",
                       optimize=True).encode()).hexdigest()
        for b in suite()}
    print(json.dumps(hashes, indent=2))
    EOF
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.bcc.driver import compile_to_asm
from repro.bench.suite import suite

GOLDEN_PATH = Path(__file__).parent / "golden_hashes.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["hashes"]


def asm_hash(name: str, source: str) -> str:
    asm = compile_to_asm(source, filename=f"{name}.blc", optimize=True)
    return hashlib.sha256(asm.encode()).hexdigest()


def test_golden_file_covers_the_whole_suite():
    assert set(GOLDEN) == {b.name for b in suite()}


@pytest.mark.parametrize("bench_name", sorted(GOLDEN))
def test_pipeline_output_matches_pre_refactor_seed(bench_name):
    from repro.bench.suite import get
    b = get(bench_name)
    assert asm_hash(b.name, b.source()) == GOLDEN[bench_name], (
        f"{bench_name}: the default pass pipeline no longer reproduces the "
        f"pre-refactor optimizer output (see module docstring to "
        f"regenerate after an INTENTIONAL optimizer change)")


def test_explicit_o1_spec_matches_default():
    """`--passes` with the documented -O1 sequence is the same pipeline."""
    b = next(iter(suite()))
    default = compile_to_asm(b.source(), optimize=True)
    explicit = compile_to_asm(
        b.source(), optimize=True,
        passes="local-propagate,sccp-fold,simplify-cfg,dce,copy-coalesce")
    assert default == explicit


def test_sccp_fold_is_a_no_op_on_the_suite():
    """The golden hashes did not move when ``sccp-fold`` joined the
    default pipeline: ``local-propagate`` already folds every
    *block-local* constant branch, and the suite has no *cross-block*
    integer constant reaching a conditional branch (parameters and
    memory are never assumed constant).  The pass's effect is covered by
    the targeted cross-block tests in ``test_analysis_sccp_ranges.py``;
    this test pins the no-op so a future precision change shows up as an
    explicit, audited golden-hash regeneration."""
    b = next(iter(suite()))
    with_fold = compile_to_asm(b.source(), optimize=True)
    without = compile_to_asm(
        b.source(), optimize=True,
        passes="local-propagate,simplify-cfg,dce,copy-coalesce")
    assert with_fold == without
