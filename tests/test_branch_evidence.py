"""Branch evidence: IR facts -> machine addresses -> predictions.

Covers the whole evidence path: classification (``analyze_branch_
evidence``), the codegen-replication address mapping (``attach_
evidence`` and its count cross-check), the machine-direction convention
(``taken`` is the direction of the *emitted* branch, inversion
included), ground-truth validation against edge profiles, the
registered-but-unmeasured ``Range`` heuristic, and the harness ablation
row/table.

The soundness contract under test everywhere: **zero** decided-and-
executed facts may contradict the profile.
"""

from __future__ import annotations

import pytest

from repro.analysis.branches import (
    BranchEvidence, EvidenceMappingError, analyze_branch_evidence,
    attach_evidence, evidence_of,
)
from repro.bcc.driver import compile_and_link
from repro.core.classify import Prediction, classify_branches
from repro.core.registry import HEURISTIC_REGISTRY
from repro.harness.evidence import (
    NO_FOLD_PASSES, EvidenceTable, evidence_row,
)

from conftest import profile_of

#: one never-taken branch (`i == 100`) and one always-taken loop entry
#: (`0 < 20`); compiled fold-free so both survive into the executable
LOOP = """
int main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 20; i = i + 1) {
        if (i == 100) { total = total + 1000; }
        total = total + read_int();
    }
    print_int(total);
    return 0;
}
"""

INPUTS = list(range(20))


@pytest.fixture(scope="module")
def loop_executable():
    return compile_and_link(LOOP, passes=NO_FOLD_PASSES,
                            attach_evidence=True)


def test_evidence_is_attached_and_discoverable(loop_executable):
    evidence = evidence_of(loop_executable)
    assert evidence is not None
    assert evidence is loop_executable.branch_evidence


def test_mapping_covers_every_ir_conditional_branch(loop_executable):
    evidence = evidence_of(loop_executable)
    total_facts = len(evidence.evidence.facts())
    assert len(evidence.by_address) == total_facts
    # every mapped address is a conditional branch instruction
    addresses = {inst.address
                 for proc in loop_executable.procedures
                 for inst in proc.instructions
                 if inst.is_conditional_branch}
    assert set(evidence.by_address) <= addresses


def test_decided_facts_and_their_sources(loop_executable):
    evidence = evidence_of(loop_executable)
    decided = [f for f in evidence.evidence.decided_facts()
               if f.function == "main"]
    # the constant loop-entry guard was already folded away by
    # local-propagate (block-local), leaving exactly two semantic facts:
    # the impossible equality (`i == 100` against i in [0, 19]) decided
    # by the range analysis, and the 20-trip loop exit test decided as a
    # "likely" majority by the SCEV trip count
    by_source = {f.source: f for f in decided}
    assert len(decided) == 2
    assert set(by_source) == {"range", "scev"}
    assert by_source["range"].ir_outcome is False
    assert by_source["range"].mode == "always"
    assert by_source["scev"].mode == "likely"


def test_machine_direction_matches_ground_truth(loop_executable):
    """Every decided fact that executes must agree with the edge profile
    in *machine* direction — this is exactly the inversion-aware mapping
    (`taken = ir_outcome XOR inverted`)."""
    evidence = evidence_of(loop_executable)
    profile = profile_of(loop_executable, inputs=INPUTS)
    checked = 0
    for address, fact in evidence.by_address.items():
        if fact.taken is None or profile.execution_count(address) == 0:
            continue
        checked += 1
        wrong = (profile.not_taken_count(address) if fact.taken
                 else profile.taken_count(address))
        if fact.mode == "likely":
            # SCEV majority claims tolerate minority contradictions
            # (the one loop exit among the in-loop executions)
            right = profile.execution_count(address) - wrong
            assert wrong <= right if fact.taken else wrong < right, (
                f"likely fact at {address:#x} ({fact.function}"
                f"#{fact.ordinal}) claims majority taken={fact.taken} "
                f"but the profile recorded {wrong} of "
                f"{profile.execution_count(address)} the other way")
        else:
            assert wrong == 0, (
                f"fact at {address:#x} ({fact.function}#{fact.ordinal}, "
                f"source={fact.source}) claims taken={fact.taken} but "
                f"the profile recorded {wrong} contrary executions")
    assert checked >= 1, "expected an executed decided fact"


def test_count_mismatch_is_refused(loop_executable):
    """Dropping a fact breaks the codegen replication contract, which
    the mapper must detect rather than silently misalign."""
    original = evidence_of(loop_executable).evidence
    tampered = BranchEvidence(by_function={
        name: facts[:-1] if name == "main" else facts
        for name, facts in original.by_function.items()})

    class Scratch:
        procedures = loop_executable.procedures

    with pytest.raises(EvidenceMappingError):
        attach_evidence(Scratch(), tampered)


def test_no_evidence_without_opt_in():
    executable = compile_and_link(LOOP, passes=NO_FOLD_PASSES)
    assert evidence_of(executable) is None


# -- the Range heuristic ----------------------------------------------------


def test_range_heuristic_is_registered_outside_the_measured_set():
    assert "Range" in HEURISTIC_REGISTRY
    assert "Range" not in HEURISTIC_REGISTRY.names()
    assert "Range" in HEURISTIC_REGISTRY.all_names()
    assert "Range" not in HEURISTIC_REGISTRY.paper_order()


def test_range_heuristic_predicts_decided_branches(loop_executable):
    analysis = classify_branches(loop_executable)
    evidence = evidence_of(loop_executable)
    fn = HEURISTIC_REGISTRY.fn("Range")
    predictions = {}
    for address, branch in analysis.branches.items():
        pa = analysis.procedures[branch.procedure.name]
        taken = evidence.taken_at(address)
        prediction = fn(branch, pa)
        if taken is None:
            assert prediction is None
        else:
            expected = (Prediction.TAKEN if taken
                        else Prediction.NOT_TAKEN)
            assert prediction is expected
            predictions[address] = prediction
    assert len(predictions) >= 1


def test_range_heuristic_abstains_without_evidence():
    executable = compile_and_link(LOOP, passes=NO_FOLD_PASSES)
    analysis = classify_branches(executable)
    fn = HEURISTIC_REGISTRY.fn("Range")
    for branch in analysis.branches.values():
        pa = analysis.procedures[branch.procedure.name]
        assert fn(branch, pa) is None


# -- suite-wide decided-count regression pin ---------------------------------

#: per-benchmark decided facts by source, compile-time only (the counts
#: are static — no simulation involved).  This is the coverage floor of
#: the semantic analyses: the seed shipped 5 decided branches suite-wide;
#: interprocedural ranges + SCEV push it to 61.  An accidental analysis
#: regression shows up here as a dropped count.
_DECIDED_PIN = {
    "queens": {"range": 1},
    "fields": {"range": 3, "scev": 3},
    "wordfreq": {"range": 4, "scev": 3},
    "huffman": {"range": 2, "scev": 2},
    "matmul": {"range": 5},
}


@pytest.mark.parametrize("bench_name", sorted(_DECIDED_PIN))
def test_suite_decided_counts_are_pinned(bench_name):
    from repro.analysis.branches import analyze_branch_evidence
    from repro.bcc.driver import compile_to_ir
    from repro.bench.suite import get

    program = compile_to_ir(get(bench_name).source(),
                            filename=f"{bench_name}.blc",
                            passes=NO_FOLD_PASSES)
    evidence = analyze_branch_evidence(program)
    counts: dict[str, int] = {}
    for fact in evidence.decided_facts():
        counts[fact.source] = counts.get(fact.source, 0) + 1
    assert counts == _DECIDED_PIN[bench_name]


# -- the harness ablation row / table ---------------------------------------


@pytest.fixture(scope="module")
def gauss_row():
    return evidence_row("gauss", dataset="small")


def test_evidence_row_decides_and_validates(gauss_row):
    assert gauss_row.conditional_branches > 0
    assert gauss_row.decided >= 1
    assert gauss_row.decided == (gauss_row.decided_sccp +
                                 gauss_row.decided_range +
                                 gauss_row.decided_scev)
    # THE soundness gate
    assert gauss_row.misclassified == 0
    assert 0.0 <= gauss_row.perfect_miss <= gauss_row.bl_miss <= 1.0


def test_evidence_row_never_hurts_the_chain(gauss_row):
    """Consulting validated facts first can only help (or tie)."""
    assert gauss_row.range_miss <= gauss_row.bl_miss + 1e-12


def test_evidence_table_renders_with_soundness_footnote(gauss_row):
    rendered = EvidenceTable([gauss_row]).render()
    assert "gauss" in rendered
    assert "+Range%" in rendered and "gap%" in rendered
    assert "misclassifications must be 0" in rendered
