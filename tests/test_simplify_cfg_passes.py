"""Edge-case tests for the ``simplify-cfg`` pass, run standalone through
the pass registry (satellite of the pass-framework refactor).

Focus areas the original round-loop tests never pinned down:

* self-loop blocks (a block jumping/branching to itself) must never be
  threaded, merged into themselves, or dropped while reachable;
* branch-to-next-block folding (CBr with identical targets -> Jump) and
  its interaction with subsequent merging;
* unreachable-block removal *ordering* — removal happens before the
  straight-line merge recomputes predecessor counts, so a dead
  predecessor cannot block a legitimate merge.
"""

import pytest

from repro.bcc.ir import (
    INT, BinOp, CBr, Imm, IRBlock, IRFunction, Jump, LoadConst, Ret,
)
from repro.bcc.opt import IR_ANALYSES, IR_PASSES
from repro.passes import PassPipeline


def func_of(*blocks: IRBlock) -> IRFunction:
    f = IRFunction("t")
    f.blocks = list(blocks)
    for b in blocks:
        for inst in b.instructions:
            for v in list(inst.uses()) + list(inst.defs()):
                f.vreg_class.setdefault(v, INT)
    f._next_vreg = max(f.vreg_class, default=0) + 1
    return f


def run_simplify(func: IRFunction) -> bool:
    """Run simplify-cfg exactly once, as a registered pass."""
    pipeline = PassPipeline([IR_PASSES.get("simplify-cfg")],
                            fixed_point=False)
    return pipeline.run(func, am=IR_ANALYSES.manager(func))


class TestSelfLoops:
    def test_trivial_self_jump_block_not_threaded(self):
        """A block that is just ``Jump(itself)`` (an intentional infinite
        loop) must not be jump-threaded into a self-mapping."""
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "spin", "out")]),
            IRBlock("spin", [Jump("spin")]),
            IRBlock("out", [Ret(0, INT)]),
        )
        run_simplify(f)
        labels = [b.label for b in f.blocks]
        assert "spin" in labels
        term = f.blocks[0].terminator
        assert term.true_label == "spin"

    def test_self_loop_with_body_not_merged_into_itself(self):
        f = func_of(
            IRBlock("e", [Jump("loop")]),
            IRBlock("loop", [
                BinOp("add", 0, 0, Imm(1)),
                CBr("ne", 0, Imm(0), "loop", "out"),
            ]),
            IRBlock("out", [Ret(0, INT)]),
        )
        run_simplify(f)
        labels = [b.label for b in f.blocks]
        assert "loop" in labels
        loop = next(b for b in f.blocks if b.label == "loop")
        assert isinstance(loop.terminator, CBr)

    def test_straight_line_merge_skips_self_jump(self):
        """A ends in Jump(A): the merge loop must not try to merge A into
        itself (would loop forever / duplicate instructions)."""
        f = func_of(
            IRBlock("e", [Jump("a")]),
            IRBlock("a", [BinOp("add", 0, 0, Imm(1)), Jump("a")]),
        )
        run_simplify(f)
        a = next(b for b in f.blocks if b.label == "a")
        assert len(a.instructions) == 2


class TestBranchToNextFolding:
    def test_same_target_cbr_becomes_jump(self):
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "x", "x")]),
            IRBlock("x", [Ret(0, INT)]),
        )
        changed = run_simplify(f)
        assert changed
        # the CBr folded to Jump; with one predecessor, x then merged in
        assert isinstance(f.blocks[0].terminator, (Jump, Ret))
        assert all(not isinstance(i, CBr)
                   for b in f.blocks for i in b.instructions)

    def test_folding_enables_merge_same_round(self):
        """CBr(x, x) -> Jump(x) and x has exactly one predecessor: the
        merge in the same invocation collapses the pair to one block."""
        f = func_of(
            IRBlock("e", [LoadConst(0, 1), CBr("eq", 0, Imm(0), "x", "x")]),
            IRBlock("x", [Ret(0, INT)]),
        )
        run_simplify(f)
        assert len(f.blocks) == 1
        assert isinstance(f.blocks[0].terminator, Ret)

    def test_threading_through_folded_branch(self):
        """Jump threading retargets through a chain of trivial blocks."""
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "hop1", "out")]),
            IRBlock("hop1", [Jump("hop2")]),
            IRBlock("hop2", [Jump("target")]),
            IRBlock("target", [Ret(0, INT)]),
            IRBlock("out", [Ret(0, INT)]),
        )
        run_simplify(f)
        term = f.blocks[0].terminator
        assert term.true_label == "target"

    def test_no_fold_for_distinct_targets(self):
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "a", "b")]),
            IRBlock("a", [Ret(0, INT)]),
            IRBlock("b", [Ret(0, INT)]),
        )
        changed = run_simplify(f)
        assert not changed
        assert isinstance(f.blocks[0].terminator, CBr)


class TestUnreachableRemovalOrdering:
    def test_unreachable_predecessor_does_not_block_merge(self):
        """'island' jumps to 'next', so naively 'next' has two preds —
        but 'island' is unreachable and must be removed BEFORE the merge
        counts predecessors."""
        f = func_of(
            IRBlock("e", [LoadConst(0, 1), Jump("next")]),
            IRBlock("next", [Ret(0, INT)]),
            IRBlock("island", [Jump("next")]),
        )
        run_simplify(f)
        assert [b.label for b in f.blocks] == ["e"]
        assert isinstance(f.blocks[0].terminator, Ret)

    def test_unreachable_cycle_removed(self):
        """A dead cycle keeps itself 'referenced' — edge-count reasoning
        would keep it; reachability from the entry must not."""
        f = func_of(
            IRBlock("e", [Ret(0, INT)]),
            IRBlock("dead1", [Jump("dead2")]),
            IRBlock("dead2", [Jump("dead1")]),
        )
        changed = run_simplify(f)
        assert changed
        assert [b.label for b in f.blocks] == ["e"]

    def test_unreachable_self_loop_removed(self):
        f = func_of(
            IRBlock("e", [Ret(0, INT)]),
            IRBlock("spin", [Jump("spin")]),
        )
        run_simplify(f)
        assert [b.label for b in f.blocks] == ["e"]

    def test_entry_never_removed_or_merged_away(self):
        """The entry block must survive even when it is a merge target
        candidate (a loop back to the entry)."""
        f = func_of(
            IRBlock("e", [BinOp("add", 0, 0, Imm(1)),
                          CBr("ne", 0, Imm(0), "e", "out")]),
            IRBlock("out", [Ret(0, INT)]),
        )
        run_simplify(f)
        assert f.blocks[0].label == "e"

    def test_blocks_unreachable_after_threading_removed_next_round(self):
        """Threading leaves the trivial hop blocks without predecessors;
        a second standalone invocation cleans them up (fixed-point
        behavior decomposed into observable single steps)."""
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "hop", "out")]),
            IRBlock("hop", [Jump("target")]),
            IRBlock("target", [Ret(0, INT)]),
            IRBlock("out", [Ret(0, INT)]),
        )
        run_simplify(f)          # threads e -> target
        run_simplify(f)          # drops the now-unreachable hop
        labels = [b.label for b in f.blocks]
        assert "hop" not in labels
        assert {"e", "target", "out"} <= set(labels)

    def test_idempotent_at_fixed_point(self):
        f = func_of(
            IRBlock("e", [CBr("eq", 0, Imm(0), "a", "b")]),
            IRBlock("a", [Ret(0, INT)]),
            IRBlock("b", [Ret(0, INT)]),
        )
        pipeline = PassPipeline([IR_PASSES.get("simplify-cfg")],
                                fixed_point=True, max_rounds=8)
        pipeline.run(f, am=IR_ANALYSES.manager(f))
        before = f.dump()
        assert run_simplify(f) is False
        assert f.dump() == before
