"""Tests for the sparse simulated memory."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.memory import Memory, MemoryError_, PAGE_SIZE


class TestWords:
    def test_store_load_roundtrip(self):
        m = Memory()
        m.store_word(0x1000_0000, 12345)
        assert m.load_word(0x1000_0000) == 12345

    def test_negative_roundtrip(self):
        m = Memory()
        m.store_word(0x100, -1)
        assert m.load_word(0x100) == -1

    def test_uninitialized_is_zero(self):
        assert Memory().load_word(0x7FFF_0000) == 0

    def test_wraps_mod_2_32(self):
        m = Memory()
        m.store_word(0, 2**32 + 5)
        assert m.load_word(0) == 5

    def test_sign_boundary(self):
        m = Memory()
        m.store_word(0, 0x8000_0000)
        assert m.load_word(0) == -(2**31)

    def test_misaligned_load_raises(self):
        with pytest.raises(MemoryError_):
            Memory().load_word(0x1001)

    def test_misaligned_store_raises(self):
        with pytest.raises(MemoryError_):
            Memory().store_word(0x1002, 1)

    @given(st.integers(-2**31, 2**31 - 1), st.integers(0, 2**20))
    def test_roundtrip_property(self, value, word_index):
        m = Memory()
        addr = word_index * 4
        m.store_word(addr, value)
        assert m.load_word(addr) == value


class TestBytes:
    def test_signed_byte(self):
        m = Memory()
        m.store_byte(5, 0xFF)
        assert m.load_byte(5) == -1
        assert m.load_byte(5, signed=False) == 255

    def test_byte_masks(self):
        m = Memory()
        m.store_byte(0, 0x1FF)
        assert m.load_byte(0, signed=False) == 0xFF

    def test_bytes_within_word(self):
        m = Memory()
        m.store_word(0, 0x04030201)
        assert [m.load_byte(i) for i in range(4)] == [1, 2, 3, 4]  # little endian


class TestDoubles:
    def test_roundtrip(self):
        m = Memory()
        m.store_double(0x2000, 3.14159)
        assert m.load_double(0x2000) == 3.14159

    def test_misaligned_double_raises(self):
        with pytest.raises(MemoryError_):
            Memory().load_double(0x2004)
        with pytest.raises(MemoryError_):
            Memory().store_double(0x2004, 1.0)

    @given(st.floats(allow_nan=False))
    def test_roundtrip_property(self, value):
        m = Memory()
        m.store_double(0x4000, value)
        assert m.load_double(0x4000) == value


class TestBulkAndStrings:
    def test_write_read_bytes(self):
        m = Memory()
        data = bytes(range(200))
        m.write_bytes(0x123, data)
        assert m.read_bytes(0x123, 200) == data

    def test_cross_page_bulk(self):
        m = Memory()
        data = b"x" * (PAGE_SIZE + 100)
        addr = PAGE_SIZE - 50
        m.write_bytes(addr, data)
        assert m.read_bytes(addr, len(data)) == data

    def test_cstring(self):
        m = Memory()
        m.write_bytes(0x10, b"hello\x00world")
        assert m.load_cstring(0x10) == "hello"

    def test_cstring_empty(self):
        m = Memory()
        m.write_bytes(0x10, b"\x00")
        assert m.load_cstring(0x10) == ""

    def test_cstring_cross_page(self):
        m = Memory()
        addr = PAGE_SIZE - 3
        m.write_bytes(addr, b"abcdef\x00")
        assert m.load_cstring(addr) == "abcdef"

    def test_unterminated_string_raises(self):
        m = Memory()
        m.write_bytes(0, b"a" * 100)
        with pytest.raises(MemoryError_):
            m.load_cstring(0, limit=50)

    @given(st.binary(min_size=0, max_size=5000),
           st.integers(0, 2**24))
    def test_bulk_roundtrip_property(self, data, addr):
        m = Memory()
        m.write_bytes(addr, data)
        assert m.read_bytes(addr, len(data)) == data
