"""Unit + property tests for the unified :class:`RetryPolicy`.

The policy is the single owner of the transient-failure classification
shared by the serial runner, the parallel shard worker, and the
prediction service — so these tests pin the exact historical semantics
(one fuel retry at factor x fuel; wall-clock timeouts never retried)
plus the service extensions (crash retries, exponential backoff).
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    ReproError, SimulationLimitExceeded, SimulationTimeout, WorkerCrashError,
)
from repro.harness.retry import DEFAULT_RETRY_POLICY, RetryPolicy

FUEL = SimulationLimitExceeded("fuel gone")
TIMEOUT = SimulationTimeout("wall clock passed")
CRASH = WorkerCrashError("worker died")
GENERIC = ReproError("anything else")


# -- classification -----------------------------------------------------------

def test_fuel_exhaustion_is_transient():
    assert DEFAULT_RETRY_POLICY.is_transient(FUEL)


def test_wall_clock_timeout_is_never_transient():
    assert not DEFAULT_RETRY_POLICY.is_transient(TIMEOUT)
    # not even under a crash-retrying service policy
    assert not RetryPolicy(retry_worker_crashes=True).is_transient(TIMEOUT)


def test_worker_crash_transient_only_by_opt_in():
    assert not DEFAULT_RETRY_POLICY.is_transient(CRASH)
    assert RetryPolicy(retry_worker_crashes=True).is_transient(CRASH)


def test_generic_errors_are_deterministic():
    assert not DEFAULT_RETRY_POLICY.is_transient(GENERIC)


# -- historical runner semantics ----------------------------------------------

def test_from_fuel_factor_matches_historical_runner():
    # factor > 1: exactly one retry at factor x fuel
    policy = RetryPolicy.from_fuel_factor(4)
    assert policy.max_attempts == 2
    assert policy.fuel_scale(1) == 1
    assert policy.fuel_scale(2) == 4
    assert policy.should_retry(FUEL, 1)
    assert not policy.should_retry(FUEL, 2)
    assert not policy.should_retry(TIMEOUT, 1)


def test_from_fuel_factor_strict_mode_never_retries():
    policy = RetryPolicy.from_fuel_factor(1)
    assert policy.max_attempts == 1
    assert not policy.should_retry(FUEL, 1)


@given(factor=st.integers(-3, 10))
def test_from_fuel_factor_clamps_degenerate_factors(factor):
    policy = RetryPolicy.from_fuel_factor(factor)
    assert policy.fuel_factor >= 1
    assert policy.max_attempts == (2 if factor > 1 else 1)


def test_runner_exposes_policy_with_its_own_settings():
    from repro.harness.runner import SuiteRunner
    # strict (the default) never retries; degraded mode retries at its
    # configured fuel factor
    assert SuiteRunner().retry_policy == RetryPolicy.from_fuel_factor(1)
    assert (SuiteRunner(strict=False).retry_policy
            == RetryPolicy.from_fuel_factor(4))
    assert (SuiteRunner(strict=False, retry_fuel_factor=8).retry_policy
            == RetryPolicy.from_fuel_factor(8))


# -- schedules ----------------------------------------------------------------

@given(attempt=st.integers(1, 6), factor=st.integers(1, 8))
def test_fuel_scale_is_geometric(attempt, factor):
    policy = RetryPolicy(fuel_factor=factor)
    assert policy.fuel_scale(attempt) == factor ** (attempt - 1)


def test_backoff_disabled_by_default():
    assert DEFAULT_RETRY_POLICY.backoff_s(1) == 0.0
    assert DEFAULT_RETRY_POLICY.backoff_s(5) == 0.0


@given(attempt=st.integers(1, 20))
def test_backoff_is_monotone_and_capped(attempt):
    policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                         backoff_max_s=1.5)
    delay = policy.backoff_s(attempt)
    assert 0.0 < delay <= 1.5
    assert delay <= policy.backoff_s(attempt + 1) or delay == 1.5


def test_backoff_first_step_is_base():
    policy = RetryPolicy(backoff_base_s=0.25)
    assert policy.backoff_s(1) == 0.25
    assert policy.backoff_s(2) == 0.5


# -- retry loop shape ---------------------------------------------------------

@given(max_attempts=st.integers(1, 5))
def test_attempt_budget_is_exact(max_attempts):
    """A transient failure is retried exactly max_attempts - 1 times."""
    policy = RetryPolicy(max_attempts=max_attempts)
    attempts = 0
    attempt = 1
    while True:
        attempts += 1
        if not policy.should_retry(FUEL, attempt):
            break
        attempt += 1
    assert attempts == max_attempts


def test_policy_is_frozen_and_comparable():
    assert RetryPolicy() == RetryPolicy()
    with pytest.raises(Exception):
        DEFAULT_RETRY_POLICY.max_attempts = 99  # type: ignore[misc]
