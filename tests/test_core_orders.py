"""Tests for the heuristic-ordering experiments (Section 5)."""

import numpy as np
import pytest

from conftest import profile_of
from repro.bcc import compile_and_link
from repro.core import (
    HEURISTIC_NAMES, HeuristicPredictor, all_orders, all_orders_curve,
    best_order, build_order_data, classify_branches, evaluate_predictor,
    miss_rate_matrix, order_miss_rate, pairwise_order, subset_experiment,
)

SRC_A = """
struct Node { int v; struct Node *next; };
int main() {
    struct Node *head = NULL;
    struct Node *p;
    int i, s = 0;
    for (i = 0; i < 60; i++) {
        p = (struct Node *)malloc(sizeof(struct Node));
        p->v = i % 7;
        p->next = head;
        head = p;
    }
    for (p = head; p != NULL; p = p->next) {
        if (p->v == 0) { s++; }
    }
    return s;
}
"""

SRC_B = """
int a[100];
int main() {
    int i, mx = 0;
    for (i = 0; i < 100; i++) { a[i] = (i * 37) % 100; }
    for (i = 0; i < 100; i++) {
        if (a[i] > mx) { mx = a[i]; }
    }
    return mx;
}
"""


@pytest.fixture(scope="module")
def datasets():
    out = []
    for name, src in (("a", SRC_A), ("b", SRC_B)):
        exe = compile_and_link(src)
        analysis = classify_branches(exe)
        profile = profile_of(exe)
        out.append(build_order_data(name, analysis, profile))
    return out


class TestOrderData:
    def test_rows_are_executed_non_loop(self, datasets):
        for data in datasets:
            assert data.applies.shape[1] == len(HEURISTIC_NAMES)
            assert (data.taken + data.not_taken > 0).all()

    def test_total(self, datasets):
        for data in datasets:
            assert data.total == data.taken.sum() + data.not_taken.sum()


class TestOrderMissRate:
    def test_matches_heuristic_predictor(self, datasets):
        """Vectorized order evaluation must agree with the reference
        HeuristicPredictor path for any order."""
        exe = compile_and_link(SRC_A)
        analysis = classify_branches(exe)
        profile = profile_of(exe)
        data = build_order_data("a", analysis, profile)
        nl = [b.address for b in analysis.non_loop_branches()
              if profile.execution_count(b.address) > 0]
        for order in [tuple(HEURISTIC_NAMES),
                      tuple(reversed(HEURISTIC_NAMES))]:
            predictor = HeuristicPredictor(analysis, order=order)
            reference = evaluate_predictor(predictor, profile, nl)
            fast = order_miss_rate(data, order)
            assert fast == pytest.approx(reference.miss_rate)

    def test_all_orders_count(self):
        orders = all_orders()
        assert len(orders) == 5040
        assert len(set(orders)) == 5040

    def test_matrix_shape(self, datasets):
        matrix, orders = miss_rate_matrix(datasets)
        assert matrix.shape == (5040, len(datasets))
        assert (matrix >= 0).all() and (matrix <= 1).all()

    def test_matrix_consistent_with_scalar_path(self, datasets):
        orders = all_orders()[:5]
        matrix, _ = miss_rate_matrix(datasets, orders)
        for i, order in enumerate(orders):
            for j, data in enumerate(datasets):
                assert matrix[i, j] == pytest.approx(
                    order_miss_rate(data, order))

    def test_curve_sorted(self, datasets):
        curve = all_orders_curve(datasets)
        assert (np.diff(curve) >= 0).all()

    def test_best_order_is_minimum(self, datasets):
        order, miss = best_order(datasets)
        matrix, _ = miss_rate_matrix(datasets)
        assert miss == pytest.approx(float(matrix.mean(axis=1).min()))
        assert sorted(order) == sorted(HEURISTIC_NAMES)


class TestSubsetExperiment:
    def test_trial_count(self, datasets):
        result = subset_experiment(datasets, k=1)
        assert result.n_trials == len(datasets)

    def test_frequencies_sum_to_trials(self, datasets):
        result = subset_experiment(datasets, k=1)
        assert sum(result.frequencies) == result.n_trials

    def test_frequencies_sorted_descending(self, datasets):
        result = subset_experiment(datasets, k=1)
        assert result.frequencies == sorted(result.frequencies,
                                            reverse=True)

    def test_cumulative_share_ends_at_one(self, datasets):
        result = subset_experiment(datasets, k=1)
        share = result.cumulative_trial_share()
        assert share[-1] == pytest.approx(1.0)

    def test_top(self, datasets):
        result = subset_experiment(datasets, k=1)
        top = result.top(3)
        assert len(top) <= 3
        for order, freq, miss in top:
            assert sorted(order) == sorted(HEURISTIC_NAMES)
            assert freq >= 1
            assert 0.0 <= miss <= 1.0


class TestPairwiseOrder:
    def test_is_permutation(self, datasets):
        order = pairwise_order(datasets)
        assert sorted(order) == sorted(HEURISTIC_NAMES)

    def test_deterministic(self, datasets):
        assert pairwise_order(datasets) == pairwise_order(datasets)

    def test_not_catastrophic(self, datasets):
        """The paper: pairwise orders are inferior but in the top quarter."""
        matrix, orders = miss_rate_matrix(datasets)
        means = matrix.mean(axis=1)
        pw = pairwise_order(datasets)
        pw_miss = means[orders.index(pw)]
        assert pw_miss <= np.percentile(means, 50)
