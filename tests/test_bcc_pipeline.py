"""The bcc optimizer as a registered pass pipeline.

Covers pipeline-spec resolution, the ``opt.liveness`` cached-analysis
reuse proof (the historical bug was recomputing liveness for both ``dce``
and ``copy-coalesce`` every round), per-pass telemetry, and the new CLI
surface (``--passes`` / ``-O0`` / ``-O1`` / ``--emit-ir-after``).
"""

import pytest

from repro import telemetry
from repro.bcc.__main__ import main as bcc_main
from repro.bcc.driver import compile_to_asm
from repro.bcc.ir import (
    INT, BinOp, CBr, Copy, Imm, IRBlock, IRFunction, Jump, LoadConst, Ret,
)
from repro.bcc.opt import (
    IR_ANALYSES, IR_PASSES, O0_PASSES, O1_PASSES, build_pipeline,
    optimize_function, optimize_program, pipeline_spec,
)
from repro.passes import PipelineError
from repro.telemetry import Telemetry

SOURCE = """
int square(int x) { return x * x; }
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 10; i = i + 1) {
    s = s + square(i) + 0;
  }
  print_int(s);
  return 0;
}
"""


@pytest.fixture
def sink():
    s = Telemetry()
    with telemetry.use(s):
        yield s


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.blc"
    path.write_text(SOURCE)
    return str(path)


def func_of(*blocks: IRBlock) -> IRFunction:
    f = IRFunction("t")
    f.blocks = list(blocks)
    for b in blocks:
        for inst in b.instructions:
            for v in list(inst.uses()) + list(inst.defs()):
                f.vreg_class.setdefault(v, INT)
    f._next_vreg = max(f.vreg_class, default=0) + 1
    return f


class TestPipelineSpec:
    def test_default_is_o1(self):
        assert pipeline_spec(None) == O1_PASSES

    @pytest.mark.parametrize("spec", ["O0", "-O0", "0", "none"])
    def test_o0_aliases(self, spec):
        assert pipeline_spec(spec) == O0_PASSES == ()

    @pytest.mark.parametrize("spec", ["O1", "-O1", "1", "default"])
    def test_o1_aliases(self, spec):
        assert pipeline_spec(spec) == O1_PASSES

    def test_explicit_comma_spec(self):
        assert pipeline_spec("local-propagate, dce") == \
            ("local-propagate", "dce")

    def test_sequence_spec(self):
        assert pipeline_spec(["dce"]) == ("dce",)

    def test_unknown_pass_raises_pipeline_error(self):
        with pytest.raises(PipelineError, match="unknown pass"):
            pipeline_spec("dce,typo-pass")

    def test_registered_passes(self):
        assert set(O1_PASSES) <= set(IR_PASSES.names())

    def test_build_pipeline_order(self):
        assert build_pipeline().pass_names() == O1_PASSES
        assert build_pipeline("dce").pass_names() == ("dce",)


class TestLivenessReuse:
    """Satellite (a): both liveness consumers route through ONE cached
    analysis, and the reuse is *observable*, not assumed."""

    def _loopy_function(self):
        # a function where dce converges before copy-coalesce, so the
        # final round has dce compute liveness (miss) and copy-coalesce
        # hit the cache (no invalidation in between)
        return func_of(
            IRBlock("e", [LoadConst(0, 7), LoadConst(9, 1), Jump("loop")]),
            IRBlock("loop", [
                BinOp("add", 1, 0, Imm(2)),
                Copy(2, 1),
                BinOp("add", 0, 2, Imm(-1)),
                CBr("ne", 0, Imm(0), "loop", "out"),
            ]),
            IRBlock("out", [Ret(0, INT)]),
        )

    def test_liveness_reused_within_round(self, sink):
        optimize_function(self._loopy_function())
        counters = sink.counters()
        assert counters.get("opt.liveness.compute", 0) >= 1
        # the proof: at least one consumer got a cache hit
        assert counters.get("opt.liveness.reuse", 0) >= 1

    def test_liveness_not_computed_per_consumer(self, sink):
        optimize_function(self._loopy_function())
        counters = sink.counters()
        dce_runs = counters.get("pass.dce.runs", 0)
        coalesce_runs = counters.get("pass.copy-coalesce.runs", 0)
        # two consumers per round; without the shared cache this would be
        # dce_runs + coalesce_runs computations
        assert counters["opt.liveness.compute"] < dce_runs + coalesce_runs

    def test_analysis_registered(self):
        assert "liveness" in IR_ANALYSES

    def test_per_pass_spans_emitted(self, sink):
        optimize_function(self._loopy_function())
        names = {s.name for s in sink.spans}
        for name in O1_PASSES:
            assert f"pass:{name}" in names

    def test_cached_liveness_identical_output(self):
        """Routing copy-coalesce through cached liveness cannot change the
        result (the single-use/single-def conditions already imply the
        guard) — byte-identical IR with and without the cache."""
        f1 = self._loopy_function()
        f2 = self._loopy_function()
        optimize_function(f1)                    # through the pass manager
        from repro.bcc.opt import (
            _coalesce_copies, _eliminate_dead, _local_propagate,
            _simplify_cfg,
        )
        for _ in range(8):                       # the historical loop shape
            changed = False
            for block in f2.blocks:
                changed |= _local_propagate(block)
            changed |= _simplify_cfg(f2)
            changed |= _eliminate_dead(f2)
            changed |= _coalesce_copies(f2)
            if not changed:
                break
        assert f1.dump() == f2.dump()


class TestOptimizeProgramWrappers:
    def test_disabled_returns_program_unchanged(self, source_file):
        from repro.bcc.driver import compile_to_ir
        ir = compile_to_ir(SOURCE, optimize=False)
        dumped = ir.dump()
        assert optimize_program(ir, enabled=False).dump() == dumped

    def test_empty_spec_is_noop(self):
        from repro.bcc.driver import compile_to_ir
        ir = compile_to_ir(SOURCE, optimize=False)
        dumped = ir.dump()
        assert optimize_program(ir, passes="O0").dump() == dumped

    def test_o0_and_o1_differ(self):
        o0 = compile_to_asm(SOURCE, optimize=False)
        o1 = compile_to_asm(SOURCE, optimize=True)
        assert len(o0.splitlines()) > len(o1.splitlines())


class TestBccCli:
    def test_passes_flag(self, source_file, capsys):
        assert bcc_main([source_file, "--dump-ir",
                         "--passes", "local-propagate,dce"]) == 0
        assert "func " in capsys.readouterr().out

    def test_opt_levels(self, source_file):
        assert bcc_main([source_file, "-O0"]) == 0
        assert bcc_main([source_file, "-O1"]) == 0

    def test_o0_matches_no_opt_asm(self, source_file, capsys):
        assert bcc_main([source_file, "--emit-asm", "-O0"]) == 0
        o0 = capsys.readouterr().out
        assert bcc_main([source_file, "--emit-asm", "--no-opt"]) == 0
        assert capsys.readouterr().out == o0

    def test_emit_ir_after(self, source_file, capsys):
        assert bcc_main([source_file, "--dump-ir",
                         "--passes", "local-propagate,dce",
                         "--emit-ir-after", "dce"]) == 0
        out = capsys.readouterr().out
        assert "; -- IR after dce" in out

    def test_emit_ir_after_unknown_pass(self, source_file, capsys):
        assert bcc_main([source_file, "--dump-ir",
                         "--emit-ir-after", "nope"]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_emit_ir_after_not_in_pipeline(self, source_file, capsys):
        assert bcc_main([source_file, "--dump-ir", "--passes", "dce",
                         "--emit-ir-after", "copy-coalesce"]) == 2
        assert "not in the pipeline" in capsys.readouterr().err

    def test_unknown_pass_spec(self, source_file, capsys):
        assert bcc_main([source_file, "--passes", "bogus"]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_explicit_passes_override_o0(self, source_file, capsys):
        """--passes wins over -O0 (per the help text)."""
        assert bcc_main([source_file, "--emit-asm", "-O0",
                         "--passes", "local-propagate,dce"]) == 0
        with_passes = capsys.readouterr().out
        assert bcc_main([source_file, "--emit-asm", "-O0"]) == 0
        without = capsys.readouterr().out
        assert with_passes != without

    def test_run_still_works_with_pipeline(self, source_file, capsys):
        assert bcc_main([source_file, "--run",
                         "--passes", "local-propagate,simplify-cfg"]) == 0
        assert "285" in capsys.readouterr().out
