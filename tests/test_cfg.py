"""Tests for CFG construction, dominators/postdominators, and natural loops."""

import pytest

from repro.cfg import (
    CFGError, EdgeKind, analyze_loops, build_all_cfgs, build_cfg,
    compute_dominators, compute_postdominators,
)
from repro.isa import assemble


def cfg_of(body: str, name: str = "f"):
    src = f".text\n.ent {name}\n{name}:\n{body}\n.end {name}\n"
    exe = assemble(src)
    return build_cfg(exe.procedure(name))


STRAIGHT = "nop\nnop\njr $ra"

DIAMOND = """
    beq $t0, $zero, Lelse
    li $t1, 1
    j Ljoin
Lelse:
    li $t1, 2
Ljoin:
    jr $ra
"""

LOOP = """
    li $t0, 0
Lhead:
    addiu $t0, $t0, 1
    bne $t0, $t1, Lhead
    jr $ra
"""

#: the paper's Figure 1: loop with body-internal branch and two exits
FIGURE1 = """
A:  beq $t0, $zero, B
B:  nop
C:  bne $t1, $zero, F
D:  beq $t2, $zero, B
E:  bne $t3, $zero, B
F:  jr $ra
"""


class TestBuilder:
    def test_straight_line_single_block(self):
        cfg = cfg_of(STRAIGHT)
        assert len(cfg) == 1
        assert cfg.entry.last.is_return
        assert cfg.exit_blocks() == [cfg.entry]

    def test_diamond_shape(self):
        cfg = cfg_of(DIAMOND)
        assert len(cfg) == 4
        entry = cfg.entry
        assert entry.is_branch_block
        kinds = {e.kind for e in entry.out_edges}
        assert kinds == {EdgeKind.TARGET, EdgeKind.FALLTHRU}

    def test_target_edge_order(self):
        cfg = cfg_of(DIAMOND)
        entry = cfg.entry
        assert entry.target_edge().kind is EdgeKind.TARGET
        assert entry.fallthru_edge().kind is EdgeKind.FALLTHRU
        # taken edge of `beq ... Lelse` goes to the Lelse block
        assert entry.target_edge().dst.instructions[0].op.name == "addiu" \
            or entry.target_edge().dst.start_address > \
            entry.fallthru_edge().dst.start_address

    def test_loop_edges(self):
        cfg = cfg_of(LOOP)
        branch_block = next(b for b in cfg.blocks if b.is_branch_block)
        target = branch_block.target_edge().dst
        assert target.start_address <= branch_block.start_address

    def test_call_does_not_end_block(self):
        src = (".text\n.ent f\nf:\njal g\nnop\njr $ra\n.end f\n"
               ".ent g\ng:\njr $ra\n.end g\n")
        cfg = build_cfg(assemble(src).procedure("f"))
        assert len(cfg) == 1
        assert cfg.entry.contains_call()

    def test_unreachable_code_dropped(self):
        cfg = cfg_of("jr $ra\nnop\nnop")
        assert len(cfg) == 1

    def test_unreachable_after_jump_dropped(self):
        cfg = cfg_of("j L\nli $t0, 1\nL: jr $ra")
        assert len(cfg) == 2

    def test_branch_outside_procedure_rejected(self):
        src = (".text\n.ent f\nf:\nL: nop\njr $ra\n.end f\n"
               ".ent g\ng:\nbne $t0, $zero, L\njr $ra\n.end g\n")
        exe = assemble(src)
        with pytest.raises(CFGError, match="outside"):
            build_cfg(exe.procedure("g"))

    def test_branch_without_fallthrough_rejected(self):
        with pytest.raises(CFGError, match="fall-through"):
            cfg_of("L: beq $t0, $zero, L")

    def test_build_all(self):
        src = (".text\n.ent f\nf:\njr $ra\n.end f\n"
               ".ent g\ng:\njr $ra\n.end g\n")
        cfgs = build_all_cfgs(assemble(src))
        assert set(cfgs) == {"f", "g"}

    def test_block_lookup(self):
        cfg = cfg_of(DIAMOND)
        b = cfg.blocks[1]
        assert cfg.block_at(b.start_address) is b
        assert cfg.block_containing(b.end_address) is b

    def test_to_dot_mentions_blocks(self):
        dot = cfg_of(DIAMOND).to_dot()
        assert "digraph" in dot and "B0" in dot


class TestDominators:
    def test_entry_dominates_all(self):
        cfg = cfg_of(FIGURE1)
        dom = compute_dominators(cfg)
        assert all(dom.dominates(cfg.entry, b) for b in cfg.blocks)

    def test_reflexive(self):
        cfg = cfg_of(DIAMOND)
        dom = compute_dominators(cfg)
        for b in cfg.blocks:
            assert dom.dominates(b, b)
            assert not dom.strictly_dominates(b, b)

    def test_diamond_arms_do_not_dominate_join(self):
        cfg = cfg_of(DIAMOND)
        dom = compute_dominators(cfg)
        join = cfg.blocks[-1]
        then_block, else_block = cfg.blocks[1], cfg.blocks[2]
        assert not dom.dominates(then_block, join)
        assert not dom.dominates(else_block, join)
        assert dom.dominates(cfg.entry, join)

    def test_dominators_of_chain(self):
        cfg = cfg_of(DIAMOND)
        dom = compute_dominators(cfg)
        join = cfg.blocks[-1]
        chain = dom.dominators_of(join)
        assert chain[0] is join
        assert chain[-1] is cfg.entry

    def test_postdominators_diamond(self):
        cfg = cfg_of(DIAMOND)
        pdom = compute_postdominators(cfg)
        join = cfg.blocks[-1]
        assert pdom.dominates(join, cfg.entry)
        assert pdom.dominates(join, cfg.blocks[1])
        assert not pdom.dominates(cfg.blocks[1], cfg.entry)

    def test_postdominators_loop(self):
        cfg = cfg_of(LOOP)
        pdom = compute_postdominators(cfg)
        exit_block = cfg.exit_blocks()[0]
        assert all(pdom.dominates(exit_block, b) for b in cfg.blocks)

    def test_infinite_loop_no_postdominators(self):
        cfg = cfg_of("L: beq $t0, $zero, M\nM: j L")
        pdom = compute_postdominators(cfg)
        # no exits are reachable; nothing postdominates anything else
        for a in cfg.blocks:
            for b in cfg.blocks:
                if a is not b:
                    assert not pdom.dominates(a, b)


class TestLoops:
    def test_simple_loop(self):
        cfg = cfg_of(LOOP)
        loops = analyze_loops(cfg)
        assert len(loops.back_edges) == 1
        assert len(loops.heads) == 1
        head = next(iter(loops.heads))
        assert head in loops.loops[head]

    def test_straight_line_no_loops(self):
        loops = analyze_loops(cfg_of(STRAIGHT))
        assert not loops.back_edges
        assert not loops.heads
        assert not loops.exit_edges

    def test_figure1_structure(self):
        """The paper's Figure 1: the loop head's natural loop contains C, D,
        and E; the exit edges leave from C and E; D->B and E->B are back
        edges. (B and C fuse into one basic block at the instruction level:
        nothing branches to C itself.)"""
        cfg = cfg_of(FIGURE1)
        loops = analyze_loops(cfg)
        # blocks in address order: A, BC (nop+bne), D (beq), E (bne), F
        a, bc, d, e, f = cfg.blocks
        assert (d, bc) in loops.back_edges
        assert (e, bc) in loops.back_edges
        assert len(loops.back_edges) == 2
        assert loops.loops[bc] == {bc, d, e}
        assert (bc, f) in loops.exit_edges
        assert (e, f) in loops.exit_edges
        assert len(loops.exit_edges) == 2

    def test_nested_loops(self):
        cfg = cfg_of("""
Louter:
    li $t0, 0
Linner:
    addiu $t0, $t0, 1
    bne $t0, $t1, Linner
    addiu $t2, $t2, 1
    bne $t2, $t3, Louter
    jr $ra
""")
        loops = analyze_loops(cfg)
        assert len(loops.heads) == 2
        inner_head = cfg.blocks[1]
        outer_head = cfg.blocks[0]
        assert loops.loops[outer_head] > loops.loops[inner_head]
        assert loops.loop_depth(inner_head) == 2
        assert loops.loop_depth(outer_head) == 1

    def test_preheader(self):
        cfg = cfg_of(LOOP)
        loops = analyze_loops(cfg)
        # the entry block (li $t0, 0) unconditionally enters the loop head
        assert cfg.entry in loops.preheaders

    def test_non_preheader_conditional_entry(self):
        cfg = cfg_of(DIAMOND)
        loops = analyze_loops(cfg)
        assert not loops.preheaders

    def test_backward_branch_detection(self):
        cfg = cfg_of(LOOP)
        loops = analyze_loops(cfg)
        (src, dst), = loops.back_edges
        edge = next(e for e in src.out_edges if e.dst is dst)
        assert loops.is_backward_branch_edge(edge)

    def test_rotated_loop_guard_is_not_loop_branch(self):
        """A rotated while-loop's guard branch jumps around the loop: it is
        not an exit edge nor a back edge, so it is a NON-loop branch (this
        is what gives the non-loop Loop heuristic its coverage)."""
        cfg = cfg_of("""
    beq $t0, $zero, Lexit     # guard around the loop
Lhead:
    addiu $t0, $t0, -1
    bgtz $t0, Lhead           # bottom test: back edge
Lexit:
    jr $ra
""")
        loops = analyze_loops(cfg)
        guard = cfg.entry
        for edge in guard.out_edges:
            assert not loops.is_back_edge(edge)
            assert not loops.is_exit_edge(edge)
        head = cfg.blocks[1]
        assert head in loops.heads
