"""Tests for the repro.telemetry subsystem: core registry, spans,
exporters, manifests, baselines, and pipeline instrumentation."""

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    MalformedReport, Telemetry, diff_reports, load_report, run_manifest,
    summary_dict, summary_table, to_chrome_trace, to_jsonl, to_prometheus,
    write_report,
)


@pytest.fixture
def sink():
    return Telemetry()


@pytest.fixture(autouse=True)
def _reset_seam():
    yield
    telemetry.install(None)


class TestMetrics:
    def test_counter_inc(self, sink):
        sink.counter("a.b").inc()
        sink.counter("a.b").inc(4)
        assert sink.counters() == {"a.b": 5}

    def test_counter_identity(self, sink):
        assert sink.counter("x") is sink.counter("x")

    def test_gauge_set(self, sink):
        sink.gauge("speed").set(123.5)
        sink.gauge("speed").set(99)
        assert sink.gauges() == {"speed": 99.0}

    def test_histogram_stats(self, sink):
        h = sink.histogram("sizes")
        for v in (1, 2, 4, 100):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 107
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(26.75)

    def test_labeled_counter_top(self, sink):
        fam = sink.labeled_counter("hot")
        fam.inc("0x10", 5)
        fam.inc("0x20", 9)
        fam.inc("0x10", 1)
        assert fam.top(1) == [("0x20", 9)]
        assert fam.values["0x10"] == 6

    def test_thread_safety(self, sink):
        counter = sink.counter("n")

        def work():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestSpans:
    def test_nesting_and_depth(self, sink):
        with sink.span("outer"):
            with sink.span("inner"):
                pass
        by_name = {s.name: s for s in sink.spans}
        assert by_name["outer"].depth == 1
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert sink.max_span_depth() == 2

    def test_span_survives_exception(self, sink):
        with pytest.raises(ValueError):
            with sink.span("boom"):
                raise ValueError("x")
        assert [s.name for s in sink.spans] == ["boom"]
        # the stack unwound: a new span is a root again
        with sink.span("after"):
            pass
        assert sink.spans[-1].depth == 1

    def test_span_args_recorded(self, sink):
        with sink.span("s", benchmark="queens"):
            pass
        assert sink.spans[0].args == {"benchmark": "queens"}

    def test_aggregates(self, sink):
        for _ in range(3):
            with sink.span("phase"):
                pass
        agg = sink.span_aggregates()["phase"]
        assert agg["count"] == 3
        assert agg["total_s"] >= 0
        assert agg["mean_s"] == pytest.approx(agg["total_s"] / 3)

    def test_max_spans_bound(self):
        small = Telemetry(max_spans=2)
        for _ in range(5):
            with small.span("s"):
                pass
        assert len(small.spans) == 2
        assert small.spans_dropped == 3

    def test_per_thread_stacks(self, sink):
        done = threading.Event()

        def worker():
            with sink.span("worker-root"):
                done.set()

        with sink.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        roots = [s for s in sink.spans if s.name == "worker-root"]
        # a span on another thread is a root there, not a child of ours
        assert roots[0].depth == 1
        assert roots[0].parent_id == 0


class TestSeam:
    def test_default_disabled(self):
        assert telemetry.get().enabled is False

    def test_disabled_is_noop(self):
        disabled = Telemetry(enabled=False)
        disabled.counter("x").inc()
        disabled.gauge("y").set(1)
        disabled.histogram("z").observe(1)
        disabled.labeled_counter("w").inc("a")
        with disabled.span("s"):
            pass
        assert disabled.counters() == {}
        assert disabled.spans == []

    def test_install_and_use(self):
        sink = Telemetry()
        with telemetry.use(sink):
            assert telemetry.get() is sink
            telemetry.get().counter("c").inc()
        assert telemetry.get().enabled is False
        assert sink.counters() == {"c": 1}


class TestExporters:
    def _populated(self):
        sink = Telemetry()
        with sink.span("suite", category="harness"):
            with sink.span("benchmark", benchmark="queens"):
                with sink.span("phase"):
                    with sink.span("sub-phase"):
                        pass
        sink.counter("sim.instructions").inc(1000)
        sink.gauge("sim.instructions_per_sec").set(2.5e6)
        sink.histogram("h").observe(3)
        sink.labeled_counter("sim.hot_pc").inc("0x400100", 7)
        return sink

    def test_chrome_trace_roundtrip(self):
        trace = to_chrome_trace(self._populated())
        parsed = json.loads(json.dumps(trace))
        events = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == \
            {"suite", "benchmark", "phase", "sub-phase"}
        assert max(e["args"]["depth"] for e in events) == 4
        for e in events:
            assert e["ts"] >= 0 and e["dur"] >= 0 and e["pid"] == 1

    def test_jsonl_lines_parse(self):
        text = to_jsonl(self._populated())
        lines = [json.loads(line) for line in text.splitlines()]
        kinds = {line["event"] for line in lines}
        assert kinds == {"span", "counter", "gauge", "histogram",
                         "labeled_counter"}

    def test_prometheus_format(self):
        text = to_prometheus(self._populated())
        assert "# TYPE repro_sim_instructions_total counter" in text
        assert "repro_sim_instructions_total 1000" in text
        assert "repro_sim_instructions_per_sec 2500000.0" in text
        assert 'repro_sim_hot_pc_total{key="0x400100"} 7' in text
        # every non-comment line is "name[{labels}] value"
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name[0].isalpha()

    def test_summary_table_mentions_everything(self):
        text = summary_table(self._populated())
        for needle in ("suite", "sim.instructions", "0x400100",
                       "sim.instructions_per_sec"):
            assert needle in text

    def test_write_report_bundle(self, tmp_path):
        paths = write_report(self._populated(), tmp_path,
                             config={"k": 1}, seed=7)
        assert set(paths) == {"trace.json", "events.jsonl", "metrics.prom",
                              "summary.txt", "manifest.json",
                              "telemetry.json"}
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["seed"] == 7
        assert manifest["config"] == {"k": 1}
        payload = load_report(tmp_path / "telemetry.json")
        assert payload["max_span_depth"] == 4


class TestManifest:
    def test_fields(self):
        manifest = run_manifest({"a": 1}, seed=3)
        assert manifest["python"]
        assert manifest["platform"]
        assert manifest["seed"] == 3
        assert len(manifest["config_hash"]) == 16

    def test_config_hash_stable_and_sensitive(self):
        a = run_manifest({"x": 1})["config_hash"]
        b = run_manifest({"x": 1})["config_hash"]
        c = run_manifest({"x": 2})["config_hash"]
        assert a == b and a != c


class TestDiff:
    def _report(self, sim_total=1.0, ips=1e6):
        return {
            "schema": "repro.telemetry.bench/v1",
            "manifest": run_manifest({"k": 1}),
            "counters": {"sim.instructions": 1000},
            "gauges": {"sim.instructions_per_sec": ips},
            "spans": {"simulate": {"count": 1, "total_s": sim_total,
                                   "mean_s": sim_total, "max_s": sim_total}},
        }

    def test_identical_ok(self):
        result = diff_reports(self._report(), self._report())
        assert result.ok

    def test_20pct_slowdown_flagged(self):
        result = diff_reports(self._report(1.0), self._report(1.25),
                              threshold=0.20)
        assert not result.ok
        assert result.regressions[0].name == "simulate"

    def test_throughput_drop_flagged(self):
        result = diff_reports(self._report(ips=1e6),
                              self._report(ips=0.7e6), threshold=0.20)
        assert any(r.kind == "gauge" for r in result.regressions)

    def test_improvement_not_a_regression(self):
        result = diff_reports(self._report(1.0), self._report(0.5))
        assert result.ok and result.improvements

    def test_tiny_spans_ignored(self):
        result = diff_reports(self._report(0.001), self._report(0.004),
                              threshold=0.20, min_seconds=0.005)
        assert result.ok and result.compared_spans == 0

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(MalformedReport):
            load_report(bad)
        bad.write_text(json.dumps({"schema": "wrong"}))
        with pytest.raises(MalformedReport):
            load_report(bad)
        bad.write_text(json.dumps({
            "schema": "repro.telemetry.bench/v1", "manifest": {},
            "counters": {}, "gauges": {},
            "spans": {"s": {"count": 1}}}))  # missing total_s
        with pytest.raises(MalformedReport):
            load_report(bad)


class TestPipelineInstrumentation:
    """The instrumented layers actually report through the seam."""

    def test_compile_spans_and_counters(self):
        from repro.bcc.driver import compile_and_link
        sink = Telemetry()
        with telemetry.use(sink):
            compile_and_link("int main() { return 0; }")
        names = {s.name for s in sink.spans}
        assert {"bcc.lex", "bcc.parse", "bcc.sema", "bcc.irgen",
                "bcc.opt", "bcc.codegen", "bcc.regalloc",
                "isa.assemble"} <= names
        counters = sink.counters()
        assert counters["asm.instructions"] > 0
        assert counters["bcc.regalloc.functions"] > 0
        assert counters["bcc.tokens"] > 0

    def test_machine_counters_and_hot_pc(self):
        from repro.bcc.driver import compile_and_link
        from repro.sim import Machine
        executable = compile_and_link(
            "int main() { int i; int s = 0; "
            "for (i = 0; i < 2000; i++) { s += i; } "
            "print_int(s); return 0; }")
        sink = Telemetry()
        machine = Machine(executable, telemetry=sink, pc_sample_interval=64)
        status = machine.run()
        counters = sink.counters()
        assert counters["sim.instructions"] == status.instr_count
        assert counters["sim.branches"] == status.dynamic_branches
        assert counters["sim.syscalls"] >= 1
        assert counters["sim.runs"] == 1
        assert counters["sim.hot_pc_samples"] > 0
        assert machine.hot_pc_samples
        assert sink.gauges()["sim.instructions_per_sec"] > 0
        assert sink.labeled_counters()["sim.hot_pc"].top(1)

    def test_machine_publishes_on_fault(self):
        from repro.bcc.driver import compile_and_link
        from repro.sim import Machine, SimulationLimitExceeded
        executable = compile_and_link(
            "int main() { while (1) { } return 0; }")
        sink = Telemetry()
        machine = Machine(executable, telemetry=sink, max_instructions=5000)
        with pytest.raises(SimulationLimitExceeded):
            machine.run()
        counters = sink.counters()
        assert counters["sim.runs_faulted"] == 1
        assert counters["sim.instructions"] > 0

    def test_suite_runner_cache_counters(self):
        from repro.harness.runner import SuiteRunner
        sink = Telemetry()
        with telemetry.use(sink):
            runner = SuiteRunner(["queens"])
            runner.run("queens", "small")
            runner.run("queens", "small")  # memo hit
        counters = sink.counters()
        assert counters["harness.run_cache.miss"] == 1
        assert counters["harness.run_cache.hit"] == 1
        assert counters["harness.compile_cache.miss"] == 1
        names = {s.name for s in sink.spans}
        assert "run:queens/small" in names
        assert "simulate" in names and "compile" in names
        assert sink.max_span_depth() >= 4  # run > compile > parse > lex

    def test_degraded_failure_counters(self):
        from repro.harness.runner import SuiteRunner
        sink = Telemetry()
        with telemetry.use(sink):
            runner = SuiteRunner(["queens"], strict=False,
                                 retry_fuel_factor=2)
            runner.limit_fuel("queens", 100)
            outcome = runner.outcome("queens", "small")
        assert outcome.failed and outcome.retried
        counters = sink.counters()
        assert counters["harness.retries"] == 1
        assert counters["harness.degraded_failures"] == 1
        fam = sink.labeled_counters()["harness.failures_by_status"]
        assert fam.values.get("timeout") == 1
