"""Service-level distributed-tracing integration (PR 7).

Engine + HTTP tests for the trace plumbing: a trace minted at ingress
survives queue, dispatch, the fork boundary, and snapshot merge; the
``/jobs/<id>/trace`` endpoint returns one stitched timeline whose
segment accounting adds up; an inbound ``traceparent`` continues the
caller's trace; and a crashing job leaves a flight-recorder black box
naming its own trace.
"""

from __future__ import annotations

import asyncio
import os

from repro.harness.parallel import ShardResult
from repro.harness.resilience import RunStatus
from repro.service.__main__ import _http
from repro.service.engine import JobEngine, ServiceConfig
from repro.service.http import ServiceHTTP
from repro.service.jobs import JobKind, JobRequest, JobState
from repro.telemetry import tracing
from repro.telemetry.tracing import TraceContext

from test_service_engine import _exec_crash, _exec_ok, _request, _run


# -- injected worker behaviors (module-level: they must pickle) ---------------

def _exec_traced(order) -> ShardResult:
    """A worker that joins the shard's trace, like run_shard does."""
    job = order.shard
    ctx = None
    if job.trace_id:
        ctx = TraceContext(trace_id=job.trace_id, span_id=job.trace_parent)
    with tracing.activate(ctx, process=f"worker:{os.getpid()}") as spans:
        with tracing.span("worker.simulate", "worker"):
            pass
    result = ShardResult(benchmark=job.benchmark, dataset=job.dataset,
                         status=RunStatus.OK)
    result.trace = spans
    return result


_CONFIG = ServiceConfig(workers=1, health_interval_s=0)


# -- engine-level -------------------------------------------------------------

def test_traced_job_timeline_spans_every_engine_segment():
    async def body(engine):
        trace = TraceContext.mint()
        record = engine.submit(_request(), trace=trace)
        await engine.wait(record.id, 30)
        assert record.state is JobState.DONE
        assert record.trace is trace
        names = {s.name for s in record.trace_spans}
        assert {"queue_wait", "dispatch", "exec",
                "worker.simulate"} <= names
        # every span belongs to the one trace minted at ingress
        assert {s.trace_id for s in record.trace_spans} == {trace.trace_id}
        body = record.trace_dict()
        assert body["trace_id"] == trace.trace_id
        assert {"queue", "service", "worker"} <= set(body["tiers"])
        seg = body["segments"]
        assert seg["accounted_s"] <= seg["total_s"] + 0.05
        # the wire record advertises its trace identity
        assert record.to_dict()["trace_id"] == trace.trace_id
    _run(body, _CONFIG, _exec_traced)


def test_worker_spans_parent_under_the_engines_exec_span():
    async def body(engine):
        record = engine.submit(_request(), trace=TraceContext.mint())
        await engine.wait(record.id, 30)
        by_name = {s.name: s for s in record.trace_spans}
        exec_span = by_name["exec"]
        worker_span = by_name["worker.simulate"]
        assert worker_span.parent_id == exec_span.span_id
        assert worker_span.process.startswith("worker:")
    _run(body, _CONFIG, _exec_traced)


def test_untraced_submit_yields_empty_but_well_formed_timeline():
    async def body(engine):
        record = await engine.submit_and_wait(_request(), timeout_s=30)
        assert record.state is JobState.DONE
        assert record.trace is None and record.trace_spans == []
        body = record.trace_dict()
        assert body["trace_id"] is None
        assert body["tiers"] == [] and body["spans"] == []
        assert "trace_id" not in record.to_dict()
    _run(body, _CONFIG, _exec_ok)


def test_crashed_job_error_carries_flight_dump_with_its_trace():
    async def body(engine):
        trace = TraceContext.mint()
        record = engine.submit(_request(), trace=trace)
        await engine.wait(record.id, 60)
        assert record.state is JobState.QUARANTINED
        events = record.error.get("flight", [])
        assert events, "quarantine error lost its black box"
        assert any(e.get("trace_id") == trace.trace_id for e in events)
    _run(body, ServiceConfig(workers=1, health_interval_s=0,
                             crash_retries=1, quarantine_threshold=2),
         _exec_crash)


def test_stats_exposes_slo_rates():
    async def body(engine):
        await engine.submit_and_wait(_request(), timeout_s=30)
        slo = engine.stats()["slo"]
        assert set(slo) == {"cache_hit_rate", "job_error_rate",
                            "job_rejection_rate",
                            "breaker_open_duty_cycle",
                            "sim_trace_cache_hit_rate"}
        assert slo["job_error_rate"] == 0.0
        assert all(0.0 <= v <= 1.0 for v in slo.values())
    _run(body, _CONFIG, _exec_ok)


# -- HTTP-level ---------------------------------------------------------------

def _serve(test_coro_fn, config: ServiceConfig = _CONFIG,
           exec_fn=_exec_traced):
    async def _inner():
        engine = JobEngine(config, exec_fn=exec_fn)
        await engine.start()
        http = ServiceHTTP(engine)
        await http.start()
        try:
            async def call(method, path, body=None, headers=None):
                return await _http(http.host, http.port, method, path,
                                   body, headers)
            return await test_coro_fn(call)
        finally:
            await http.stop()
            await engine.stop()
    return asyncio.run(_inner())


def test_http_trace_endpoint_returns_single_trace_timeline():
    async def body(call):
        status, record = await call("POST", "/jobs", {
            "kind": "compile", "benchmark": "queens", "wait": True,
            "wait_timeout_s": 30})
        assert status == 200 and record["state"] == "done"
        assert record["trace_id"]
        status, trace = await call("GET", f"/jobs/{record['id']}/trace")
        assert status == 200
        assert trace["trace_id"] == record["trace_id"]
        assert trace["job"] == record["id"]
        assert {"ingress", "queue", "service", "worker"} <= set(
            trace["tiers"])
        assert {s["trace_id"] for s in trace["spans"]} == {
            record["trace_id"]}
    _serve(body)


def test_http_trace_unknown_job_is_404():
    async def body(call):
        status, payload = await call("GET", "/jobs/job-999/trace")
        assert status == 404
        assert payload["error"]["code"] == "not-found"
    _serve(body)


def test_inbound_traceparent_continues_the_callers_trace():
    async def body(call):
        caller = TraceContext.mint()
        status, record = await call(
            "POST", "/jobs",
            {"kind": "compile", "benchmark": "queens", "wait": True,
             "wait_timeout_s": 30},
            headers={"traceparent": caller.traceparent})
        assert status == 200
        assert record["trace_id"] == caller.trace_id
        _, trace = await call("GET", f"/jobs/{record['id']}/trace")
        ingress = [s for s in trace["spans"]
                   if s["name"] == "http.ingress"]
        assert len(ingress) == 1
        # our root span is parented on the caller's span
        assert ingress[0]["parent_id"] == caller.span_id
    _serve(body)


def test_malformed_traceparent_mints_a_fresh_root():
    async def body(call):
        status, record = await call(
            "POST", "/jobs",
            {"kind": "compile", "benchmark": "queens", "wait": True,
             "wait_timeout_s": 30},
            headers={"traceparent": "zz-not-a-trace-context"})
        assert status == 200
        assert len(record["trace_id"]) == 32
    _serve(body)


def test_deduped_follower_shares_primary_payload_keeps_own_trace():
    async def body(engine):
        first = engine.submit(_request(), trace=TraceContext.mint())
        second = engine.submit(_request(), trace=TraceContext.mint())
        assert second.deduped_into == first.id
        await asyncio.gather(engine.wait(first.id, 30),
                             engine.wait(second.id, 30))
        assert second.state is first.state
        assert second.trace.trace_id != first.trace.trace_id
    _run(body, _CONFIG, _exec_traced)
