"""The loop-shape passes: rotate/unrotate differential testing.

``loop-rotate`` (tail-duplicate the header of a top-tested loop into a
guard plus a latch test) and ``loop-unrotate`` (merge a rotated loop's
guard/latch back into one shared test) are registered but off by
default — the ``-O1`` pipeline and its golden hashes are untouched.
These tests prove the two passes are semantics-preserving: random
hypothesis programs and real benchmarks must produce byte-identical
output under all four front-end x pass combinations, with the IR
verifier (including the V015 instruction-aliasing and V016
reducibility rules) running after every pass.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.analysis.loopshape import loop_rotate, loop_unrotate
from repro.bcc.driver import compile_and_link, compile_to_ir
from repro.bcc.opt import IR_PASSES, O0_PASSES, O1_PASSES
from repro.sim import Machine

from test_differential_compiler import programs

#: every build the differential compares: front-end rotation on/off,
#: with the loop-shape passes appended to -O1 or not
_VARIANTS = (
    (True, O1_PASSES),
    (False, O1_PASSES),
    (False, O1_PASSES + ("loop-rotate",)),
    (True, O1_PASSES + ("loop-unrotate",)),
)


def _outputs(source: str) -> list[str]:
    outputs = []
    for rotate, passes in _VARIANTS:
        executable = compile_and_link(source, rotate_loops=rotate,
                                      passes=passes, verify_each=True)
        machine = Machine(executable, max_instructions=20_000_000)
        machine.run()
        outputs.append(machine.output)
    return outputs


def test_loop_passes_are_registered_but_off_by_default():
    assert "loop-rotate" in IR_PASSES
    assert "loop-unrotate" in IR_PASSES
    assert "loop-rotate" not in O1_PASSES + O0_PASSES
    assert "loop-unrotate" not in O1_PASSES + O0_PASSES


def test_passes_fire_on_real_loops():
    source = """
    int main() {
        int i;
        int total;
        total = 0;
        i = 0;
        while (i < read_int()) {
            total = total + i;
            i = i + 1;
        }
        print_int(total);
        return 0;
    }
    """
    toptest = compile_to_ir(source, rotate_loops=False)
    assert any(loop_rotate(f) for f in toptest.functions)
    rotated = compile_to_ir(source)
    assert any(loop_unrotate(f) for f in rotated.functions)


def test_rotate_then_run_matches_on_a_fixed_program():
    source = """
    int main() {
        int i;
        int j;
        int total;
        total = 0;
        for (i = 0; i < 5; i = i + 1) {
            j = i;
            while (j > 0) {
                total = total + i * j;
                j = j - 1;
            }
        }
        print_int(total);
        return 0;
    }
    """
    outputs = _outputs(source)
    assert len(set(outputs)) == 1, outputs


@settings(max_examples=25, deadline=None)
@given(programs())
def test_loop_shape_differential(program):
    """Hypothesis: all four loop-shape builds agree, verified each pass."""
    source, expected = program
    outputs = _outputs(source)
    assert len(set(outputs)) == 1, source
    assert [int(x) for x in outputs[0].split()] == expected, source


@pytest.mark.parametrize("bench_name", ("queens", "gauss"))
def test_loop_shape_row_on_benchmarks(bench_name):
    from repro.harness.scev_report import loop_shape_row

    row = loop_shape_row(bench_name, dataset="small")
    assert row.outputs_identical
    assert row.rotated_functions >= 1
    assert row.unrotated_functions >= 1


def test_loop_shape_table_renders():
    from repro.harness.scev_report import LoopShapeRow, LoopShapeTable

    row = LoopShapeRow(name="x", rotated_functions=1,
                       unrotated_functions=1, outputs_identical=True,
                       rotated_loop_miss=0.1, toptest_loop_miss=0.2)
    rendered = LoopShapeTable([row]).render()
    assert "OK" in rendered and "semantics-preserving" in rendered
