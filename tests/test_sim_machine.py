"""Tests for the interpreter: opcode semantics, syscalls, control, limits."""

import pytest

from repro.isa import assemble
from repro.sim import (
    EdgeProfile, InputExhausted, Machine, SimulationError,
    SimulationLimitExceeded,
)


def run_asm(body: str, inputs=None, data: str = "", max_instructions=100000):
    src = ""
    if data:
        src += ".data\n" + data + "\n"
    src += f".text\n.ent main\nmain:\n{body}\n.end main\n"
    exe = assemble(src)
    machine = Machine(exe, inputs=inputs, max_instructions=max_instructions)
    status = machine.run()
    return machine, status


def result_of(body: str, **kw) -> int:
    """Run asm that leaves its result in $t0; return that value."""
    machine, _ = run_asm(body + "\nli $v0, 10\nsyscall", **kw)
    return machine.regs[8]


class TestIntegerArithmetic:
    def test_add_wraps_signed(self):
        assert result_of("li $t1, 0x7fffffff\nli $t2, 1\n"
                         "addu $t0, $t1, $t2") == -(2**31)

    def test_sub_wraps(self):
        assert result_of("li $t1, 0x80000000\nli $t2, 1\n"
                         "subu $t0, $t1, $t2") == 2**31 - 1

    def test_mul_wraps(self):
        expected = ((100000 * 100000) + 2**31) % 2**32 - 2**31
        assert result_of("li $t1, 100000\nli $t2, 100000\n"
                         "mul $t0, $t1, $t2") == expected

    @pytest.mark.parametrize("a,b,q", [
        (7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3),
    ])
    def test_div_truncates_toward_zero(self, a, b, q):
        assert result_of(f"li $t1, {a}\nli $t2, {b}\ndiv $t0, $t1, $t2") == q

    @pytest.mark.parametrize("a,b,r", [
        (7, 2, 1), (-7, 2, -1), (7, -2, 1), (-7, -2, -1),
    ])
    def test_rem_sign_follows_dividend(self, a, b, r):
        assert result_of(f"li $t1, {a}\nli $t2, {b}\nrem $t0, $t1, $t2") == r

    def test_div_by_zero_raises(self):
        with pytest.raises(SimulationError, match="division by zero"):
            run_asm("li $t1, 1\nli $t2, 0\ndiv $t0, $t1, $t2")

    def test_logic_ops(self):
        assert result_of("li $t1, 0xF0\nli $t2, 0x3C\nand $t0, $t1, $t2") == 0x30
        assert result_of("li $t1, 0xF0\nli $t2, 0x3C\nor $t0, $t1, $t2") == 0xFC
        assert result_of("li $t1, 0xF0\nli $t2, 0x3C\nxor $t0, $t1, $t2") == 0xCC

    def test_nor(self):
        assert result_of("li $t1, 0\nli $t2, 0\nnor $t0, $t1, $t2") == -1

    def test_shifts(self):
        assert result_of("li $t1, 1\nsll $t0, $t1, 31") == -(2**31)
        assert result_of("li $t1, -8\nsra $t0, $t1, 1") == -4
        assert result_of("li $t1, -8\nsrl $t0, $t1, 1") == 0x7FFFFFFC

    def test_variable_shifts(self):
        assert result_of("li $t1, 3\nli $t2, 4\nsllv $t0, $t1, $t2") == 48

    def test_slt_signed_vs_unsigned(self):
        assert result_of("li $t1, -1\nli $t2, 1\nslt $t0, $t1, $t2") == 1
        assert result_of("li $t1, -1\nli $t2, 1\nsltu $t0, $t1, $t2") == 0

    def test_slti(self):
        assert result_of("li $t1, 5\nslti $t0, $t1, 6") == 1

    def test_lui(self):
        assert result_of("lui $t0, 0x1234") == 0x12340000

    def test_andi_zero_extends(self):
        assert result_of("li $t1, -1\nandi $t0, $t1, 0xffff") == 0xFFFF


class TestBranches:
    @pytest.mark.parametrize("op,value,taken", [
        ("blez", 0, True), ("blez", -1, True), ("blez", 1, False),
        ("bgtz", 1, True), ("bgtz", 0, False),
        ("bltz", -1, True), ("bltz", 0, False),
        ("bgez", 0, True), ("bgez", -1, False),
    ])
    def test_zero_compare_branches(self, op, value, taken):
        body = (f"li $t1, {value}\nli $t0, 0\n{op} $t1, L\n"
                "li $t0, 1\nL: nop")
        assert result_of(body) == (0 if taken else 1)

    def test_beq_bne(self):
        assert result_of("li $t1, 3\nli $t2, 3\nli $t0, 0\n"
                         "beq $t1, $t2, L\nli $t0, 1\nL: nop") == 0
        assert result_of("li $t1, 3\nli $t2, 4\nli $t0, 0\n"
                         "bne $t1, $t2, L\nli $t0, 1\nL: nop") == 0

    def test_branch_events_reach_observer(self):
        profile = EdgeProfile()
        src = (".text\n.ent main\nmain:\nli $t1, 3\n"
               "L: addiu $t1, $t1, -1\nbgtz $t1, L\nli $v0, 10\nsyscall\n"
               ".end main\n")
        exe = assemble(src)
        Machine(exe, observers=[profile]).run()
        (addr, taken, not_taken), = list(profile.items())
        assert taken == 2 and not_taken == 1


class TestFloatingPoint:
    def test_fp_arith(self):
        machine, _ = run_asm(
            "li $t1, 3\nmtc1 $t1, $f2\ncvt.d.w $f2, $f2\n"
            "li $t2, 4\nmtc1 $t2, $f4\ncvt.d.w $f4, $f4\n"
            "mul.d $f6, $f2, $f4\nli $v0, 10\nsyscall")
        assert machine.fregs[6] == 12.0

    def test_fp_compare_and_branch(self):
        body = ("li $t1, 2\nmtc1 $t1, $f2\ncvt.d.w $f2, $f2\n"
                "li $t2, 3\nmtc1 $t2, $f4\ncvt.d.w $f4, $f4\n"
                "li $t0, 0\nc.lt.d $f2, $f4\nbc1t L\nli $t0, 1\nL: nop")
        assert result_of(body) == 0

    def test_bc1f(self):
        body = ("li $t1, 2\nmtc1 $t1, $f2\ncvt.d.w $f2, $f2\n"
                "li $t0, 0\nc.eq.d $f2, $f2\nbc1f L\nli $t0, 1\nL: nop")
        assert result_of(body) == 1

    def test_cvt_w_d_truncates(self):
        machine, _ = run_asm(
            "ldc1 $f2, d($gp)\ncvt.w.d $f4, $f2\nmfc1 $t0, $f4\n"
            "li $v0, 10\nsyscall", data="d: .double -2.7")
        assert machine.regs[8] == -2

    def test_sqrt(self):
        machine, _ = run_asm("ldc1 $f2, d($gp)\nsqrt.d $f4, $f2\n"
                             "li $v0, 10\nsyscall", data="d: .double 6.25")
        assert machine.fregs[4] == 2.5

    def test_sqrt_negative_raises(self):
        with pytest.raises(SimulationError, match="sqrt"):
            run_asm("ldc1 $f2, d($gp)\nsqrt.d $f4, $f2",
                    data="d: .double -1.0")

    def test_fp_div_by_zero_raises(self):
        with pytest.raises(SimulationError, match="FP division"):
            run_asm("ldc1 $f2, d($gp)\ndiv.d $f4, $f2, $f6",
                    data="d: .double 1.0")

    def test_neg_abs_mov(self):
        machine, _ = run_asm(
            "ldc1 $f2, d($gp)\nneg.d $f4, $f2\nabs.d $f6, $f4\n"
            "mov.d $f8, $f6\nli $v0, 10\nsyscall", data="d: .double 2.5")
        assert machine.fregs[4] == -2.5
        assert machine.fregs[8] == 2.5


class TestCallsAndJumps:
    def test_jal_jr(self):
        src = (".text\n.ent main\nmain:\njal f\nmove $t0, $v0\n"
               "li $v0, 10\nsyscall\n.end main\n"
               ".ent f\nf:\nli $v0, 99\njr $ra\n.end f\n")
        exe = assemble(src)
        machine = Machine(exe)
        machine.run()
        assert machine.regs[8] == 99

    def test_jalr_indirect_call_emits_event(self):
        events = []

        class Obs:
            def on_branch(self, *a): pass
            def on_indirect(self, inst, count): events.append(inst.op.name)
            def on_finish(self, *a): pass

        src = (".text\n.ent main\nmain:\nla $t1, f\njalr $t1\n"
               "li $v0, 10\nsyscall\n.end main\n"
               ".ent f\nf:\njr $ra\n.end f\n")
        exe = assemble(src)
        Machine(exe, observers=[Obs()]).run()
        assert events == ["jalr"]

    def test_main_return_halts(self):
        # main's jr $ra with the initial sentinel $ra halts cleanly
        _, status = run_asm("li $t0, 1\njr $ra")
        assert status.instr_count == 2


class TestSyscalls:
    def test_print_int(self):
        _, status = run_asm("li $a0, -42\nli $v0, 1\nsyscall\n"
                            "li $v0, 10\nsyscall")
        assert status.output == "-42"

    def test_print_char_and_string(self):
        _, status = run_asm(
            "la $a0, s\nli $v0, 4\nsyscall\nli $a0, '!'\nli $v0, 11\n"
            "syscall\nli $v0, 10\nsyscall", data='s: .asciiz "hey"')
        assert status.output == "hey!"

    def test_read_int(self):
        machine, _ = run_asm("li $v0, 5\nsyscall\nmove $t0, $v0\n"
                             "li $v0, 10\nsyscall", inputs=[123])
        assert machine.regs[8] == 123

    def test_read_double(self):
        machine, _ = run_asm("li $v0, 7\nsyscall\nli $v0, 10\nsyscall",
                             inputs=[2.5])
        assert machine.fregs[0] == 2.5

    def test_input_exhausted(self):
        with pytest.raises(InputExhausted):
            run_asm("li $v0, 5\nsyscall")

    def test_sbrk_returns_increasing(self):
        machine, _ = run_asm(
            "li $a0, 16\nli $v0, 9\nsyscall\nmove $t0, $v0\n"
            "li $a0, 16\nli $v0, 9\nsyscall\nmove $t1, $v0\n"
            "li $v0, 10\nsyscall")
        assert machine.regs[9] > machine.regs[8]
        assert machine.regs[8] % 8 == 0

    def test_exit_with_code(self):
        _, status = run_asm("li $a0, 3\nli $v0, 17\nsyscall")
        assert status.exit_code == 3

    def test_unknown_syscall(self):
        with pytest.raises(SimulationError, match="syscall"):
            run_asm("li $v0, 999\nsyscall")


class TestLimitsAndErrors:
    def test_instruction_limit(self):
        with pytest.raises(SimulationLimitExceeded):
            run_asm("L: j L", max_instructions=100)

    def test_pc_out_of_range(self):
        with pytest.raises(SimulationError, match="pc out of range"):
            run_asm("la $t0, main\naddiu $t0, $t0, 0x1000\njr $t0")

    def test_counts(self):
        _, status = run_asm("li $t1, 2\nL: addiu $t1, $t1, -1\n"
                            "bgtz $t1, L\nli $v0, 10\nsyscall")
        assert status.dynamic_branches == 2
        assert status.instr_count == 1 + 2 * 2 + 2
